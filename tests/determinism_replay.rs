//! Determinism regression tests: `Simulator::reset` + `step`/`step_back`
//! round-trips must be byte-identical in architectural state, and a replayed
//! run must produce an identical retirement trace.
//!
//! These properties are what make backward stepping (paper §III-B) and the
//! differential co-simulation harness sound: both rely on forward
//! re-simulation reproducing the exact same event stream.

use riscv_superscalar_sim::prelude::*;

fn arch_state(sim: &Simulator) -> (u64, u64, Vec<u64>, Vec<u8>) {
    let mut regs = Vec::with_capacity(64);
    for i in 0..32u8 {
        regs.push(sim.register(RegisterId::x(i)).bits);
    }
    for i in 0..32u8 {
        regs.push(sim.register(RegisterId::f(i)).bits);
    }
    (sim.cycle(), sim.pc(), regs, sim.memory().memory().bytes().to_vec())
}

fn generated(seed: u64) -> String {
    generate_program(seed, &GenOptions::default())
}

#[test]
fn reset_replay_produces_identical_retirement_trace() {
    let config = ArchitectureConfig::default();
    for seed in [3u64, 11, 42] {
        let source = generated(seed);
        let mut sim = Simulator::from_assembly(&source, &config).unwrap();
        sim.set_retirement_trace(true);
        let first_run = sim.run(200_000).unwrap();
        assert_ne!(first_run.halt, HaltReason::MaxCyclesReached, "seed {seed} hung");
        let first_trace = sim.take_retirement_trace();
        let first_state = arch_state(&sim);

        sim.reset();
        assert!(sim.retirement_trace().is_empty(), "reset must clear the trace");
        let second_run = sim.run(200_000).unwrap();
        let second_trace = sim.take_retirement_trace();

        assert_eq!(first_run.halt, second_run.halt, "seed {seed}");
        assert_eq!(first_run.cycles, second_run.cycles, "seed {seed}");
        assert_eq!(first_trace, second_trace, "seed {seed}: replay diverged");
        assert_eq!(first_state, arch_state(&sim), "seed {seed}: final state diverged");
    }
}

#[test]
fn step_back_round_trip_is_byte_identical() {
    let config = ArchitectureConfig::default();
    for seed in [5u64, 27] {
        let source = generated(seed);
        // Learn the program's length first: the capture point and the
        // forward window must both lie strictly before the halt, because a
        // halted simulator ignores forward steps while `step_back` still
        // rewinds (that is the paper's backward stepping from a finished run).
        let mut probe = Simulator::from_assembly(&source, &config).unwrap();
        probe.run(200_000).unwrap();
        let total_cycles = probe.cycle();
        assert!(total_cycles > 20, "seed {seed} finished too quickly for this test");
        let capture_at = 40.min(total_cycles - 10);
        let window = 7.min(total_cycles - capture_at - 1);

        let mut sim = Simulator::from_assembly(&source, &config).unwrap();
        sim.set_retirement_trace(true);
        for _ in 0..capture_at {
            sim.step();
        }
        let reference = arch_state(&sim);
        let reference_trace = sim.retirement_trace().to_vec();

        // Forward `window`, back `window`: everything must match the capture.
        for _ in 0..window {
            sim.step();
        }
        for _ in 0..window {
            sim.step_back();
        }
        assert_eq!(arch_state(&sim), reference, "seed {seed}: state after step_back");
        assert_eq!(
            sim.retirement_trace(),
            reference_trace.as_slice(),
            "seed {seed}: step_back must regenerate the trace prefix, not append to it"
        );

        // And the run still completes exactly as a fresh simulator would.
        let result = sim.run(200_000).unwrap();
        let mut fresh = Simulator::from_assembly(&source, &config).unwrap();
        let fresh_result = fresh.run(200_000).unwrap();
        assert_eq!(result.halt, fresh_result.halt, "seed {seed}");
        assert_eq!(result.cycles, fresh_result.cycles, "seed {seed}");
        for i in 0..32u8 {
            assert_eq!(sim.int_register(i), fresh.int_register(i), "seed {seed} x{i}");
        }
    }
}

#[test]
fn step_back_trace_is_prefix_of_full_trace() {
    let config = ArchitectureConfig::default();
    let source = generated(9);
    let mut sim = Simulator::from_assembly(&source, &config).unwrap();
    sim.set_retirement_trace(true);
    sim.run(200_000).unwrap();
    let full = sim.take_retirement_trace();
    assert!(full.len() > 50, "expected a non-trivial program");

    sim.reset();
    for _ in 0..60 {
        sim.step();
    }
    sim.step_back();
    let partial = sim.retirement_trace();
    assert!(!partial.is_empty());
    assert_eq!(
        partial,
        &full[..partial.len()],
        "the replayed trace must be a prefix of the full trace"
    );
}
