//! Per-instruction golden tests (§IV: "Each instruction has its own test to
//! verify its correct behavior. This type of test typically checks the state
//! at the end of the simulation.")
//!
//! Every entry assembles a tiny program exercising one instruction and checks
//! the architectural state after the run.  Each program is additionally run
//! through the in-order reference interpreter (`rvsim-iss`), which must halt
//! for the same reason and end with bit-identical architectural registers —
//! so the whole golden table doubles as ISS coverage.

use riscv_superscalar_sim::prelude::*;

fn run(asm: &str) -> Simulator {
    let config = ArchitectureConfig::default();
    let mut sim = Simulator::from_assembly(asm, &config).expect("program assembles");
    let result = sim.run(50_000).expect("program runs");
    assert!(!matches!(result.halt, HaltReason::MaxCyclesReached), "program hung:\n{asm}");

    // Reference-model cross-check: identical halt reason and registers.
    let mut iss = Iss::from_assembly(asm, &config).expect("ISS accepts the same program");
    let iss_result = iss.run(50_000);
    assert_eq!(iss_result.halt, result.halt, "halt reasons differ:\n{asm}");
    for i in 0..32u8 {
        for reg in [RegisterId::x(i), RegisterId::f(i)] {
            assert_eq!(
                sim.register(reg).bits,
                iss.register(reg).bits,
                "register {reg} differs between pipeline and ISS:\n{asm}"
            );
        }
    }
    sim
}

/// Run a snippet that leaves its result in `a0`.
fn a0_of(body: &str) -> i64 {
    let asm = format!("main:\n{body}\n    ret\n");
    run(&asm).int_register(10)
}

/// Run a snippet that leaves its result in `fa0`.
fn fa0_of(body: &str) -> f32 {
    let asm = format!("main:\n{body}\n    ret\n");
    run(&asm).fp_register(10)
}

#[test]
fn rv32i_integer_register_instructions() {
    let cases: &[(&str, i64)] = &[
        ("    li t0, 21\n    li t1, 2\n    add a0, t0, t1", 23),
        ("    li t0, 21\n    li t1, 2\n    sub a0, t0, t1", 19),
        ("    li t0, 0b1100\n    li t1, 0b1010\n    and a0, t0, t1", 0b1000),
        ("    li t0, 0b1100\n    li t1, 0b1010\n    or  a0, t0, t1", 0b1110),
        ("    li t0, 0b1100\n    li t1, 0b1010\n    xor a0, t0, t1", 0b0110),
        ("    li t0, 3\n    li t1, 4\n    sll a0, t0, t1", 48),
        ("    li t0, -64\n    li t1, 3\n    sra a0, t0, t1", -8),
        ("    li t0, -64\n    li t1, 28\n    srl a0, t0, t1", 15),
        ("    li t0, -1\n    li t1, 1\n    slt a0, t0, t1", 1),
        ("    li t0, -1\n    li t1, 1\n    sltu a0, t0, t1", 0),
        ("    addi a0, x0, -7", -7),
        ("    li t0, 0xf0\n    andi a0, t0, 0x3c", 0x30),
        ("    li t0, 0xf0\n    ori  a0, t0, 0x0f", 0xff),
        ("    li t0, 0xff\n    xori a0, t0, 0x0f", 0xf0),
        ("    li t0, 5\n    slli a0, t0, 3", 40),
        ("    li t0, -32\n    srai a0, t0, 2", -8),
        ("    li t0, -32\n    srli a0, t0, 28", 15),
        ("    li t0, 4\n    slti a0, t0, 5", 1),
        ("    li t0, -4\n    sltiu a0, t0, 5", 0),
        ("    lui a0, 0x12345", 0x12345000),
        ("    auipc a0, 1", 0x1000), // auipc is the first instruction, pc = 0
    ];
    for (body, expected) in cases {
        assert_eq!(a0_of(body), *expected, "snippet:\n{body}");
    }
}

#[test]
fn rv32m_multiply_divide_instructions() {
    let cases: &[(&str, i64)] = &[
        ("    li t0, -7\n    li t1, 6\n    mul a0, t0, t1", -42),
        ("    li t0, -1\n    li t1, -1\n    mulh a0, t0, t1", 0),
        ("    li t0, -1\n    li t1, -1\n    mulhu a0, t0, t1", 0xfffffffe_u32 as i32 as i64),
        ("    li t0, -1\n    li t1, -1\n    mulhsu a0, t0, t1", -1),
        ("    li t0, 45\n    li t1, 7\n    div a0, t0, t1", 6),
        ("    li t0, -45\n    li t1, 7\n    div a0, t0, t1", -6),
        ("    li t0, -2\n    li t1, 2\n    divu a0, t0, t1", 0x7fffffff),
        ("    li t0, 45\n    li t1, 7\n    rem a0, t0, t1", 3),
        ("    li t0, -45\n    li t1, 7\n    rem a0, t0, t1", -3),
        ("    li t0, -2\n    li t1, 5\n    remu a0, t0, t1", (u32::MAX - 1) as i64 % 5),
    ];
    for (body, expected) in cases {
        assert_eq!(a0_of(body), *expected, "snippet:\n{body}");
    }
}

#[test]
fn load_store_instructions() {
    let asm = "
buf:
    .zero 32
main:
    la   t0, buf
    li   t1, -2
    sw   t1, 0(t0)
    sh   t1, 8(t0)
    sb   t1, 16(t0)
    lw   a0, 0(t0)
    lh   a1, 8(t0)
    lhu  a2, 8(t0)
    lb   a3, 16(t0)
    lbu  a4, 16(t0)
    ret
";
    let sim = run(asm);
    assert_eq!(sim.int_register(10), -2);
    assert_eq!(sim.int_register(11), -2);
    assert_eq!(sim.int_register(12), 0xfffe);
    assert_eq!(sim.int_register(13), -2);
    assert_eq!(sim.int_register(14), 0xfe);
}

#[test]
fn branch_instructions_taken_and_not_taken() {
    // Each branch contributes a distinct bit to a0 when it behaves correctly.
    let asm = "
main:
    li   a0, 0
    li   t0, 1
    li   t1, 2
    beq  t0, t0, l1
    j    fail
l1: ori  a0, a0, 1
    bne  t0, t1, l2
    j    fail
l2: ori  a0, a0, 2
    blt  t0, t1, l3
    j    fail
l3: ori  a0, a0, 4
    bge  t1, t0, l4
    j    fail
l4: ori  a0, a0, 8
    li   t2, -1
    bltu t0, t2, l5
    j    fail
l5: ori  a0, a0, 16
    bgeu t2, t0, l6
    j    fail
l6: ori  a0, a0, 32
    beq  t0, t1, fail
    ori  a0, a0, 64
    ret
fail:
    li   a0, -1
    ret
";
    assert_eq!(run(asm).int_register(10), 127);
}

#[test]
fn jump_instructions() {
    let asm = "
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    jal  ra, target          # direct call
    mv   s1, a0
    la   t0, target
    jalr ra, t0, 0           # indirect call to the same function
    add  a0, a0, s1
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
target:
    li   a0, 11
    ret
";
    assert_eq!(run(asm).int_register(10), 22);
}

#[test]
fn rv32f_single_precision_instructions() {
    let cases: &[(&str, f32)] = &[
        ("    li t0, 3\n    fcvt.s.w fa0, t0", 3.0),
        (
            "    li t0, 3\n    li t1, 4\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fadd.s fa0, ft0, ft1",
            7.0,
        ),
        (
            "    li t0, 3\n    li t1, 4\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fsub.s fa0, ft0, ft1",
            -1.0,
        ),
        (
            "    li t0, 3\n    li t1, 4\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fmul.s fa0, ft0, ft1",
            12.0,
        ),
        (
            "    li t0, 12\n    li t1, 4\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fdiv.s fa0, ft0, ft1",
            3.0,
        ),
        ("    li t0, 49\n    fcvt.s.w ft0, t0\n    fsqrt.s fa0, ft0", 7.0),
        (
            "    li t0, 2\n    li t1, 9\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fmin.s fa0, ft0, ft1",
            2.0,
        ),
        (
            "    li t0, 2\n    li t1, 9\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fmax.s fa0, ft0, ft1",
            9.0,
        ),
        (
            "    li t0, 2\n    li t1, 3\n    li t2, 10\n    fcvt.s.w ft0, t0\n    fcvt.s.w ft1, t1\n    fcvt.s.w ft2, t2\n    fmadd.s fa0, ft0, ft1, ft2",
            16.0,
        ),
        ("    li t0, 5\n    fcvt.s.w ft0, t0\n    fneg.s fa0, ft0", -5.0),
        ("    li t0, -5\n    fcvt.s.w ft0, t0\n    fabs.s fa0, ft0", 5.0),
    ];
    for (body, expected) in cases {
        assert_eq!(fa0_of(body), *expected, "snippet:\n{body}");
    }
}

#[test]
fn float_compare_and_convert_back() {
    let asm = "
vals:
    .float 2.5, 7.25
main:
    la    t0, vals
    flw   ft0, 0(t0)
    flw   ft1, 4(t0)
    flt.s a0, ft0, ft1
    feq.s a1, ft0, ft0
    fle.s a2, ft1, ft0
    fadd.s ft2, ft0, ft1
    fcvt.w.s a3, ft2
    fmv.x.w a4, ft0
    ret
";
    let sim = run(asm);
    assert_eq!(sim.int_register(10), 1);
    assert_eq!(sim.int_register(11), 1);
    assert_eq!(sim.int_register(12), 0);
    assert_eq!(sim.int_register(13), 9, "9.75 converts toward zero");
    assert_eq!(sim.int_register(14) as u32, 2.5f32.to_bits());
}

#[test]
fn fsw_and_flw_round_trip_through_memory() {
    let asm = "
buf:
    .zero 16
main:
    la    t0, buf
    li    t1, 1069547520    # 1.5f bit pattern
    fmv.w.x ft0, t1
    fsw   ft0, 4(t0)
    flw   fa0, 4(t0)
    ret
";
    assert_eq!(run(asm).fp_register(10), 1.5);
}

#[test]
fn pseudo_instructions_behave_like_their_expansions() {
    let cases: &[(&str, i64)] = &[
        ("    li a0, 1000000", 1_000_000),
        ("    li t0, 77\n    mv a0, t0", 77),
        ("    li t0, 5\n    neg a0, t0", -5),
        ("    li t0, 0\n    seqz a0, t0", 1),
        ("    li t0, 9\n    snez a0, t0", 1),
        ("    li t0, -3\n    sltz a0, t0", 1),
        ("    li t0, 3\n    sgtz a0, t0", 1),
        ("    li t0, 0x0f\n    not a0, t0", !0x0f),
    ];
    for (body, expected) in cases {
        assert_eq!(a0_of(body), *expected, "snippet:\n{body}");
    }
}

#[test]
fn every_builtin_instruction_is_covered_by_the_simulator_dispatch() {
    // Sanity net: every descriptor in the ISA must be executable through at
    // least the evaluator paths the simulator uses (no panics on dispatch).
    let isa = InstructionSet::rv32imf();
    assert!(isa.len() >= 80, "expected a substantial instruction set, got {}", isa.len());
    for descriptor in isa.iter() {
        // Control-flow instructions need target expressions; memory needs
        // address expressions; everything else needs write-back semantics.
        if descriptor.is_memory() {
            assert!(descriptor.address.is_some(), "{} missing address", descriptor.name);
        } else if descriptor.is_control_flow() {
            assert!(descriptor.target.is_some(), "{} missing target", descriptor.name);
        } else {
            assert!(
                !descriptor.interpretable_as.is_empty(),
                "{} missing semantics",
                descriptor.name
            );
        }
    }
}
