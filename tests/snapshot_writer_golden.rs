//! Golden equivalence of the direct snapshot writer: for every processor
//! preset and across a program's whole lifetime (fresh, mid-run, halted),
//! the hand-rolled JSON renderer must produce byte-for-byte the output of
//! `serde_json::to_vec(&ProcessorSnapshot::capture(sim))` — and the server's
//! raw `GetState` payload must match the generic encode path on the wire.

use riscv_superscalar_sim::core::SnapshotBuffer;
use riscv_superscalar_sim::prelude::*;

const PROGRAM: &str = "
data:
    .word 7, 3, 9, 1
main:
    la   t0, data
    li   t1, 4
    li   a0, 0
    fmv.w.x fa0, x0
loop:
    lw   t2, 0(t0)
    mul  t3, t2, t1
    add  a0, a0, t3
    fcvt.s.w ft0, t2
    fadd.s fa0, fa0, ft0
    sw   a0, 16(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
";

fn presets() -> Vec<ArchitectureConfig> {
    vec![ArchitectureConfig::scalar(), ArchitectureConfig::default(), ArchitectureConfig::wide()]
}

#[test]
fn writer_matches_serde_for_every_preset_and_lifecycle_state() {
    for config in presets() {
        let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        let mut buffer = SnapshotBuffer::new();
        let mut cycles = 0u64;
        loop {
            let expected = serde_json::to_vec(&ProcessorSnapshot::capture(&sim)).unwrap();
            let rendered = buffer.render(&sim);
            assert_eq!(
                rendered,
                expected.as_slice(),
                "[{}] direct render differs at cycle {} (halted: {})",
                config.name,
                sim.cycle(),
                sim.is_halted()
            );
            if sim.is_halted() {
                break;
            }
            sim.step();
            cycles += 1;
            assert!(cycles < 100_000, "[{}] program did not halt", config.name);
        }
    }
}

#[test]
fn raw_state_payload_matches_generic_encode_for_every_preset() {
    for config in presets() {
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
                idle_session_ttl_seconds: None,
            });
            let id = match server.handle(Request::CreateSession {
                program: PROGRAM.into(),
                architecture: Some(config.clone()),
                entry: None,
                session: None,
            }) {
                Response::SessionCreated { session } => session,
                other => panic!("unexpected {other:?}"),
            };
            let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            for _ in 0..6 {
                server.handle(Request::Step { session: id, cycles: 3 });
                let fast = server.handle_raw(&raw_request);
                let generic =
                    server.encode_response(&server.handle(Request::GetState { session: id }));
                assert_eq!(
                    fast, generic,
                    "[{} compress={compress}] wire payloads differ",
                    config.name
                );
            }
        }
    }
}
