//! Loopback TCP smoke test — the workspace-level analogue of the CI job:
//! start the network front end, run a short `loadgen --tcp` burst, assert
//! zero errors, check the metrics endpoint, shut down cleanly; plus
//! raw-socket regressions for the slow-client bug family (dribbled
//! pipelined requests, slow response readers, HTTP version echo).  Skips
//! gracefully when the sandbox forbids loopback sockets.

use riscv_superscalar_sim::net::find_head_end;
use riscv_superscalar_sim::prelude::*;
use std::io::{Read, Write};
use std::time::Duration;

/// Start a front end over a fresh direct-mode simulation server.
fn start_front_end() -> NetServer {
    let deployment = DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: true,
        worker_threads: 4,
        idle_session_ttl_seconds: Some(600),
    };
    NetServer::start(SimulationServer::new(deployment), NetConfig::default())
        .expect("front end starts")
}

/// Create a session over the wire and return its id.
fn create_session(addr: std::net::SocketAddr) -> u64 {
    let mut client = TcpApiClient::new(addr);
    match client
        .call(&Request::CreateSession {
            program: "main:\n  li t0, 7\n  li t1, 100\nloop:\n  addi t0, t0, 1\n  bne t0, t1, loop\n  ret\n"
                .to_string(),
            architecture: None,
            entry: None,
            session: None,
        })
        .expect("create session")
    {
        Response::SessionCreated { session } => session,
        other => panic!("unexpected response: {other:?}"),
    }
}

/// Frame a `POST /api` keep-alive request around `body`.
fn api_request(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"POST /api HTTP/1.1\r\nhost: smoke\r\ncontent-length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(body);
    out
}

/// Split complete `status-line + headers + content-length body` responses
/// off the front of `buf`, returning the statuses of the framed ones.
fn drain_responses(buf: &mut Vec<u8>) -> Vec<String> {
    let mut statuses = Vec::new();
    loop {
        let Some(head_end) = find_head_end(buf) else { return statuses };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let body_len: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no content-length in:\n{head}"));
        if buf.len() < head_end + body_len {
            return statuses;
        }
        statuses.push(head.lines().next().unwrap_or_default().to_string());
        buf.drain(..head_end + body_len);
    }
}

#[test]
fn tcp_front_end_survives_a_loadgen_burst_with_zero_errors() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable");
        return;
    }

    let net = start_front_end();
    let addr = net.local_addr();

    // A short burst of the paper scenario: 6 users, 5 interactive steps
    // each, no think time.
    let mut scenario = Scenario::paper_scaled(6, 0.0);
    scenario.steps_per_user = 5;
    let report = run_load_test_tcp(addr, &scenario);
    // 6 users × (create + 5 × (step + state) + destroy) transactions.
    assert_eq!(report.transactions, 72);
    assert_eq!(report.errors, 0, "TCP burst must complete without errors");
    assert!(report.throughput_tps > 0.0);

    // Delta mode over the same wire.
    scenario.delta_state = true;
    let delta_report = run_load_test_tcp(addr, &scenario);
    assert_eq!(delta_report.errors, 0, "delta-mode TCP burst must complete without errors");

    // The metrics endpoint reflects the traffic.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let served: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("rvsim_http_requests_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no request counter in metrics:\n{text}"));
    assert!(served >= 144, "expected both bursts counted, got {served}");
    assert!(text.contains("rvsim_sessions_live 0"), "all sessions destroyed:\n{text}");

    net.shutdown();
}

#[test]
fn pipelined_requests_dribbled_in_tiny_fragments_all_get_answers() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable");
        return;
    }
    let net = start_front_end();
    let addr = net.local_addr();
    let session = create_session(addr);

    // One keep-alive connection, 12 pipelined GetState requests, written as
    // a single pre-concatenated burst but dribbled onto the socket a few
    // bytes at a time — every server-side read sees a partial request, and
    // most see a request boundary in the middle of a fragment.  This is the
    // regression for the incremental parser's persisted scan offset: the
    // old head scan restarted from byte 0 on every fragment.
    let body = serde_json::to_vec(&Request::GetState { session }).unwrap();
    let mut wire = Vec::new();
    let pipelined = 12;
    for _ in 0..pipelined {
        wire.extend_from_slice(&api_request(&body));
    }
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut statuses = Vec::new();
    let mut inbox = Vec::new();
    let mut chunk = [0u8; 4096];
    for fragment in wire.chunks(7) {
        stream.write_all(fragment).unwrap();
        std::thread::sleep(Duration::from_millis(1));
        // Drain whatever responses have completed so far so the pipeline
        // keeps flowing even if the server answers faster than we write.
        if let Ok(n) = {
            stream.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
            stream.read(&mut chunk)
        } {
            assert!(n > 0, "server closed mid-pipeline");
            inbox.extend_from_slice(&chunk[..n]);
            statuses.extend(drain_responses(&mut inbox));
        }
    }
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    while statuses.len() < pipelined {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed before answering the full pipeline");
        inbox.extend_from_slice(&chunk[..n]);
        statuses.extend(drain_responses(&mut inbox));
    }
    assert_eq!(statuses.len(), pipelined);
    for status in &statuses {
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
    net.shutdown();
}

#[test]
fn slow_reader_receives_every_pipelined_response_intact() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable");
        return;
    }
    let net = start_front_end();
    let addr = net.local_addr();
    let session = create_session(addr);

    // Pipeline a burst of responses, then read them back in tiny sips: the
    // server's write side must park each connection's unsent tail across
    // many partial writes without corrupting response boundaries.
    let body = serde_json::to_vec(&Request::GetState { session }).unwrap();
    let pipelined = 8;
    let mut wire = Vec::new();
    for _ in 0..pipelined {
        wire.extend_from_slice(&api_request(&body));
    }
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(&wire).unwrap();

    let mut statuses = Vec::new();
    let mut inbox = Vec::new();
    let mut sip = [0u8; 256];
    while statuses.len() < pipelined {
        let n = stream.read(&mut sip).unwrap();
        assert!(n > 0, "server closed before the slow reader finished");
        inbox.extend_from_slice(&sip[..n]);
        statuses.extend(drain_responses(&mut inbox));
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(statuses.len(), pipelined);
    for status in &statuses {
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
    net.shutdown();
}

#[test]
fn malformed_and_oversized_content_lengths_are_rejected_on_the_wire() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable");
        return;
    }
    let net = start_front_end();
    let addr = net.local_addr();

    let reject = |header_value: &str, expected_status: &str| {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let head = format!("POST /api HTTP/1.1\r\ncontent-length:{header_value}\r\n\r\n");
        stream.write_all(head.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(
            text.starts_with(expected_status),
            "content-length `{header_value}` answered:\n{text}"
        );
    };

    // The permissive `usize::from_str` shapes the old parser accepted must
    // all be 400 now: signs, embedded whitespace, hex, text, empty.
    reject("+42", "HTTP/1.1 400 Bad Request");
    reject("-42", "HTTP/1.1 400 Bad Request");
    reject("4 2", "HTTP/1.1 400 Bad Request");
    reject("0x10", "HTTP/1.1 400 Bad Request");
    reject("ten", "HTTP/1.1 400 Bad Request");
    reject("", "HTTP/1.1 400 Bad Request");

    // A length past the body cap — including digit strings too long for any
    // usize — is 413, answered from the head alone without buffering.
    reject("999999999999", "HTTP/1.1 413 Payload Too Large");
    reject("99999999999999999999999999999999", "HTTP/1.1 413 Payload Too Large");

    // A whitespace-padded plain digit string still frames the body: the
    // strictness is about shape, not incidental padding.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /api HTTP/1.1\r\ncontent-length:  2 \r\nconnection: close\r\n\r\n{}")
        .unwrap();
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).unwrap();
    assert!(bytes.starts_with(b"HTTP/1.1 200 OK"), "{}", String::from_utf8_lossy(&bytes));

    net.shutdown();
}

#[test]
fn status_lines_echo_the_request_version_and_405_names_allowed_methods() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable");
        return;
    }
    let net = start_front_end();
    let addr = net.local_addr();

    // HTTP/1.0 request → HTTP/1.0 status line (and implicit close).
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");

    // Unsupported method → 405 with an Allow header, version echoed.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"PUT /api HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed"), "{text}");
    assert!(text.to_ascii_lowercase().contains("allow: get, post"), "{text}");

    net.shutdown();
}
