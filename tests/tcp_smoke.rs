//! Loopback TCP smoke test — the workspace-level analogue of the CI job:
//! start the network front end, run a short `loadgen --tcp` burst, assert
//! zero errors, check the metrics endpoint, shut down cleanly.  Skips
//! gracefully when the sandbox forbids loopback sockets.

use riscv_superscalar_sim::prelude::*;
use std::io::{Read, Write};

#[test]
fn tcp_front_end_survives_a_loadgen_burst_with_zero_errors() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable");
        return;
    }

    let deployment = DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: true,
        worker_threads: 4,
        idle_session_ttl_seconds: Some(600),
    };
    let net = NetServer::start(SimulationServer::new(deployment), NetConfig::default())
        .expect("front end starts");
    let addr = net.local_addr();

    // A short burst of the paper scenario: 6 users, 5 interactive steps
    // each, no think time.
    let mut scenario = Scenario::paper_scaled(6, 0.0);
    scenario.steps_per_user = 5;
    let report = run_load_test_tcp(addr, &scenario);
    // 6 users × (create + 5 × (step + state) + destroy) transactions.
    assert_eq!(report.transactions, 72);
    assert_eq!(report.errors, 0, "TCP burst must complete without errors");
    assert!(report.throughput_tps > 0.0);

    // Delta mode over the same wire.
    scenario.delta_state = true;
    let delta_report = run_load_test_tcp(addr, &scenario);
    assert_eq!(delta_report.errors, 0, "delta-mode TCP burst must complete without errors");

    // The metrics endpoint reflects the traffic.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let served: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("rvsim_http_requests_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no request counter in metrics:\n{text}"));
    assert!(served >= 144, "expected both bursts counted, got {served}");
    assert!(text.contains("rvsim_sessions_live 0"), "all sessions destroyed:\n{text}");

    net.shutdown();
}
