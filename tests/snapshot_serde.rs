//! Snapshot serde round-trip property test: a [`ProcessorSnapshot`] captured
//! from a randomly generated program at a random mid-execution point must
//! survive `Snapshot -> JSON -> Snapshot` with the register file, cache-line
//! (memory delta) view and statistics intact.  The statistics object itself
//! gets the same treatment.

use proptest::prelude::*;
use riscv_superscalar_sim::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_round_trips_through_json(seed in any::<u64>(), steps in 0u64..400) {
        let source = generate_program(seed, &GenOptions::default());
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly(&source, &config)
            .map_err(|e| TestCaseError::fail(format!("seed {seed} does not assemble: {e}")))?;
        for _ in 0..steps {
            sim.step();
        }

        let snapshot = ProcessorSnapshot::capture(&sim);
        let json = snapshot.to_json();
        let back: ProcessorSnapshot = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(format!("snapshot does not re-parse: {e}")))?;
        prop_assert_eq!(&back, &snapshot);

        // Spot-check the pieces the GUI depends on, in case a future change
        // weakens the derived PartialEq.
        prop_assert_eq!(back.int_registers.len(), 32);
        prop_assert_eq!(back.fp_registers.len(), 32);
        for (a, b) in back.int_registers.iter().zip(snapshot.int_registers.iter()) {
            prop_assert_eq!(a.bits, b.bits);
            prop_assert_eq!(&a.renamed_to, &b.renamed_to);
        }
        prop_assert_eq!(back.cache_lines.len(), snapshot.cache_lines.len());
        prop_assert_eq!(back.headline.committed, snapshot.headline.committed);

        let stats = sim.statistics();
        let stats_json = serde_json::to_string(&stats)
            .map_err(|e| TestCaseError::fail(format!("stats do not serialize: {e}")))?;
        let stats_back: SimulationStatistics = serde_json::from_str(&stats_json)
            .map_err(|e| TestCaseError::fail(format!("stats do not re-parse: {e}")))?;
        prop_assert_eq!(stats_back, stats);
    }

    #[test]
    fn retirement_trace_round_trips_through_json(seed in any::<u64>()) {
        let source = generate_program(seed, &GenOptions::default());
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly(&source, &config)
            .map_err(|e| TestCaseError::fail(format!("seed {seed} does not assemble: {e}")))?;
        sim.set_retirement_trace(true);
        for _ in 0..200 {
            sim.step();
        }
        let trace = sim.retirement_trace();
        let json = serde_json::to_string(trace)
            .map_err(|e| TestCaseError::fail(format!("trace does not serialize: {e}")))?;
        let back: Vec<riscv_superscalar_sim::core::RetireEvent> = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(format!("trace does not re-parse: {e}")))?;
        prop_assert_eq!(back.as_slice(), trace);
    }
}
