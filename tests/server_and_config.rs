//! Cross-crate integration tests of the server protocol, architecture
//! configuration handling, and the property-based determinism guarantees the
//! backward-stepping feature relies on (§III-B).

use proptest::prelude::*;
use riscv_superscalar_sim::prelude::*;

const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 30
loop:
    addi t0, t0, 7
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
";

#[test]
fn full_client_workflow_compile_create_run_stats() {
    let server = ThreadedServer::start(SimulationServer::new(DeploymentConfig::default()));
    let client = server.client();

    // 1. Compile C to assembly.
    let response = client
        .call(&Request::Compile {
            source: "int main(void) { int s = 0; for (int i = 0; i < 16; i++) s += i; return s; }"
                .into(),
            optimization: 2,
        })
        .unwrap();
    let assembly = match response {
        Response::Compiled { assembly, .. } => assembly,
        other => panic!("unexpected {other:?}"),
    };

    // 2. Create a session with a customized architecture.
    let mut arch = ArchitectureConfig::wide();
    arch.name = "workflow-test".into();
    let response = client
        .call(&Request::CreateSession {
            program: assembly,
            architecture: Some(arch),
            entry: None,
            session: None,
        })
        .unwrap();
    let session = match response {
        Response::SessionCreated { session } => session,
        other => panic!("unexpected {other:?}"),
    };

    // 3. Interactive stepping with state snapshots (the GUI loop).
    for _ in 0..5 {
        let stepped = client.call(&Request::Step { session, cycles: 1 }).unwrap();
        assert!(matches!(stepped, Response::Stepped { .. }));
        let state = client.call(&Request::GetState { session }).unwrap();
        match state {
            Response::State(snapshot) => assert_eq!(snapshot.int_registers.len(), 32),
            other => panic!("unexpected {other:?}"),
        }
    }

    // 4. Run to completion and check statistics.
    let response = client.call(&Request::Run { session, max_cycles: 1_000_000 }).unwrap();
    match response {
        Response::Stepped { halted, .. } => assert!(halted),
        other => panic!("unexpected {other:?}"),
    }
    let response = client.call(&Request::GetStats { session }).unwrap();
    match response {
        Response::Stats(stats) => {
            assert!(stats.committed > 50);
            assert!(stats.ipc() > 0.0);
            assert!(stats.branch_accuracy() > 0.0);
        }
        other => panic!("unexpected {other:?}"),
    }

    // 5. Clean up.
    assert_eq!(client.call(&Request::DestroySession { session }).unwrap(), Response::Destroyed);
    server.shutdown();
}

#[test]
fn architecture_json_export_import_drives_the_simulation() {
    // Export a customized architecture to JSON (the settings window's
    // export), re-import it, and verify the simulation actually uses it.
    let mut config = ArchitectureConfig { name: "exported".into(), ..Default::default() };
    config.buffers.fetch_width = 1;
    config.buffers.commit_width = 1;
    config.units.fx_units.truncate(1);
    let json = config.to_json();
    let imported = ArchitectureConfig::from_json(&json).unwrap();
    assert_eq!(imported, config);

    let mut narrow = Simulator::from_assembly(PROGRAM, &imported).unwrap();
    narrow.run(1_000_000).unwrap();
    let mut wide = Simulator::from_assembly(PROGRAM, &ArchitectureConfig::wide()).unwrap();
    wide.run(1_000_000).unwrap();
    assert_eq!(narrow.int_register(10), 210);
    assert_eq!(wide.int_register(10), 210);
    assert!(
        narrow.statistics().cycles > wide.statistics().cycles,
        "single-issue config must be slower than the 4-wide config"
    );
}

#[test]
fn snapshot_json_is_stable_and_complete() {
    let mut sim = Simulator::from_assembly(PROGRAM, &ArchitectureConfig::default()).unwrap();
    for _ in 0..12 {
        sim.step();
    }
    let snapshot = ProcessorSnapshot::capture(&sim);
    let json = snapshot.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["cycle"], 12);
    assert!(value["int_registers"].as_array().unwrap().len() == 32);
    assert!(value["headline"]["ipc"].as_f64().is_some());
    // Capturing twice without stepping gives the identical snapshot.
    let again = ProcessorSnapshot::capture(&sim);
    assert_eq!(again, snapshot);
}

#[test]
fn backward_stepping_matches_forward_replay_at_every_depth() {
    let config = ArchitectureConfig::default();
    let mut reference = Simulator::from_assembly(PROGRAM, &config).unwrap();
    // Record committed-instruction counts for the first 40 cycles.
    let mut committed_by_cycle = Vec::new();
    for _ in 0..40 {
        reference.step();
        committed_by_cycle.push(reference.statistics().committed);
    }
    // Now step a second simulator forward 40 cycles and walk it back one cycle
    // at a time; at every depth the statistics must match the recording.
    let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
    for _ in 0..40 {
        sim.step();
    }
    for depth in (1..40).rev() {
        sim.step_back();
        assert_eq!(sim.cycle(), depth as u64);
        assert_eq!(
            sim.statistics().committed,
            committed_by_cycle[depth - 1],
            "state mismatch after stepping back to cycle {depth}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator is an interpreter of straight-line arithmetic: its
    /// results must match a host-side oracle for arbitrary operand values,
    /// regardless of the architecture it runs on.
    #[test]
    fn prop_arithmetic_matches_host_oracle(a in -10_000i32..10_000, b in -10_000i32..10_000, c in 1i32..1_000) {
        let asm = format!(
            "main:\n    li t0, {a}\n    li t1, {b}\n    li t2, {c}\n    add t3, t0, t1\n    mul t4, t3, t2\n    sub t5, t4, t0\n    div t6, t5, t2\n    rem a1, t5, t2\n    mv a0, t6\n    ret\n"
        );
        let expected_div = (a.wrapping_add(b).wrapping_mul(c).wrapping_sub(a)) / c;
        let expected_rem = (a.wrapping_add(b).wrapping_mul(c).wrapping_sub(a)) % c;
        for config in [ArchitectureConfig::scalar(), ArchitectureConfig::wide()] {
            let mut sim = Simulator::from_assembly(&asm, &config).unwrap();
            sim.run(100_000).unwrap();
            prop_assert_eq!(sim.int_register(10), expected_div as i64);
            prop_assert_eq!(sim.int_register(11), expected_rem as i64);
        }
    }

    /// Memory round-trips: storing arbitrary words and reading them back must
    /// reproduce the values in order, whatever the cache geometry.
    #[test]
    fn prop_memory_round_trip(values in proptest::collection::vec(any::<i32>(), 1..16), assoc in 1usize..4) {
        let n = values.len();
        let mut asm = String::from("buf:\n    .zero 64\nmain:\n    la t0, buf\n");
        for (i, v) in values.iter().enumerate() {
            asm.push_str(&format!("    li t1, {v}\n    sw t1, {}(t0)\n", i * 4));
        }
        asm.push_str("    li a0, 0\n");
        for i in 0..n {
            asm.push_str(&format!("    lw t2, {}(t0)\n    add a0, a0, t2\n", i * 4));
        }
        asm.push_str("    ret\n");
        let mut config = ArchitectureConfig::default();
        config.cache.associativity = assoc;
        config.cache.line_count = assoc * 4;
        let mut sim = Simulator::from_assembly(&asm, &config).unwrap();
        sim.run(200_000).unwrap();
        let expected: i64 = values.iter().fold(0i32, |acc, v| acc.wrapping_add(*v)) as i64;
        prop_assert_eq!(sim.int_register(10), expected);
    }

    /// Determinism: running the same program twice gives byte-identical
    /// statistics (the property backward simulation depends on).
    #[test]
    fn prop_replay_is_deterministic(seed in 0u32..1000) {
        let iterations = 5 + seed % 20;
        let asm = format!(
            "main:\n    li t0, {iterations}\n    li a0, 0\nloop:\n    addi a0, a0, 3\n    addi t0, t0, -1\n    bnez t0, loop\n    ret\n"
        );
        let config = ArchitectureConfig::default();
        let mut first = Simulator::from_assembly(&asm, &config).unwrap();
        let r1 = first.run(100_000).unwrap();
        let mut second = Simulator::from_assembly(&asm, &config).unwrap();
        let r2 = second.run(100_000).unwrap();
        prop_assert_eq!(r1.cycles, r2.cycles);
        prop_assert_eq!(r1.statistics, r2.statistics);
        prop_assert_eq!(first.int_register(10), (iterations * 3) as i64);
    }
}
