//! Smoke test for the doc-facing entry point: `examples/quickstart.rs` must
//! keep building and running, because it is the first thing README readers
//! try.  Driving it through `cargo run --example` also catches manifest rot
//! (the example disappearing from the workspace layout).

use std::process::Command;

#[test]
fn quickstart_example_builds_and_runs() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", "quickstart"])
        .env("CARGO_TERM_COLOR", "never")
        .output()
        .expect("cargo is runnable");
    assert!(
        output.status.success(),
        "quickstart example failed with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("halt: MainReturned"), "unexpected quickstart output:\n{stdout}");
    assert!(stdout.contains("snapshot JSON size:"), "unexpected quickstart output:\n{stdout}");
}
