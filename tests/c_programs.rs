//! End-to-end tests of the C tool-chain: compile at every optimization level,
//! assemble, simulate, and compare against host-computed expectations.

use riscv_superscalar_sim::prelude::*;

const ALL_LEVELS: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

fn run_c(source: &str, opt: OptLevel) -> Simulator {
    let output = compile(source, opt).unwrap_or_else(|e| panic!("compile failed: {e:?}"));
    let mut sim = Simulator::from_assembly(&output.assembly, &ArchitectureConfig::default())
        .unwrap_or_else(|e| panic!("assembly rejected at {opt:?}: {e}\n{}", output.assembly));
    let result = sim.run(10_000_000).expect("runs");
    assert!(!matches!(result.halt, HaltReason::MaxCyclesReached), "C program hung at {opt:?}");
    sim
}

fn returns(source: &str) -> Vec<i64> {
    ALL_LEVELS.iter().map(|opt| run_c(source, *opt).int_register(10)).collect()
}

fn assert_all_levels(source: &str, expected: i64) {
    let results = returns(source);
    for (opt, result) in ALL_LEVELS.iter().zip(&results) {
        assert_eq!(*result, expected, "wrong result at {opt:?}");
    }
}

#[test]
fn negative_division_by_powers_of_two_truncates_toward_zero() {
    // Strength reduction must not change results: C's `/` and `%` truncate
    // toward zero, while bare srai/andi round toward -inf / mask.
    assert_all_levels(
        "int main(void) { int x = -7; return x / 2 * 10000 + x % 8 * 100 + x / 1 + 100 / 4; }",
        -3 * 10000 + -7 * 100 + -7 + 25,
    );
}

#[test]
fn arithmetic_and_precedence() {
    assert_all_levels("int main(void) { return (2 + 3) * 4 - 10 / 2; }", 15);
    assert_all_levels(
        "int main(void) { int x = 10; return x % 3 + (x << 2) + (x >> 1); }",
        1 + 40 + 5,
    );
    assert_all_levels(
        "int main(void) { int x = 12; int y = 10; return (x & y) | (x ^ y); }",
        (12 & 10) | (12 ^ 10),
    );
    assert_all_levels("int main(void) { return -5 + +7; }", 2);
}

#[test]
fn control_flow_and_loops() {
    assert_all_levels(
        "int main(void) { int s = 0; for (int i = 1; i <= 100; i++) s += i; return s; }",
        5050,
    );
    assert_all_levels(
        "int main(void) { int n = 0; int i = 0; while (i < 50) { if (i % 3 == 0) n++; i++; } return n; }",
        17,
    );
    assert_all_levels(
        "int main(void) { int s = 0; for (int i = 0; i < 20; i++) { if (i == 5) continue; if (i == 15) break; s += i; } return s; }",
        (0..15).filter(|i| *i != 5).sum::<i64>(),
    );
    assert_all_levels(
        "int main(void) { int a = 3; int b = 8; if (a < b && b < 10) return 1; else return 2; }",
        1,
    );
    assert_all_levels("int main(void) { int a = 3; if (a > 5 || a == 3) return 7; return 0; }", 7);
}

#[test]
fn functions_and_recursion() {
    assert_all_levels(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main(void) { return fib(12); }",
        144,
    );
    assert_all_levels(
        "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
         int main(void) { return fact(7); }",
        5040,
    );
    assert_all_levels(
        "int max3(int a, int b, int c) { if (a >= b && a >= c) return a; if (b >= c) return b; return c; }
         int main(void) { return max3(3, 9, 6) + max3(8, 1, 2) + max3(4, 4, 7); }",
        9 + 8 + 7,
    );
}

#[test]
fn arrays_and_globals() {
    assert_all_levels(
        "int data[8] = {5, 3, 8, 1, 9, 2, 7, 4};
         int main(void) {
             int best = data[0];
             for (int i = 1; i < 8; i++) {
                 if (data[i] > best) best = data[i];
             }
             return best;
         }",
        9,
    );
    assert_all_levels(
        "int hist[10];
         int main(void) {
             for (int i = 0; i < 30; i++) { hist[i % 10] += 1; }
             int s = 0;
             for (int i = 0; i < 10; i++) { s += hist[i] * i; }
             return s;
         }",
        (0..10).map(|i| 3 * i).sum::<i64>(),
    );
    assert_all_levels(
        "char text[6] = {'h', 'e', 'l', 'l', 'o', 0};
         int main(void) {
             int n = 0;
             for (int i = 0; text[i] != 0; i++) { n += text[i]; }
             return n;
         }",
        "hello".bytes().map(|b| b as i64).sum::<i64>(),
    );
}

#[test]
fn floating_point_kernels() {
    // Dot product of two float vectors, result converted to int.
    let source = "
float a[4] = {1.5, 2.0, 0.5, 4.0};
float b[4] = {2.0, 3.0, 8.0, 0.25};
int main(void) {
    float sum = 0.0;
    for (int i = 0; i < 4; i++) {
        sum = sum + a[i] * b[i];
    }
    return (int)(sum * 10.0);
}
";
    // 3 + 6 + 4 + 1 = 14 -> 140
    assert_all_levels(source, 140);

    let source = "
int main(void) {
    float x = 0.0;
    for (int i = 1; i <= 10; i++) {
        x = x + (float)i / 2.0;
    }
    return (int)x;
}
";
    assert_all_levels(source, 27);
}

#[test]
fn pointer_parameters_and_in_place_updates() {
    let source = "
int buffer[6] = {1, 2, 3, 4, 5, 6};
void scale(int v[], int n, int factor) {
    for (int i = 0; i < n; i++) {
        v[i] = v[i] * factor;
    }
}
int sum(int v[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += v[i];
    return s;
}
int main(void) {
    scale(buffer, 6, 3);
    return sum(buffer, 6);
}
";
    assert_all_levels(source, 63);
}

#[test]
fn extern_arrays_come_from_memory_settings() {
    let source = "
extern int samples[];
int main(void) {
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        acc += samples[i];
    }
    return acc;
}
";
    for opt in ALL_LEVELS {
        let output = compile(source, opt).unwrap();
        let mut memory = MemorySettings::new();
        memory.add(MemoryArray {
            name: "samples".into(),
            element: ScalarType::Word,
            alignment: 16,
            fill: ArrayFill::Values((1..=10).map(|v| v as f64).collect()),
        });
        let mut sim = Simulator::from_assembly_with_memory(
            &output.assembly,
            &ArchitectureConfig::default(),
            memory,
        )
        .expect("assembles");
        sim.run(1_000_000).unwrap();
        assert_eq!(sim.int_register(10), 55, "extern array sum wrong at {opt:?}");
    }
}

#[test]
fn optimization_levels_reduce_work_monotonically_in_practice() {
    // Not a hard guarantee in general, but for this kernel each level should
    // commit no more instructions than the previous one.
    let source = "
int main(void) {
    int s = 0;
    for (int i = 0; i < 64; i++) {
        s += i * 4 + 16 / 4 - 3 * 1;
    }
    return s;
}
";
    let committed: Vec<u64> =
        ALL_LEVELS.iter().map(|opt| run_c(source, *opt).statistics().committed).collect();
    // Exact monotonicity between adjacent levels is not guaranteed (register
    // allocation trades loads for moves), but no level may be worse than -O0
    // and -O3 must clearly beat it.
    for (opt, count) in ALL_LEVELS.iter().zip(&committed).skip(1) {
        assert!(
            *count <= committed[0],
            "{opt:?} committed more instructions than -O0: {committed:?}"
        );
    }
    assert!(committed[3] < committed[0], "-O3 should clearly beat -O0 ({committed:?})");
}

#[test]
fn compile_errors_are_reported_with_lines() {
    let err = compile("int main(void) {\n  int x = 1\n  return x;\n}", OptLevel::O0).unwrap_err();
    assert!(!err.is_empty());
    assert!(err[0].line >= 2);
    let err = compile("int main(void) { return undeclared_thing; }", OptLevel::O2).unwrap_err();
    assert!(err[0].message.contains("undeclared"));
}
