//! Golden-equivalence fixtures for the predecoded execution path.
//!
//! The fixtures under `tests/fixtures/` were captured from the seed
//! (decode-per-fetch) implementation, *before* the predecoded-µop layer
//! landed.  This suite re-runs the same programs on the same configurations
//! and asserts that the retirement trace, the full `SimulationStatistics`
//! and the processor-snapshot serde output are byte-identical to those
//! fixtures — guarding, in particular, the `DescriptorId`-keyed
//! `dynamic_mix` serialization and the interned-mnemonic trace fields.
//!
//! Regenerate (only when an *intentional* behaviour change is made) with:
//!
//! ```bash
//! RVSIM_UPDATE_FIXTURES=1 cargo test --test predecode_golden
//! ```

use riscv_superscalar_sim::prelude::*;
use std::path::PathBuf;

/// Fixed program set: the paper's sample kernels plus two generated programs.
fn programs() -> Vec<(&'static str, String)> {
    let arithmetic = "
main:
    li   t0, 0
    li   t1, 64
    li   a0, 0
loop:
    addi a0, a0, 3
    xor  t2, a0, t1
    add  t0, t0, t2
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
"
    .to_string();
    let memory = "
buf:
    .zero 512
main:
    la   t0, buf
    li   t1, 128
    li   a0, 0
loop:
    sw   t1, 0(t0)
    lw   t2, 0(t0)
    add  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
"
    .to_string();
    let float = "
a:
    .float 1.5, 2.0, 0.5, 4.0, 3.25, 0.75, 2.5, 1.0
b:
    .float 2.0, 3.0, 8.0, 0.25, 1.0, 4.0, 0.5, 2.0
main:
    la   t0, a
    la   t1, b
    li   t2, 8
    fmv.w.x fa0, x0
loop:
    flw  ft0, 0(t0)
    flw  ft1, 0(t1)
    fmadd.s fa0, ft0, ft1, fa0
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    fcvt.w.s a0, fa0
    ret
"
    .to_string();
    vec![
        ("arithmetic", arithmetic),
        ("memory", memory),
        ("float", float),
        ("gen3", generate_program(3, &GenOptions::default())),
        ("gen11", generate_program(11, &GenOptions::default())),
    ]
}

fn configs() -> Vec<(&'static str, ArchitectureConfig)> {
    vec![
        ("scalar", ArchitectureConfig::scalar()),
        ("default", ArchitectureConfig::default()),
        ("wide", ArchitectureConfig::wide()),
    ]
}

/// Capture everything the fixture compares: retirement trace, statistics,
/// a mid-run snapshot (in-flight instructions visible) and the final
/// snapshot, all in serialized form.
fn capture(source: &str, config: &ArchitectureConfig) -> serde_json::Value {
    // Mid-run snapshot from a separate simulator so stepping does not
    // perturb the traced run.
    let mut probe = Simulator::from_assembly(source, config).expect("program assembles");
    for _ in 0..30 {
        probe.step();
    }
    let snapshot_mid = ProcessorSnapshot::capture(&probe);

    let mut sim = Simulator::from_assembly(source, config).expect("program assembles");
    sim.set_retirement_trace(true);
    let result = sim.run(500_000).expect("program runs");
    assert!(
        !matches!(result.halt, HaltReason::MaxCyclesReached),
        "golden program did not terminate"
    );
    let snapshot_final = ProcessorSnapshot::capture(&sim);

    serde_json::json!({
        "halt": format!("{:?}", result.halt),
        "cycles": result.cycles,
        "trace": sim.retirement_trace(),
        "statistics": sim.statistics(),
        "snapshot_mid": snapshot_mid,
        "snapshot_final": snapshot_final,
    })
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(format!("{name}.json"))
}

#[test]
fn execution_matches_seed_fixtures() {
    let update = std::env::var("RVSIM_UPDATE_FIXTURES").is_ok();
    let mut failures = Vec::new();
    for (prog_name, source) in programs() {
        for (config_name, config) in configs() {
            let name = format!("golden_{prog_name}_{config_name}");
            let mut actual =
                serde_json::to_string_pretty(&capture(&source, &config)).expect("serializes");
            actual.push('\n');
            let path = fixture_path(&name);
            if update {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &actual).unwrap();
                continue;
            }
            let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "fixture {name} missing ({e}); regenerate with \
                     RVSIM_UPDATE_FIXTURES=1 cargo test --test predecode_golden"
                )
            });
            if actual != expected {
                // Report the first differing line for a debuggable failure.
                let diff_line = actual
                    .lines()
                    .zip(expected.lines())
                    .enumerate()
                    .find(|(_, (a, e))| a != e)
                    .map(|(i, (a, e))| format!("line {}: got `{a}`, fixture `{e}`", i + 1))
                    .unwrap_or_else(|| "outputs differ in length".to_string());
                failures.push(format!("{name}: {diff_line}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "execution diverged from the seed fixtures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fixture_trace_round_trips_through_serde() {
    // The comparison above is textual; this guards the deserialize side of
    // the interned-mnemonic types (RetireEvent::mnemonic, dynamic_mix keys).
    let (_, source) = &programs()[0];
    let mut sim = Simulator::from_assembly(source, &ArchitectureConfig::default()).unwrap();
    sim.set_retirement_trace(true);
    sim.run(500_000).unwrap();
    let trace = sim.retirement_trace().to_vec();
    let json = serde_json::to_string(&trace).unwrap();
    let back: Vec<rvsim_core::RetireEvent> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);

    let stats = sim.statistics();
    let json = serde_json::to_string(&stats).unwrap();
    let back: SimulationStatistics = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}
