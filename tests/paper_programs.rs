//! The complex validation programs from the paper's testing section (§IV):
//! quicksort, a linked list walk, and polymorphism (dynamic dispatch).
//! Each runs to completion on the default architecture and on the scalar and
//! wide presets, and must produce the same, host-verified result everywhere.

use riscv_superscalar_sim::prelude::*;

fn run_on(asm: &str, config: &ArchitectureConfig) -> Simulator {
    let mut sim = Simulator::from_assembly(asm, config).expect("program assembles");
    let result = sim.run(5_000_000).expect("program runs");
    assert!(
        !matches!(result.halt, HaltReason::MaxCyclesReached),
        "program did not terminate on {}",
        config.name
    );
    sim
}

fn run_everywhere(asm: &str) -> Vec<(String, Simulator)> {
    [ArchitectureConfig::scalar(), ArchitectureConfig::default(), ArchitectureConfig::wide()]
        .into_iter()
        .map(|c| (c.name.clone(), run_on(asm, &c)))
        .collect()
}

#[test]
fn quicksort_in_assembly_sorts_and_is_architecture_independent() {
    // Quicksort written directly in assembly (recursive, uses the call stack).
    let asm = "
data:
    .word 9, 3, 7, 1, 8, 2, 6, 5, 4, 0, 15, 11, 13, 10, 14, 12

# quicksort(a0 = base, a1 = lo, a2 = hi)
quicksort:
    bge  a1, a2, qs_done
    addi sp, sp, -32
    sw   ra, 28(sp)
    sw   s1, 24(sp)
    sw   s2, 20(sp)
    sw   s3, 16(sp)
    mv   s1, a1              # lo
    mv   s2, a2              # hi
    # partition: pivot = a[hi]
    slli t0, a2, 2
    add  t0, a0, t0
    lw   t1, 0(t0)           # pivot
    addi t2, a1, -1          # i
    mv   t3, a1              # j
part_loop:
    bge  t3, a2, part_done
    slli t4, t3, 2
    add  t4, a0, t4
    lw   t5, 0(t4)
    bgt  t5, t1, part_next
    addi t2, t2, 1
    slli t6, t2, 2
    add  t6, a0, t6
    lw   s3, 0(t6)
    sw   t5, 0(t6)
    sw   s3, 0(t4)
part_next:
    addi t3, t3, 1
    j    part_loop
part_done:
    addi t2, t2, 1
    slli t4, t2, 2
    add  t4, a0, t4
    lw   t5, 0(t4)
    slli t6, a2, 2
    add  t6, a0, t6
    lw   s3, 0(t6)
    sw   t5, 0(t6)
    sw   s3, 0(t4)
    # recurse left: quicksort(base, lo, p-1)
    mv   s3, t2              # pivot index
    mv   a1, s1
    addi a2, s3, -1
    call quicksort
    # recurse right: quicksort(base, p+1, hi)
    addi a1, s3, 1
    mv   a2, s2
    call quicksort
    lw   s3, 16(sp)
    lw   s2, 20(sp)
    lw   s1, 24(sp)
    lw   ra, 28(sp)
    addi sp, sp, 32
qs_done:
    ret

main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    la   a0, data
    li   a1, 0
    li   a2, 15
    call quicksort
    # checksum = sum(a[i] * (i+1))
    la   t0, data
    li   t1, 0
    li   t2, 1
    li   a0, 0
sum_loop:
    lw   t3, 0(t0)
    mul  t3, t3, t2
    add  a0, a0, t3
    addi t0, t0, 4
    addi t2, t2, 1
    addi t1, t1, 1
    li   t4, 16
    blt  t1, t4, sum_loop
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
";
    // Host-side expectation: sorted 0..=15, checksum = sum(v * (i+1)).
    let expected: i64 = (0..16i64).map(|v| v * (v + 1)).sum();
    for (name, sim) in run_everywhere(asm) {
        assert_eq!(sim.int_register(10), expected, "wrong checksum on {name}");
        // The array in memory must actually be sorted.
        let base = sim.program().symbol("data").unwrap() as u64;
        let values: Vec<u32> =
            (0..16).map(|i| sim.memory().memory().read_u32(base + i * 4).unwrap()).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(values, sorted, "array not sorted on {name}");
    }
}

#[test]
fn linked_list_walk_accumulates_payloads() {
    // A singly linked list laid out in the data segment: each node is
    // (value, next-pointer); the list is deliberately out of order in memory.
    let asm = "
node3:
    .word 30
    .word node4
node1:
    .word 10
    .word node2
node4:
    .word 40
    .word 0
node2:
    .word 20
    .word node3

main:
    la   t0, node1          # head
    li   a0, 0
walk:
    beqz t0, done
    lw   t1, 0(t0)          # value
    add  a0, a0, t1
    lw   t0, 4(t0)          # next
    j    walk
done:
    ret
";
    for (name, sim) in run_everywhere(asm) {
        assert_eq!(sim.int_register(10), 100, "list sum wrong on {name}");
    }
}

#[test]
fn dynamic_dispatch_through_vtables() {
    // Polymorphism the way a compiler lowers it: objects carry a pointer to a
    // vtable, the virtual call loads the function pointer and jumps through
    // jalr.  Two "classes" implement area() differently.
    let asm = "
# object A: vtable pointer + one field (side = 5)   -> area = side * side
obj_a:
    .word vtable_a
    .word 5
# object B: vtable pointer + two fields (w=3, h=7)  -> area = w * h
obj_b:
    .word vtable_b
    .word 3
    .word 7

vtable_a:
    .word area_square
vtable_b:
    .word area_rect

# int area_square(obj*)  a0 = object pointer
area_square:
    lw   t0, 4(a0)
    mul  a0, t0, t0
    ret
# int area_rect(obj*)
area_rect:
    lw   t0, 4(a0)
    lw   t1, 8(a0)
    mul  a0, t0, t1
    ret

# int call_area(obj*) — the virtual dispatch helper
call_area:
    addi sp, sp, -16
    sw   ra, 12(sp)
    lw   t0, 0(a0)          # vtable pointer
    lw   t0, 0(t0)          # area() slot
    jalr ra, t0, 0
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret

main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    la   a0, obj_a
    call call_area
    mv   s1, a0             # 25
    la   a0, obj_b
    call call_area
    add  a0, a0, s1         # 25 + 21 = 46
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
";
    for (name, sim) in run_everywhere(asm) {
        assert_eq!(sim.int_register(10), 46, "dynamic dispatch wrong on {name}");
        // Indirect jumps must be visible in the statistics.
        assert!(sim.statistics().jumps >= 4, "expected jalr-based calls on {name}");
    }
}

#[test]
fn quicksort_from_c_matches_assembly_results() {
    let c = r#"
extern int data[];
void swap(int a[], int i, int j) { int t = a[i]; a[i] = a[j]; a[j] = t; }
int partition(int a[], int lo, int hi) {
    int pivot = a[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {
        if (a[j] <= pivot) { i++; swap(a, i, j); }
    }
    swap(a, i + 1, hi);
    return i + 1;
}
void quicksort(int a[], int lo, int hi) {
    if (lo < hi) {
        int p = partition(a, lo, hi);
        quicksort(a, lo, p - 1);
        quicksort(a, p + 1, hi);
    }
}
int main(void) {
    quicksort(data, 0, 15);
    int ok = 1;
    for (int i = 1; i < 16; i++) {
        if (data[i-1] > data[i]) { ok = 0; }
    }
    return ok;
}
"#;
    let values =
        vec![9.0, 3.0, 7.0, 1.0, 8.0, 2.0, 6.0, 5.0, 4.0, 0.0, 15.0, 11.0, 13.0, 10.0, 14.0, 12.0];
    for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
        let output = compile(c, opt).expect("quicksort compiles");
        let mut memory = MemorySettings::new();
        memory.add(MemoryArray {
            name: "data".into(),
            element: ScalarType::Word,
            alignment: 16,
            fill: ArrayFill::Values(values.clone()),
        });
        let mut sim = Simulator::from_assembly_with_memory(
            &output.assembly,
            &ArchitectureConfig::default(),
            memory,
        )
        .expect("assembles");
        let result = sim.run(10_000_000).unwrap();
        assert!(!matches!(result.halt, HaltReason::MaxCyclesReached), "quicksort at {opt:?} hung");
        assert_eq!(sim.int_register(10), 1, "C quicksort at {opt:?} failed to sort");
    }
}
