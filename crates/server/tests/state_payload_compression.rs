//! Property tests of the serve-path compression on *real* snapshot payloads:
//! random programs, random step counts, reused per-session compressors —
//! every payload must round-trip bit-exactly and state payloads must shrink.

use proptest::prelude::*;
use rvsim_compress::{decompress, Compressor};
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator, SnapshotBuffer};

/// Build a small but state-rich program from a handful of random parameters.
fn program(loops: u8, stores: u8) -> String {
    let mut body = String::new();
    for i in 0..stores {
        body.push_str(&format!("    sw   t0, {}(t1)\n    lw   t2, {}(t1)\n", i as u32 * 4, 0));
    }
    format!(
        "buf:
    .zero 128
main:
    la   t1, buf
    li   t0, {loops}
loop:
{body}    addi t0, t0, -1
    bnez t0, loop
    ret
"
    )
}

fn preset(index: u8) -> ArchitectureConfig {
    match index % 3 {
        0 => ArchitectureConfig::scalar(),
        1 => ArchitectureConfig::default(),
        _ => ArchitectureConfig::wide(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_payloads_round_trip_through_a_reused_compressor(
        loops in 1u8..6,
        stores in 1u8..5,
        preset_index in 0u8..3,
        step_counts in proptest::collection::vec(1u64..12, 1..6),
    ) {
        let config = preset(preset_index);
        let mut sim = Simulator::from_assembly(&program(loops, stores), &config).unwrap();
        let mut buffer = SnapshotBuffer::new();
        let mut compressor = Compressor::new();
        let mut out = Vec::new();

        for steps in step_counts {
            for _ in 0..steps {
                sim.step();
            }
            let json = buffer.render(&sim);
            out.clear();
            compressor.compress_into(json, &mut out);
            let back = decompress(&out).expect("snapshot payload decompresses");
            prop_assert_eq!(back.as_slice(), json, "payload corrupted at cycle {}", sim.cycle());
            prop_assert!(
                out.len() < json.len() / 2,
                "state payload should compress below half: {} vs {}",
                out.len(),
                json.len()
            );
            // The rendered JSON is the serde snapshot, byte for byte.
            let expected = serde_json::to_vec(&ProcessorSnapshot::capture(&sim)).unwrap();
            prop_assert_eq!(json, expected.as_slice());
        }
    }
}
