//! Property tests for the session envelope: serialize → restore → serialize
//! must be byte-identical, and a restored simulator must retire exactly the
//! trace the original would have — across the scalar, default and wide
//! architecture presets, arbitrary capture points and generated programs.
//! This is the cosim-style equivalence gate that live migration rests on.

use proptest::prelude::*;
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator};
use rvsim_server::protocol::{Request, Response};
use rvsim_server::server::{DeploymentConfig, SimulationServer};
use rvsim_server::{CheckpointConfig, SessionEnvelope};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The preset matrix migration must hold on (the same machines the cosim
/// batch and the throughput bench cover).
fn preset(index: u8) -> ArchitectureConfig {
    match index % 3 {
        0 => ArchitectureConfig::scalar(),
        1 => ArchitectureConfig::default(),
        _ => ArchitectureConfig::wide(),
    }
}

/// A small parametric program family: an arithmetic reduction over a data
/// array, with generated constants so each case exercises different branch
/// and forwarding behaviour.  Always `ret`-terminated (the assembler has no
/// `ebreak`), long enough that mid-loop capture points exist.
fn generated_program(seed_a: i32, step: i32, iterations: u32, with_memory: bool) -> String {
    let memory_loop = if with_memory {
        "
    andi t4, t1, 7
    slli t4, t4, 2
    add  t4, t4, t3
    lw   t5, 0(t4)
    add  t2, t2, t5
"
    } else {
        ""
    };
    format!(
        "
data:
    .word 7, 3, 11, 5, 2, 13, 1, 9
main:
    li   t0, {seed_a}
    li   t1, {iterations}
    li   t2, 0
    la   t3, data
loop:
    add  t2, t2, t0
    addi t0, t0, {step}
    xor  t2, t2, t0{memory_loop}
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t2
    ret
"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
    ))]

    /// serialize → bytes → restore → serialize is byte-identical: the
    /// envelope loses nothing, whatever the machine or capture point.
    #[test]
    fn envelope_round_trip_is_byte_identical(
        preset_ix in 0u8..3,
        seed_a in -50i32..50,
        step in 1i32..9,
        iterations in 2u32..24,
        capture_steps in 0usize..48,
        with_memory in any::<bool>(),
        session in 1u64..1_000_000,
    ) {
        let config = preset(preset_ix);
        let program = generated_program(seed_a, step, iterations, with_memory);
        let mut sim = Simulator::from_assembly(&program, &config).expect("program assembles");
        for _ in 0..capture_steps {
            sim.step();
        }

        let envelope = SessionEnvelope::capture(session, &sim, &program);
        let bytes = envelope.to_bytes();
        let back = SessionEnvelope::from_bytes(&bytes).expect("framing round-trips");
        prop_assert_eq!(&back, &envelope);
        prop_assert_eq!(back.to_bytes(), bytes.clone());

        // The restored simulator re-serializes to the exact same envelope —
        // the property a second migration hop depends on.
        let restored = back.replay().expect("replay succeeds");
        let again = SessionEnvelope::capture(session, &restored, &program);
        prop_assert_eq!(again.to_bytes(), bytes);
    }

    /// Cosim gate: after restore, the rebuilt simulator and the original
    /// stay in lockstep — identical architectural snapshots at every
    /// compared cycle, identical retirement statistics.  A session migrated
    /// mid-run is indistinguishable from one that never moved.
    #[test]
    fn restored_session_retires_identically_to_the_original(
        preset_ix in 0u8..3,
        seed_a in -50i32..50,
        step in 1i32..9,
        iterations in 4u32..24,
        capture_steps in 1usize..32,
        run_on in 1usize..48,
    ) {
        let config = preset(preset_ix);
        let program = generated_program(seed_a, step, iterations, false);
        let mut original = Simulator::from_assembly(&program, &config).expect("program assembles");
        for _ in 0..capture_steps {
            original.step();
        }

        let envelope = SessionEnvelope::capture(7, &original, &program);
        let mut restored =
            SessionEnvelope::from_bytes(&envelope.to_bytes()).unwrap().replay().unwrap();
        prop_assert_eq!(restored.cycle(), original.cycle());

        for stepped in 1..=run_on {
            original.step();
            restored.step();
            prop_assert_eq!(restored.cycle(), original.cycle(), "cycle diverged");
            prop_assert_eq!(
                ProcessorSnapshot::capture(&restored),
                ProcessorSnapshot::capture(&original),
                "state diverged {} steps after restore",
                stepped
            );
        }
        let (a, b) = (original.statistics(), restored.statistics());
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "retirement statistics diverged"
        );
    }

    /// Durability gate: spill → evict → restore-on-demand through the
    /// server's checkpoint path serves byte-identical state, and the
    /// on-disk checkpoint file is itself a byte-stable envelope.  This is
    /// the same equivalence the migration properties prove, but through the
    /// crash-recovery machinery (atomic file write, directory scan, replay
    /// on next touch) instead of the wire.
    #[test]
    fn spilled_session_recovers_byte_identically(
        preset_ix in 0u8..3,
        seed_a in -50i32..50,
        step in 1i32..9,
        iterations in 2u32..24,
        capture_steps in 0u64..48,
        with_memory in any::<bool>(),
        session in 1u64..1_000_000,
    ) {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rvsim-envelope-spill-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let server = SimulationServer::with_checkpoints(
            DeploymentConfig::default(),
            CheckpointConfig {
                state_dir: dir.clone(),
                interval: Duration::from_secs(3600),
                dirty_cycles: 0,
            },
        )
        .expect("state dir opens");

        let program = generated_program(seed_a, step, iterations, with_memory);
        let created = server.handle(Request::CreateSession {
            program: program.clone(),
            architecture: Some(preset(preset_ix)),
            entry: None,
            session: Some(session),
        });
        prop_assert_eq!(created, Response::SessionCreated { session });
        server.handle(Request::Step { session, cycles: capture_steps });
        let raw_request = serde_json::to_vec(&Request::GetState { session }).unwrap();
        let before = server.handle_raw(&raw_request).to_vec();

        // Spill: the zero-TTL sweep pushes the session to disk.
        prop_assert_eq!(server.evict_idle_older_than(Duration::ZERO), 1);
        prop_assert_eq!(server.session_count(), 0);

        // The checkpoint file is a byte-stable envelope at the spill cycle.
        let (on_disk, _) = server.checkpoint_store().unwrap().load(session).unwrap();
        prop_assert_eq!(
            SessionEnvelope::from_bytes(&on_disk.to_bytes()).unwrap(),
            on_disk.clone()
        );

        // Restore-on-demand: the next touch serves identical state bytes.
        let after = server.handle_raw(&raw_request).to_vec();
        prop_assert_eq!(&before, &after, "restored session must serve identical bytes");
        prop_assert_eq!(server.restored_session_count(), 1);

        // And the restored session retires in lockstep with a never-spilled
        // replay of the same envelope.
        let mut reference = on_disk.replay().unwrap();
        for _ in 0..4 {
            reference.step();
        }
        let stepped = server.handle(Request::Step { session, cycles: 4 });
        prop_assert_eq!(
            stepped,
            Response::Stepped { cycle: reference.cycle(), halted: reference.is_halted() }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
