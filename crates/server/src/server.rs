//! Session management and request dispatch.

use crate::protocol::{Request, Response};
use parking_lot::Mutex;
use rvsim_asm::filter_assembly;
use rvsim_cc::OptLevel;
use rvsim_compress::Compressor;
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator, SnapshotBuffer, SnapshotDelta};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the server emulates its deployment (§IV-A, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentMode {
    /// Direct execution (the paper's "Direct" rows).
    Direct,
    /// Containerized execution: every request pays an extra fixed CPU cost
    /// that stands in for the container's network/namespace overhead
    /// (the paper's "Docker" rows).
    Containerized {
        /// Extra per-request overhead in microseconds of busy work.
        request_overhead_us: u64,
    },
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentConfig {
    /// Deployment mode.
    pub mode: DeploymentMode,
    /// Compress response payloads (the gzip substitute).
    pub compress_responses: bool,
    /// Number of worker threads in the threaded front end.
    pub worker_threads: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 4,
        }
    }
}

/// Per-session serving state: reusable render/compress buffers, the encoded
/// payload of the last `GetState` answer, and the delta-protocol base.
/// Everything here reaches allocation steady state after the first request.
#[derive(Default)]
struct ServeCache {
    /// Reusable direct-JSON render buffer.
    buffer: SnapshotBuffer,
    /// Reusable LZSS compressor (hash chains persist across requests).
    compressor: Compressor,
    /// Encoded payload (flag byte + bytes) of the last `GetState` answer.
    encoded: Vec<u8>,
    /// Cycle `encoded` was rendered at.  Simulation is deterministic, so an
    /// unchanged cycle implies unchanged state and the cached bytes are
    /// returned without re-capturing anything.
    encoded_cycle: Option<u64>,
    /// The snapshot this session's client last received (delta base).
    delta_base: Option<ProcessorSnapshot>,
}

struct Session {
    simulator: Simulator,
    serve: ServeCache,
}

/// Answer a `GetStateDelta` request against `session`'s stored base: a real
/// delta when the base matches `since_cycle`, a full snapshot otherwise.
/// Either way the served state becomes the next delta base.
fn state_delta_response(session: &mut Session, since_cycle: u64) -> Response {
    let current = ProcessorSnapshot::capture(&session.simulator);
    match session.serve.delta_base.take() {
        Some(base) if base.cycle == since_cycle => {
            let delta = SnapshotDelta::between(&base, &current);
            session.serve.delta_base = Some(current);
            Response::StateDelta(Box::new(delta))
        }
        // No matching base (first request, or the client fell behind): fall
        // back to a full snapshot.
        _ => {
            session.serve.delta_base = Some(current.clone());
            Response::State(Box::new(current))
        }
    }
}

/// The simulation server: a set of sessions plus request dispatch.
///
/// The server is cheap to share (`Arc<SimulationServer>`); each session is
/// individually locked so concurrent users do not serialize on one another.
pub struct SimulationServer {
    config: DeploymentConfig,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
}

impl SimulationServer {
    /// Create a server.
    pub fn new(config: DeploymentConfig) -> Self {
        SimulationServer {
            config,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }

    /// Server with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(DeploymentConfig::default())
    }

    /// The deployment configuration.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    fn session(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions.lock().get(&id).cloned()
    }

    /// Handle one decoded request.
    pub fn handle(&self, request: Request) -> Response {
        self.apply_deployment_overhead();
        match request {
            Request::CreateSession { program, architecture, entry } => {
                let config = architecture.unwrap_or_default();
                self.create_session(&program, &config, entry.as_deref())
            }
            Request::Compile { source, optimization } => {
                let opt = match optimization {
                    0 => OptLevel::O0,
                    1 => OptLevel::O1,
                    2 => OptLevel::O2,
                    _ => OptLevel::O3,
                };
                match rvsim_cc::compile(&source, opt) {
                    Ok(output) => Response::Compiled {
                        assembly: filter_assembly(&output.assembly),
                        line_map: output.line_map,
                    },
                    Err(errors) => Response::error(
                        errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n"),
                    ),
                }
            }
            Request::Step { session, cycles } => self.with_session(session, |s| {
                let sim = &mut s.simulator;
                for _ in 0..cycles {
                    sim.step();
                }
                Response::Stepped { cycle: sim.cycle(), halted: sim.is_halted() }
            }),
            Request::StepBack { session, cycles } => self.with_session(session, |s| {
                let sim = &mut s.simulator;
                for _ in 0..cycles {
                    sim.step_back();
                }
                Response::Stepped { cycle: sim.cycle(), halted: sim.is_halted() }
            }),
            Request::Run { session, max_cycles } => {
                self.with_session(session, |s| match s.simulator.run(max_cycles) {
                    Ok(result) => {
                        Response::Stepped { cycle: result.cycles, halted: s.simulator.is_halted() }
                    }
                    Err(e) => Response::error(e),
                })
            }
            // Plain GetState does not seed the delta base (that would cost a
            // full snapshot clone per request, and the raw fast path cannot
            // afford a structured capture at all): the base is tracked by
            // delta requests only, whose first ask falls back to a full
            // snapshot.  Typed and raw paths behave identically.
            Request::GetState { session } => self.with_session(session, |s| {
                Response::State(Box::new(ProcessorSnapshot::capture(&s.simulator)))
            }),
            Request::GetStateDelta { session, since_cycle } => {
                self.with_session(session, |s| state_delta_response(s, since_cycle))
            }
            Request::GetStats { session } => {
                self.with_session(session, |s| Response::Stats(Box::new(s.simulator.statistics())))
            }
            Request::DestroySession { session } => {
                if self.sessions.lock().remove(&session).is_some() {
                    Response::Destroyed
                } else {
                    Response::error(format!("unknown session {session}"))
                }
            }
        }
    }

    /// The `GetStateDelta` raw path: the same response the typed handler
    /// produces, but compressed through the session's reusable
    /// [`Compressor`] instead of a one-shot hash-table allocation per
    /// response.
    fn serve_delta_raw(&self, id: u64, since_cycle: u64) -> Vec<u8> {
        self.apply_deployment_overhead();
        let Some(session) = self.session(id) else {
            return self.encode_response(&Response::error(format!("unknown session {id}")));
        };
        let mut guard = session.lock();
        let response = state_delta_response(&mut guard, since_cycle);
        let json = serde_json::to_vec(&response).expect("responses serialize");
        let mut out = Vec::with_capacity(json.len() / 2 + 8);
        if self.config.compress_responses {
            out.push(1u8);
            guard.serve.compressor.compress_into(&json, &mut out);
        } else {
            out.push(0u8);
            out.extend_from_slice(&json);
        }
        out
    }

    fn create_session(
        &self,
        program: &str,
        config: &ArchitectureConfig,
        _entry: Option<&str>,
    ) -> Response {
        match Simulator::from_assembly(program, config) {
            Ok(simulator) => {
                let id = self.next_session.fetch_add(1, Ordering::Relaxed);
                let session = Session { simulator, serve: ServeCache::default() };
                self.sessions.lock().insert(id, Arc::new(Mutex::new(session)));
                Response::SessionCreated { session: id }
            }
            Err(e) => Response::error(e),
        }
    }

    fn with_session(&self, id: u64, f: impl FnOnce(&mut Session) -> Response) -> Response {
        match self.session(id) {
            Some(session) => {
                let mut guard = session.lock();
                f(&mut guard)
            }
            None => Response::error(format!("unknown session {id}")),
        }
    }

    /// Encode a response: JSON, optionally compressed.  The first byte of the
    /// payload is a flag: 0 = plain JSON, 1 = LZSS-compressed JSON.
    pub fn encode_response(&self, response: &Response) -> Vec<u8> {
        let json = serde_json::to_vec(response).expect("responses serialize");
        if self.config.compress_responses {
            let compressed = rvsim_compress::compress(&json);
            let mut out = Vec::with_capacity(compressed.len() + 1);
            out.push(1u8);
            out.extend_from_slice(&compressed);
            out
        } else {
            let mut out = Vec::with_capacity(json.len() + 1);
            out.push(0u8);
            out.extend_from_slice(&json);
            out
        }
    }

    /// Decode a payload produced by [`SimulationServer::encode_response`].
    pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
        if payload.is_empty() {
            return Err("empty response payload".to_string());
        }
        match payload[0] {
            // Plain JSON deserializes straight from the borrowed slice.
            0 => serde_json::from_slice(&payload[1..]).map_err(|e| e.to_string()),
            1 => {
                let json = rvsim_compress::decompress(&payload[1..]).map_err(|e| e.to_string())?;
                serde_json::from_slice(&json).map_err(|e| e.to_string())
            }
            other => Err(format!("unknown payload flag {other}")),
        }
    }

    /// Handle a raw JSON request payload and produce an encoded response —
    /// the full per-request work the paper's performance evaluation measures
    /// (decode, simulate, encode, compress).  `GetState` takes the
    /// allocation-free serve path: the snapshot renders directly into the
    /// session's reusable buffers, and an unchanged cycle returns the cached
    /// encoded payload without re-capturing anything.
    pub fn handle_raw(&self, request_json: &[u8]) -> Vec<u8> {
        match serde_json::from_slice::<Request>(request_json) {
            Ok(Request::GetState { session }) => self.serve_state_raw(session),
            Ok(Request::GetStateDelta { session, since_cycle }) => {
                self.serve_delta_raw(session, since_cycle)
            }
            Ok(request) => self.encode_response(&self.handle(request)),
            Err(e) => self.encode_response(&Response::error(format!("malformed request: {e}"))),
        }
    }

    /// The `GetState` fast path: render the state-response JSON directly from
    /// the simulator into the session's reusable [`SnapshotBuffer`], compress
    /// it with the session's reusable [`Compressor`], and cache the encoded
    /// bytes keyed by cycle.  Byte-identical to the generic
    /// `encode_response(&handle(GetState))` path (golden-tested).
    fn serve_state_raw(&self, id: u64) -> Vec<u8> {
        self.apply_deployment_overhead();
        let Some(session) = self.session(id) else {
            return self.encode_response(&Response::error(format!("unknown session {id}")));
        };
        let mut guard = session.lock();
        let Session { simulator, serve } = &mut *guard;
        let cycle = simulator.cycle();
        if serve.encoded_cycle != Some(cycle) {
            serve.buffer.render_state_response(simulator);
            serve.encoded.clear();
            if self.config.compress_responses {
                serve.encoded.push(1u8);
                serve.compressor.compress_into(serve.buffer.bytes(), &mut serve.encoded);
            } else {
                serve.encoded.push(0u8);
                serve.encoded.extend_from_slice(serve.buffer.bytes());
            }
            serve.encoded_cycle = Some(cycle);
        }
        // The raw path serves full snapshots; a client that later asks for a
        // delta against this cycle must get one, so the base must exist.
        // Capturing it structurally would defeat the fast path: instead the
        // delta handler falls back to a full snapshot when no base matches.
        serve.encoded.clone()
    }

    fn apply_deployment_overhead(&self) {
        if let DeploymentMode::Containerized { request_overhead_us } = self.config.mode {
            // Busy-wait so the overhead consumes CPU like the real proxying /
            // namespace translation does, rather than merely sleeping.
            let start = std::time::Instant::now();
            while start.elapsed().as_micros() < request_overhead_us as u128 {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 20
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

    fn server() -> SimulationServer {
        SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: false,
            worker_threads: 1,
        })
    }

    fn create(server: &SimulationServer) -> u64 {
        match server.handle(Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
        }) {
            Response::SessionCreated { session } => session,
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn session_lifecycle() {
        let server = server();
        let id = create(&server);
        assert_eq!(server.session_count(), 1);
        let r = server.handle(Request::Step { session: id, cycles: 5 });
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
        let r = server.handle(Request::Run { session: id, max_cycles: 100_000 });
        match r {
            Response::Stepped { halted, .. } => assert!(halted),
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::GetStats { session: id }) {
            Response::Stats(stats) => {
                assert!(stats.committed > 20);
                assert!(stats.ipc() > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.handle(Request::DestroySession { session: id }), Response::Destroyed);
        assert_eq!(server.session_count(), 0);
        assert!(server.handle(Request::Step { session: id, cycles: 1 }).is_error());
    }

    #[test]
    fn state_snapshot_and_step_back() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 10 });
        let r = server.handle(Request::GetState { session: id });
        match r {
            Response::State(snapshot) => {
                assert_eq!(snapshot.cycle, 10);
                assert_eq!(snapshot.int_registers.len(), 32);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = server.handle(Request::StepBack { session: id, cycles: 3 });
        assert_eq!(r, Response::Stepped { cycle: 7, halted: false });
    }

    #[test]
    fn create_session_with_bad_program_reports_error() {
        let server = server();
        let r = server.handle(Request::CreateSession {
            program: "main:\n  bogus a0, a1\n".into(),
            architecture: None,
            entry: None,
        });
        assert!(r.is_error());
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn compile_request_round_trips_through_assembler() {
        let server = server();
        let r = server.handle(Request::Compile {
            source: "int main(void) { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }"
                .into(),
            optimization: 2,
        });
        match r {
            Response::Compiled { assembly, line_map } => {
                assert!(assembly.contains("main:"));
                assert!(!line_map.is_empty());
                // The compiled assembly must itself create a valid session.
                let r2 = server.handle(Request::CreateSession {
                    program: assembly,
                    architecture: None,
                    entry: None,
                });
                assert!(matches!(r2, Response::SessionCreated { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = server.handle(Request::Compile {
            source: "int main(void) { return 1 + ; }".into(),
            optimization: 0,
        });
        assert!(r.is_error());
    }

    #[test]
    fn raw_payload_round_trip_with_and_without_compression() {
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
            });
            let id = create(&server);
            let request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            let payload = server.handle_raw(&request);
            assert_eq!(payload[0], compress as u8);
            let response = SimulationServer::decode_response(&payload).unwrap();
            assert!(matches!(response, Response::State(_)));
        }
    }

    #[test]
    fn malformed_raw_request_is_an_error_response() {
        let server = server();
        let payload = server.handle_raw(b"{not json");
        let response = SimulationServer::decode_response(&payload).unwrap();
        assert!(response.is_error());
        assert!(SimulationServer::decode_response(&[]).is_err());
        assert!(SimulationServer::decode_response(&[9, 1, 2]).is_err());
    }

    #[test]
    fn containerized_mode_is_slower_per_request() {
        let direct = server();
        let container = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Containerized { request_overhead_us: 200 },
            compress_responses: false,
            worker_threads: 1,
        });
        let id_d = create(&direct);
        let id_c = create(&container);
        let time = |s: &SimulationServer, id: u64| {
            let start = std::time::Instant::now();
            for _ in 0..20 {
                s.handle(Request::Step { session: id, cycles: 1 });
            }
            start.elapsed()
        };
        let t_direct = time(&direct, id_d);
        let t_container = time(&container, id_c);
        assert!(
            t_container > t_direct,
            "containerized ({t_container:?}) must be slower than direct ({t_direct:?})"
        );
    }

    #[test]
    fn raw_get_state_is_byte_identical_to_generic_encode_across_run() {
        // The fast path (direct render + cached payload) must be
        // indistinguishable on the wire from the generic capture+serde path,
        // from the fresh session through mid-run to the halted state, both
        // with and without compression.
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
            });
            let id = create(&server);
            let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            loop {
                let fast = server.handle_raw(&raw_request);
                let generic =
                    server.encode_response(&server.handle(Request::GetState { session: id }));
                assert_eq!(
                    fast, generic,
                    "fast path differs from generic path (compress={compress})"
                );
                let halted = match server.handle(Request::Step { session: id, cycles: 1 }) {
                    Response::Stepped { halted, .. } => halted,
                    other => panic!("unexpected {other:?}"),
                };
                if halted {
                    let fast = server.handle_raw(&raw_request);
                    let generic =
                        server.encode_response(&server.handle(Request::GetState { session: id }));
                    assert_eq!(fast, generic, "halted-state payload differs");
                    break;
                }
            }
        }
    }

    #[test]
    fn unchanged_cycle_returns_cached_payload() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 5 });
        let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let first = server.handle_raw(&raw_request);
        let second = server.handle_raw(&raw_request);
        assert_eq!(first, second, "same cycle must serve identical bytes");
        server.handle(Request::Step { session: id, cycles: 1 });
        let third = server.handle_raw(&raw_request);
        assert_ne!(first, third, "advancing the cycle must refresh the payload");
        // Stepping back to an earlier cycle re-renders deterministically.
        server.handle(Request::StepBack { session: id, cycles: 1 });
        let fourth = server.handle_raw(&raw_request);
        assert_eq!(first, fourth, "deterministic replay must reproduce the payload");
    }

    #[test]
    fn delta_protocol_reconstructs_full_snapshots() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 3 });

        // First delta request has no base: full snapshot fallback.
        let base =
            match server.handle(Request::GetStateDelta { session: id, since_cycle: u64::MAX }) {
                Response::State(snapshot) => *snapshot,
                other => panic!("expected full fallback, got {other:?}"),
            };

        // From here on, every step yields a real delta that reconstructs the
        // exact capture.
        let mut held = base;
        for _ in 0..10 {
            server.handle(Request::Step { session: id, cycles: 1 });
            let response =
                server.handle(Request::GetStateDelta { session: id, since_cycle: held.cycle });
            match response {
                Response::StateDelta(delta) => {
                    assert_eq!(delta.since_cycle, held.cycle);
                    held = delta.apply_to(&held).expect("delta applies");
                }
                other => panic!("expected a delta, got {other:?}"),
            }
            let full = match server.handle(Request::GetState { session: id }) {
                Response::State(snapshot) => *snapshot,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(held, full, "reconstructed snapshot must equal the full capture");
        }

        // A stale base (client fell behind) falls back to a full snapshot.
        server.handle(Request::Step { session: id, cycles: 2 });
        let response = server.handle(Request::GetStateDelta { session: id, since_cycle: 1 });
        assert!(matches!(response, Response::State(_)), "stale base must fall back");
    }

    #[test]
    fn delta_for_unknown_session_is_an_error() {
        let server = server();
        let r = server.handle(Request::GetStateDelta { session: 99, since_cycle: 0 });
        assert!(r.is_error());
    }

    #[test]
    fn compression_shrinks_state_payloads() {
        let compressed_server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 1,
        });
        let plain_server = server();
        let id_c = create(&compressed_server);
        let id_p = create(&plain_server);
        compressed_server.handle(Request::Step { session: id_c, cycles: 5 });
        plain_server.handle(Request::Step { session: id_p, cycles: 5 });
        let req_c = serde_json::to_vec(&Request::GetState { session: id_c }).unwrap();
        let req_p = serde_json::to_vec(&Request::GetState { session: id_p }).unwrap();
        let compressed = compressed_server.handle_raw(&req_c);
        let plain = plain_server.handle_raw(&req_p);
        assert!(
            compressed.len() < plain.len() / 2,
            "state snapshot should compress to less than half ({} vs {})",
            compressed.len(),
            plain.len()
        );
    }
}
