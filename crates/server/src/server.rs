//! Session management and request dispatch.

use crate::checkpoint::{CheckpointConfig, CheckpointEntry, CheckpointStore, RecoverOutcome};
use crate::envelope::SessionEnvelope;
use crate::protocol::{Request, Response};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rvsim_asm::filter_assembly;
use rvsim_cc::OptLevel;
use rvsim_compress::Compressor;
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator, SnapshotBuffer, SnapshotDelta};
use rvsim_obs::{Event, EventKind, Histogram, HistogramSnapshot, Observer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::time::{Duration, Instant};

/// How the server emulates its deployment (§IV-A, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentMode {
    /// Direct execution (the paper's "Direct" rows).
    Direct,
    /// Containerized execution: every request pays an extra fixed CPU cost
    /// that stands in for the container's network/namespace overhead
    /// (the paper's "Docker" rows).
    Containerized {
        /// Extra per-request overhead in microseconds of busy work.
        request_overhead_us: u64,
    },
    /// Emulate a backend whose per-request service time is dominated by
    /// waiting (I/O, a modeled per-node capacity) rather than CPU: each
    /// request *sleeps* for the service time instead of spinning.  Sleeping
    /// requests from N emulated nodes overlap on one machine, so a
    /// multi-process scaling measurement exercises the routing/placement
    /// tier honestly even when the host has fewer cores than nodes.
    RemoteEmulated {
        /// Emulated per-request service time in microseconds.
        service_time_us: u64,
    },
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentConfig {
    /// Deployment mode.
    pub mode: DeploymentMode,
    /// Compress response payloads (the gzip substitute).
    pub compress_responses: bool,
    /// Number of worker threads in the threaded front end.
    pub worker_threads: usize,
    /// Sessions untouched for this many seconds become eligible for the
    /// idle sweep ([`SimulationServer::evict_idle`], invoked from the
    /// network front end's housekeeping tick).  `None` disables eviction —
    /// sessions then live until their client destroys them.
    pub idle_session_ttl_seconds: Option<u64>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 4,
            idle_session_ttl_seconds: None,
        }
    }
}

/// Per-session serving state: reusable render/compress buffers, the encoded
/// payload of the last `GetState` answer, and the delta-protocol base.
/// Everything here reaches allocation steady state after the first request.
#[derive(Default)]
struct ServeCache {
    /// Reusable direct-JSON render buffer.
    buffer: SnapshotBuffer,
    /// Reusable LZSS compressor (hash chains persist across requests).
    compressor: Compressor,
    /// Encoded payload (flag byte + bytes) of the last `GetState` answer,
    /// held as a shared [`Bytes`] handle: serving the cache is an atomic
    /// reference bump, not a buffer copy.  When every consumer has dropped
    /// its handle the allocation is reclaimed for the next refresh.
    encoded: Bytes,
    /// `(epoch, cycle)` the payload in `encoded` was rendered at.  Within
    /// one state generation the simulation is deterministic, so an
    /// unchanged cycle implies unchanged state and the cached bytes are
    /// returned without re-capturing anything — but a restore can install
    /// *different* state behind the same id at the same cycle, which bumps
    /// the session epoch and makes every cached payload unreachable.
    encoded_key: Option<(u64, u64)>,
    /// The snapshot this session's client last received (delta base).
    delta_base: Option<ProcessorSnapshot>,
}

struct Session {
    simulator: Simulator,
    serve: ServeCache,
    /// Assembly source the simulator was built from (serialize/restore).
    program: String,
    /// Architecture the simulator runs (serialize/restore).
    config: ArchitectureConfig,
    /// State-generation counter: bumped whenever the simulator behind this
    /// id is replaced (in-place restore).  Part of the serve-cache key, so
    /// a replaced session can never serve a stale cached payload captured
    /// from the previous state generation at the same cycle.
    epoch: u64,
    /// Cycle of this session's last successful on-disk checkpoint (`None`
    /// before the first one).  `Some(current cycle)` means the checkpoint is
    /// current and the periodic tick / eviction spill can skip the write.
    checkpointed_cycle: Option<u64>,
}

/// A stored session: the individually-locked simulator state plus an
/// idle-tracking timestamp that is updated *outside* the session lock, so
/// the eviction sweep can age sessions without contending with requests.
struct SessionSlot {
    /// Milliseconds (since server start) of the last request that looked
    /// this session up.
    last_touched_ms: AtomicU64,
    session: Mutex<Session>,
    /// Waiting room for the per-session `Step` combiner (request
    /// coalescing): see [`SimulationServer::coalesced_step`].
    steps: StepQueue,
}

/// One queued `Step` request awaiting the session's combiner.
struct StepTicket {
    id: u64,
    cycles: u64,
}

/// Flat-combining queue for a session's `Step` requests.
///
/// When `Step`s for one session arrive faster than the simulator executes
/// them, the threads carrying them do not line up on the session mutex.
/// The first arrival becomes the *combiner*: it takes the session lock once
/// and executes every queued ticket **in arrival order**, publishing each
/// ticket's cumulative result; the other threads block on the condvar and
/// wake with their response already computed.  The observable behaviour —
/// every response and the final simulator state — is byte-identical to the
/// same requests executing sequentially in arrival order; what is saved is
/// N-1 lock handoffs and their cache-line migrations per batch.
#[derive(Default)]
struct StepQueue {
    inner: Mutex<StepQueueInner>,
    ready: Condvar,
}

#[derive(Default)]
struct StepQueueInner {
    next_ticket: u64,
    pending: VecDeque<StepTicket>,
    finished: HashMap<u64, Response>,
    /// A combiner currently owns the session and will drain `pending`.
    combining: bool,
    /// The session was destroyed, evicted or migrated away.  New arrivals
    /// answer `unknown session` immediately, and [`close_step_queue`]
    /// already failed every queued ticket — nobody sleeps on the condvar
    /// waiting for a combiner that will never come.
    closed: bool,
}

/// Close a removed session's step queue: fail every queued ticket with an
/// `unknown session` error and wake the waiters.  Without this, a `Step`
/// enqueued between lookup and removal (destroy or idle eviction) would
/// either hang on the condvar or silently execute against the removed
/// simulator.
fn close_step_queue(id: u64, slot: &SessionSlot) {
    let queue = &slot.steps;
    let mut inner = queue.inner.lock();
    inner.closed = true;
    let drained: Vec<u64> = inner.pending.drain(..).map(|t| t.id).collect();
    if drained.is_empty() {
        return;
    }
    for ticket in drained {
        inner.finished.insert(ticket, Response::error(format!("unknown session {id}")));
    }
    queue.ready.notify_all();
}

/// Number of shards in the session store.  Power of two; sixteen shards keep
/// the per-shard lock essentially uncontended at the worker-pool sizes the
/// paper's deployment uses while costing a few hundred bytes of memory.
const SESSION_SHARDS: usize = 16;

/// One shard of the session store.
type SessionShard = RwLock<HashMap<u64, Arc<SessionSlot>>>;

/// Spread sequential session ids across shards (splitmix-style multiply,
/// taking exactly the top `log2(SESSION_SHARDS)` bits so the constant stays
/// genuinely tunable), so a burst of freshly created sessions does not
/// serialize on one shard.
fn shard_index(id: u64) -> usize {
    (id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - SESSION_SHARDS.trailing_zeros())) as usize
        & (SESSION_SHARDS - 1)
}

/// Answer a `GetStateDelta` request against `session`'s stored base: a real
/// delta when the base matches `since_cycle`, a full snapshot otherwise.
/// Either way the served state becomes the next delta base.
fn state_delta_response(session: &mut Session, since_cycle: u64) -> Response {
    let current = ProcessorSnapshot::capture(&session.simulator);
    match session.serve.delta_base.take() {
        Some(base) if base.cycle == since_cycle => {
            let delta = SnapshotDelta::between(&base, &current);
            session.serve.delta_base = Some(current);
            Response::StateDelta(Box::new(delta))
        }
        // No matching base (first request, or the client fell behind): fall
        // back to a full snapshot.
        _ => {
            session.serve.delta_base = Some(current.clone());
            Response::State(Box::new(current))
        }
    }
}

/// Durability state: the checkpoint store plus the cadence bookkeeping and
/// counters of the spill/restore paths.
struct CheckpointState {
    store: CheckpointStore,
    /// Periodic checkpoint cadence in milliseconds.
    interval_ms: u64,
    /// Dirty-cycle threshold for mid-interval checkpoints (0 = disabled).
    dirty_cycles: u64,
    /// `now_ms` of the last periodic sweep (CAS-claimed, so concurrent
    /// housekeeping ticks never run the sweep twice).
    last_tick_ms: AtomicU64,
    /// Sessions spilled to disk by the idle sweep instead of destroyed.
    spilled: AtomicU64,
    /// Sessions restored from their checkpoint (on demand or recovery).
    restored: AtomicU64,
    /// Largest checkpoint age a restore has inherited, in milliseconds —
    /// the observed staleness bound.
    restore_staleness_max_ms: AtomicU64,
}

/// Endpoint labels for the per-endpoint latency histograms, in
/// [`endpoint_index`] order (the `Request` variants plus a slot for
/// payloads that fail to parse).
const ENDPOINTS: [&str; 13] = [
    "create_session",
    "compile",
    "step",
    "step_back",
    "run",
    "get_state",
    "get_state_delta",
    "get_stats",
    "destroy_session",
    "serialize_session",
    "restore_session",
    "list_sessions",
    "malformed",
];

/// Histogram slots the raw fast paths record into directly.
const EP_GET_STATE: usize = 5;
const EP_GET_STATE_DELTA: usize = 6;
/// Histogram slot for payloads that do not parse as a [`Request`].
const EP_MALFORMED: usize = ENDPOINTS.len() - 1;

/// Sampling factor for timing the cached-serve fast paths
/// (`GetState`/`GetStateDelta`): one request in `RAW_SAMPLE` is timed and
/// recorded with this weight (power of two, so the sampling test is a
/// mask).  Measured on the ~0.5 µs cached-GetState path, always-on timing
/// costs ~50 ns (~9%) — nearly all of it the two `Instant` reads — while
/// 1-in-16 sampling cuts that to a relaxed counter bump (<2%) and leaves
/// the latency distribution unbiased.
const RAW_SAMPLE: u64 = 16;

/// Index into [`ENDPOINTS`] for a parsed request.
fn endpoint_index(request: &Request) -> usize {
    match request {
        Request::CreateSession { .. } => 0,
        Request::Compile { .. } => 1,
        Request::Step { .. } => 2,
        Request::StepBack { .. } => 3,
        Request::Run { .. } => 4,
        Request::GetState { .. } => 5,
        Request::GetStateDelta { .. } => 6,
        Request::GetStats { .. } => 7,
        Request::DestroySession { .. } => 8,
        Request::SerializeSession { .. } => 9,
        Request::RestoreSession { .. } => 10,
        Request::ListSessions => 11,
    }
}

/// The simulation server: a sharded set of sessions plus request dispatch.
///
/// The server is cheap to share (`Arc<SimulationServer>`).  The session map
/// is split across [`SESSION_SHARDS`] reader-writer locks keyed by a hash of
/// the session id: lookups (the per-request path) take one shard's read
/// lock, creation/deletion take one shard's write lock, and no operation —
/// including [`session_count`](Self::session_count) — ever locks the whole
/// store.  Each session is additionally individually locked so concurrent
/// users do not serialize on one another.
pub struct SimulationServer {
    config: DeploymentConfig,
    shards: Box<[SessionShard]>,
    /// Live-session count, maintained on insert/remove: reading it is a
    /// single atomic load that cannot stall (or be stalled by) requests
    /// in flight on any shard.
    session_count: AtomicUsize,
    /// Sessions dropped by the idle sweep over the server's lifetime.
    evicted_sessions: AtomicU64,
    /// `Step` requests executed by another request's combiner pass (i.e.
    /// requests that were coalesced instead of taking the session lock).
    coalesced_steps: AtomicU64,
    /// `GetState` answers served from the cached encoded payload as a
    /// shared handle (no render, no copy).
    shared_state_serves: AtomicU64,
    next_session: AtomicU64,
    /// Durable checkpointing (`--state-dir`): `None` keeps the pre-existing
    /// in-memory-only behaviour, including destroy-on-evict.
    checkpoints: Option<CheckpointState>,
    /// Observability handle (event journal, phase histograms, request-id
    /// mint) shared with the network front end serving this instance, so
    /// handler-side events land in the same ring as connection events.
    obs: Arc<Observer>,
    /// Per-endpoint dispatch latency, indexed like [`ENDPOINTS`].
    endpoints: [Histogram; ENDPOINTS.len()],
    /// Cached-serve fast-path dispatch counter driving the 1-in-
    /// [`RAW_SAMPLE`] timing decision.
    raw_ticks: AtomicU64,
    /// Epoch for the per-session idle timestamps.
    started: Instant,
    /// Test-only virtual clock advance, added to the wall clock so eviction
    /// tests age sessions deterministically instead of sleeping.
    #[cfg(test)]
    clock_skew_ms: AtomicU64,
}

impl SimulationServer {
    /// Create a server.
    pub fn new(config: DeploymentConfig) -> Self {
        SimulationServer {
            config,
            shards: (0..SESSION_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            session_count: AtomicUsize::new(0),
            evicted_sessions: AtomicU64::new(0),
            coalesced_steps: AtomicU64::new(0),
            shared_state_serves: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
            checkpoints: None,
            obs: Arc::new(Observer::default()),
            endpoints: std::array::from_fn(|_| Histogram::default()),
            raw_ticks: AtomicU64::new(0),
            started: Instant::now(),
            #[cfg(test)]
            clock_skew_ms: AtomicU64::new(0),
        }
    }

    /// Server with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(DeploymentConfig::default())
    }

    /// Create a server with durable checkpointing: sessions are periodically
    /// serialized to `RVSE` envelope files in the checkpoint directory, idle
    /// eviction spills to disk instead of destroying (the session restores
    /// on its next touch), and [`recover_checkpoints`](Self::recover_checkpoints)
    /// can re-own everything in the directory after a crash.
    pub fn with_checkpoints(
        config: DeploymentConfig,
        checkpoints: CheckpointConfig,
    ) -> std::io::Result<Self> {
        let store = CheckpointStore::open(&checkpoints.state_dir)?;
        let mut server = Self::new(config);
        server.checkpoints = Some(CheckpointState {
            store,
            interval_ms: checkpoints.interval.as_millis() as u64,
            dirty_cycles: checkpoints.dirty_cycles,
            last_tick_ms: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            restore_staleness_max_ms: AtomicU64::new(0),
        });
        Ok(server)
    }

    /// The checkpoint store, when checkpointing is enabled.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.checkpoints.as_ref().map(|c| &c.store)
    }

    /// Sessions the idle sweep spilled to disk instead of destroying.
    pub fn spilled_session_count(&self) -> u64 {
        self.checkpoints.as_ref().map_or(0, |c| c.spilled.load(Ordering::Relaxed))
    }

    /// Sessions restored from their on-disk checkpoint (on-demand or via
    /// explicit recovery) over the server's lifetime.
    pub fn restored_session_count(&self) -> u64 {
        self.checkpoints.as_ref().map_or(0, |c| c.restored.load(Ordering::Relaxed))
    }

    /// Largest checkpoint age any restore has inherited, in milliseconds:
    /// the observed worst-case staleness, bounded by the checkpoint
    /// interval as long as the periodic tick keeps up.
    pub fn max_restore_staleness_ms(&self) -> u64 {
        self.checkpoints.as_ref().map_or(0, |c| c.restore_staleness_max_ms.load(Ordering::Relaxed))
    }

    /// The deployment configuration.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// Number of live sessions (a single atomic load — never blocks on, or
    /// is blocked by, requests in flight on any shard).
    pub fn session_count(&self) -> usize {
        self.session_count.load(Ordering::Acquire)
    }

    /// Sessions dropped by the idle sweep over the server's lifetime.
    pub fn evicted_session_count(&self) -> u64 {
        self.evicted_sessions.load(Ordering::Relaxed)
    }

    /// `Step` requests whose cycles were executed by another request's
    /// combiner pass (request coalescing) over the server's lifetime.
    pub fn coalesced_step_count(&self) -> u64 {
        self.coalesced_steps.load(Ordering::Relaxed)
    }

    /// `GetState` answers served as a shared handle to the cached encoded
    /// payload (unchanged cycle: no render, no compression, no copy).
    pub fn shared_state_serve_count(&self) -> u64 {
        self.shared_state_serves.load(Ordering::Relaxed)
    }

    /// This instance's observability handle.  The network front end shares
    /// it (via `ApiHandler::observer`), so request-phase histograms,
    /// connection events and handler-side events (coalescing joins,
    /// checkpoint sweeps, restores) all live in one journal.
    pub fn observability(&self) -> &Arc<Observer> {
        &self.obs
    }

    /// Per-endpoint dispatch latency snapshots, in a stable order:
    /// `(endpoint label, histogram)` for every protocol endpoint plus the
    /// `malformed` bucket.
    pub fn endpoint_latency(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        ENDPOINTS.iter().zip(self.endpoints.iter()).map(|(&ep, h)| (ep, h.snapshot())).collect()
    }

    fn now_ms(&self) -> u64 {
        let wall = self.started.elapsed().as_millis() as u64;
        #[cfg(test)]
        let wall = wall + self.clock_skew_ms.load(Ordering::Relaxed);
        wall
    }

    /// Advance the idle-tracking clock without sleeping (tests only).
    #[cfg(test)]
    fn advance_clock(&self, ms: u64) {
        self.clock_skew_ms.fetch_add(ms, Ordering::Relaxed);
    }

    fn session(&self, id: u64) -> Option<Arc<SessionSlot>> {
        if let Some(slot) = self.shards[shard_index(id)].read().get(&id).cloned() {
            slot.last_touched_ms.store(self.now_ms(), Ordering::Relaxed);
            return Some(slot);
        }
        // Restore-on-demand: a session the idle sweep spilled to disk (or a
        // dead peer checkpointed into a shared state directory) comes back
        // on its next touch instead of answering `unknown session`.
        self.restore_from_disk(id).ok()
    }

    /// Restore session `id` from its on-disk checkpoint and install it.
    /// The replay-verified envelope restore applies: state the checkpoint
    /// cannot reproduce byte-exactly is refused, never installed wrong.
    fn restore_from_disk(&self, id: u64) -> Result<Arc<SessionSlot>, String> {
        let ckpt =
            self.checkpoints.as_ref().ok_or_else(|| "checkpointing is disabled".to_string())?;
        let (envelope, age) = ckpt.store.load(id)?;
        let simulator = envelope.replay()?;
        let session = Session {
            simulator,
            serve: ServeCache::default(),
            program: envelope.program,
            config: envelope.architecture,
            epoch: 0,
            // The envelope just came *from* the store: the on-disk
            // checkpoint is current by construction, skip the re-write.
            checkpointed_cycle: Some(envelope.cycle),
        };
        self.next_session.fetch_max(id.saturating_add(1), Ordering::Relaxed);
        if self.install_session(id, session).is_ok() {
            ckpt.restored.fetch_add(1, Ordering::Relaxed);
            ckpt.restore_staleness_max_ms.fetch_max(age.as_millis() as u64, Ordering::Relaxed);
            self.obs.journal.record(
                Event::new(EventKind::SessionRestore, self.obs.journal.now_us())
                    .session(id)
                    .fields(0, age.as_millis() as u64),
            );
        }
        // A failed install means a concurrent restore won the race — the
        // slot is there either way.
        self.shards[shard_index(id)]
            .read()
            .get(&id)
            .cloned()
            .inspect(|slot| slot.last_touched_ms.store(self.now_ms(), Ordering::Relaxed))
            .ok_or_else(|| format!("session {id} vanished during restore"))
    }

    /// Remove session `id`, including its on-disk checkpoint.  Returns
    /// whether it existed (resident or spilled).
    fn remove_session(&self, id: u64) -> bool {
        let resident = match self.shards[shard_index(id)].write().remove(&id) {
            Some(slot) => {
                self.session_count.fetch_sub(1, Ordering::AcqRel);
                close_step_queue(id, &slot);
                true
            }
            None => false,
        };
        // Destroy means destroy: a spilled checkpoint must not resurrect
        // the session on its next touch.
        let spilled = self.checkpoints.as_ref().is_some_and(|c| c.store.remove(id));
        resident || spilled
    }

    /// Drop sessions whose last request is older than `ttl`.  Returns how
    /// many were evicted.  A session whose lock is currently held (a request
    /// is mid-flight on it) is never evicted, and the idle timestamp is
    /// re-checked under the shard's write lock so a lookup racing with the
    /// sweep keeps its session.  Lock scope stays per-shard: a sweep never
    /// stops the world.
    pub fn evict_idle_older_than(&self, ttl: Duration) -> usize {
        // Before `ttl` has elapsed since server start nothing can be older
        // than the cutoff (checked_sub, not saturating: a cutoff clamped to
        // zero would evict sessions created at millisecond zero).
        let Some(cutoff) = self.now_ms().checked_sub(ttl.as_millis() as u64) else {
            return 0;
        };
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let stale: Vec<u64> = shard
                .read()
                .iter()
                .filter(|(_, slot)| slot.last_touched_ms.load(Ordering::Relaxed) <= cutoff)
                .map(|(&id, _)| id)
                .collect();
            if stale.is_empty() {
                continue;
            }
            let mut guard = shard.write();
            for id in stale {
                let still_idle = guard.get(&id).is_some_and(|slot| {
                    if slot.last_touched_ms.load(Ordering::Relaxed) > cutoff {
                        return false;
                    }
                    // A session with queued or in-flight Step work is not
                    // idle, whatever its touch stamp says: removing it would
                    // strand the queued waiters behind a combiner that will
                    // never publish their results.
                    let queue = slot.steps.inner.lock();
                    let quiet = queue.pending.is_empty() && !queue.combining;
                    drop(queue);
                    if !quiet {
                        return false;
                    }
                    let Some(mut session) = slot.session.try_lock() else {
                        return false;
                    };
                    // With a checkpoint store, eviction *spills*: the
                    // session must be durably on disk before it leaves
                    // memory.  A failed spill (disk full, torn write) keeps
                    // the session resident — dropping state that is not on
                    // disk would turn memory pressure into data loss.
                    if let Some(ckpt) = &self.checkpoints {
                        if session.checkpointed_cycle != Some(session.simulator.cycle()) {
                            let envelope =
                                SessionEnvelope::capture(id, &session.simulator, &session.program);
                            match ckpt.store.save(&envelope) {
                                Ok(()) => session.checkpointed_cycle = Some(envelope.cycle),
                                Err(_) => return false,
                            }
                        }
                    }
                    true
                });
                if still_idle {
                    if let Some(slot) = guard.remove(&id) {
                        self.session_count.fetch_sub(1, Ordering::AcqRel);
                        // Close the queue anyway: a Step that raced past the
                        // quiet check errors out instead of stepping (or
                        // waiting on) the removed session.
                        close_step_queue(id, &slot);
                        if let Some(ckpt) = &self.checkpoints {
                            ckpt.spilled.fetch_add(1, Ordering::Relaxed);
                        }
                        evicted += 1;
                    }
                }
            }
        }
        self.evicted_sessions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Run the idle sweep with the TTL from the deployment configuration
    /// (no-op when eviction is disabled).  The network front end calls this
    /// from its housekeeping tick.
    pub fn evict_idle(&self) -> usize {
        match self.config.idle_session_ttl_seconds {
            Some(ttl) => self.evict_idle_older_than(Duration::from_secs(ttl)),
            None => 0,
        }
    }

    /// Handle one decoded request.
    pub fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, 0)
    }

    /// [`handle`](Self::handle) carrying the request id minted (or
    /// propagated) by the front end, so handler-side journal events can be
    /// correlated with the connection's request trace.
    pub fn handle_traced(&self, request: Request, request_id: u64) -> Response {
        self.apply_deployment_overhead();
        match request {
            Request::CreateSession { program, architecture, entry, session } => {
                let config = architecture.unwrap_or_default();
                self.create_session(&program, &config, entry.as_deref(), session)
            }
            Request::Compile { source, optimization } => {
                let opt = match optimization {
                    0 => OptLevel::O0,
                    1 => OptLevel::O1,
                    2 => OptLevel::O2,
                    _ => OptLevel::O3,
                };
                match rvsim_cc::compile(&source, opt) {
                    Ok(output) => Response::Compiled {
                        assembly: filter_assembly(&output.assembly),
                        line_map: output.line_map,
                    },
                    Err(errors) => Response::error(
                        errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n"),
                    ),
                }
            }
            Request::Step { session, cycles } => match self.session(session) {
                Some(slot) => self.coalesced_step(session, &slot, cycles, request_id),
                None => Response::error(format!("unknown session {session}")),
            },
            Request::StepBack { session, cycles } => self.with_session(session, |s| {
                let sim = &mut s.simulator;
                for _ in 0..cycles {
                    sim.step_back();
                }
                Response::Stepped { cycle: sim.cycle(), halted: sim.is_halted() }
            }),
            Request::Run { session, max_cycles } => {
                self.with_session(session, |s| match s.simulator.run(max_cycles) {
                    Ok(result) => {
                        Response::Stepped { cycle: result.cycles, halted: s.simulator.is_halted() }
                    }
                    Err(e) => Response::error(e),
                })
            }
            // Plain GetState does not seed the delta base (that would cost a
            // full snapshot clone per request, and the raw fast path cannot
            // afford a structured capture at all): the base is tracked by
            // delta requests only, whose first ask falls back to a full
            // snapshot.  Typed and raw paths behave identically.
            Request::GetState { session } => self.with_session(session, |s| {
                Response::State(Box::new(ProcessorSnapshot::capture(&s.simulator)))
            }),
            Request::GetStateDelta { session, since_cycle } => {
                self.with_session(session, |s| state_delta_response(s, since_cycle))
            }
            Request::GetStats { session } => {
                self.with_session(session, |s| Response::Stats(Box::new(s.simulator.statistics())))
            }
            Request::DestroySession { session } => {
                if self.remove_session(session) {
                    Response::Destroyed
                } else {
                    Response::error(format!("unknown session {session}"))
                }
            }
            Request::SerializeSession { session, destroy } => {
                self.serialize_session(session, destroy)
            }
            Request::RestoreSession { envelope, replace } => {
                self.restore_session(*envelope, replace)
            }
            Request::ListSessions => self.list_sessions(),
        }
    }

    /// Capture session `id` as a portable envelope.  With `destroy`, the
    /// session is removed while its lock is still held: no request can
    /// observe it between the capture and the removal, which is the atomic
    /// "serialize and vacate" a live migration needs.
    fn serialize_session(&self, id: u64, destroy: bool) -> Response {
        let Some(slot) = self.session(id) else {
            return Response::error(format!("unknown session {id}"));
        };
        let guard = slot.session.lock();
        let envelope = SessionEnvelope::capture(id, &guard.simulator, &guard.program);
        if destroy {
            // Holding the session lock here is safe: the eviction sweep
            // only `try_lock`s sessions, so no shard-write holder ever
            // blocks on a session lock.
            self.remove_session(id);
        }
        drop(guard);
        Response::Serialized(Box::new(envelope))
    }

    /// Install a session from an envelope under the envelope's original id.
    /// The restore replays the program to the captured cycle and refuses to
    /// install state it cannot reproduce exactly.
    fn restore_session(&self, envelope: SessionEnvelope, replace: bool) -> Response {
        let simulator = match envelope.replay() {
            Ok(simulator) => simulator,
            Err(e) => return Response::error(e),
        };
        let id = envelope.session;
        // Keep the auto-assign counter ahead of explicitly installed ids so
        // a later plain CreateSession can never collide with a restore.
        self.next_session.fetch_max(id.saturating_add(1), Ordering::Relaxed);
        if replace {
            if let Some(slot) = self.session(id) {
                let mut guard = slot.session.lock();
                guard.simulator = simulator;
                guard.program = envelope.program;
                guard.config = envelope.architecture;
                // New state generation behind the same id: bump the serve
                // epoch so the cached GetState payload (keyed by epoch +
                // cycle) can never be served for the replaced state, and
                // drop the delta base — the client's held snapshot no
                // longer descends from this session's history.
                guard.epoch += 1;
                guard.serve.encoded_key = None;
                guard.serve.delta_base = None;
                // New state generation: whatever checkpoint exists describes
                // the replaced state, so re-checkpoint at the next sweep.
                guard.checkpointed_cycle = None;
                return Response::SessionCreated { session: id };
            }
        }
        let session = Session {
            simulator,
            serve: ServeCache::default(),
            program: envelope.program,
            config: envelope.architecture,
            epoch: 0,
            checkpointed_cycle: None,
        };
        match self.install_session(id, session) {
            Ok(()) => Response::SessionCreated { session: id },
            Err(e) => Response::error(e),
        }
    }

    /// Ids of all live sessions, ascending (drain enumeration).  Takes each
    /// shard's read lock in turn — never the whole store at once.  With a
    /// checkpoint store, spilled sessions are listed too: they answer
    /// requests (via restore-on-demand), so they are live to a client.
    fn list_sessions(&self) -> Response {
        let mut sessions: Vec<u64> = Vec::with_capacity(self.session_count());
        for shard in self.shards.iter() {
            sessions.extend(shard.read().keys().copied());
        }
        if let Some(ckpt) = &self.checkpoints {
            sessions.extend(ckpt.store.scan().iter().map(|e| e.session));
        }
        sessions.sort_unstable();
        sessions.dedup();
        Response::SessionList { sessions }
    }

    /// The `GetStateDelta` raw path: the same response the typed handler
    /// produces, but compressed through the session's reusable
    /// [`Compressor`] instead of a one-shot hash-table allocation per
    /// response.
    fn serve_delta_raw(&self, id: u64, since_cycle: u64) -> Bytes {
        self.apply_deployment_overhead();
        let Some(slot) = self.session(id) else {
            return self.encode_response(&Response::error(format!("unknown session {id}")));
        };
        let mut guard = slot.session.lock();
        let response = state_delta_response(&mut guard, since_cycle);
        let json = serde_json::to_vec(&response).expect("responses serialize");
        let mut out = Vec::with_capacity(json.len() / 2 + 8);
        if self.config.compress_responses {
            out.push(1u8);
            guard.serve.compressor.compress_into(&json, &mut out);
        } else {
            out.push(0u8);
            out.extend_from_slice(&json);
        }
        Bytes::from(out)
    }

    fn create_session(
        &self,
        program: &str,
        config: &ArchitectureConfig,
        _entry: Option<&str>,
        explicit_id: Option<u64>,
    ) -> Response {
        match Simulator::from_assembly(program, config) {
            Ok(simulator) => {
                let id = match explicit_id {
                    Some(id) => {
                        // Keep the auto-assign counter ahead of explicit
                        // ids so later plain creates can never collide.
                        self.next_session.fetch_max(id.saturating_add(1), Ordering::Relaxed);
                        id
                    }
                    None => self.next_session.fetch_add(1, Ordering::Relaxed),
                };
                let session = Session {
                    simulator,
                    serve: ServeCache::default(),
                    program: program.to_string(),
                    config: config.clone(),
                    epoch: 0,
                    checkpointed_cycle: None,
                };
                match self.install_session(id, session) {
                    Ok(()) => Response::SessionCreated { session: id },
                    Err(e) => Response::error(e),
                }
            }
            Err(e) => Response::error(e),
        }
    }

    /// Insert `session` under `id`, failing (without touching the store)
    /// when the id is taken.  With a checkpoint store, the session is
    /// checkpointed *before* it becomes visible: from its first request on,
    /// a crash can lose at most one checkpoint interval of progress, never
    /// the session itself.
    fn install_session(&self, id: u64, mut session: Session) -> Result<(), String> {
        if self.shards[shard_index(id)].read().contains_key(&id) {
            return Err(format!("session {id} already exists"));
        }
        if let Some(ckpt) = &self.checkpoints {
            if session.checkpointed_cycle != Some(session.simulator.cycle()) {
                // The write happens outside the shard lock (a disk write
                // must not stall lookups); a failed write still installs —
                // the periodic tick retries within one interval.
                let envelope = SessionEnvelope::capture(id, &session.simulator, &session.program);
                if ckpt.store.save(&envelope).is_ok() {
                    session.checkpointed_cycle = Some(envelope.cycle);
                }
            }
        }
        let mut shard = self.shards[shard_index(id)].write();
        if shard.contains_key(&id) {
            return Err(format!("session {id} already exists"));
        }
        let slot = SessionSlot {
            last_touched_ms: AtomicU64::new(self.now_ms()),
            session: Mutex::new(session),
            steps: StepQueue::default(),
        };
        shard.insert(id, Arc::new(slot));
        drop(shard);
        self.session_count.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Execute a `Step` through the session's flat-combining queue.
    ///
    /// The request enqueues a ticket.  If no combiner is active, this thread
    /// becomes it: it takes the session lock and drains the queue in arrival
    /// order — its own ticket and any that pile up while it simulates —
    /// publishing each ticket's cumulative `(cycle, halted)` result.
    /// Otherwise the active combiner will execute the ticket, and this
    /// thread sleeps on the condvar until its response is published.
    ///
    /// Responses and final simulator state are byte-identical to the same
    /// requests arriving strictly sequentially (each ticket observes the
    /// cycle counter after exactly its own cycles on top of its
    /// predecessors'): coalescing changes *which thread* turns the crank,
    /// never what the crank does.
    fn coalesced_step(
        &self,
        session_id: u64,
        slot: &SessionSlot,
        cycles: u64,
        request_id: u64,
    ) -> Response {
        let queue = &slot.steps;
        let ticket = {
            let mut inner = queue.inner.lock();
            if inner.closed {
                // The session was destroyed or evicted between lookup and
                // enqueue: fail like the lookup would have.
                return Response::error(format!("unknown session {session_id}"));
            }
            let id = inner.next_ticket;
            inner.next_ticket += 1;
            inner.pending.push_back(StepTicket { id, cycles });
            if inner.combining {
                let waiters = inner.pending.len() as u64;
                loop {
                    if let Some(response) = inner.finished.remove(&id) {
                        if !response.is_error() {
                            self.coalesced_steps.fetch_add(1, Ordering::Relaxed);
                            self.obs.journal.record(
                                Event::new(EventKind::CoalesceJoin, self.obs.journal.now_us())
                                    .request(request_id)
                                    .session(session_id)
                                    .fields(waiters, cycles),
                            );
                        }
                        return response;
                    }
                    inner = queue.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
            }
            inner.combining = true;
            id
        };
        let mut session = slot.session.lock();
        let mut own_response = None;
        loop {
            let batch: Vec<StepTicket> = {
                let mut inner = queue.inner.lock();
                if inner.pending.is_empty() {
                    // Hand back combiner duty under the queue lock: a ticket
                    // enqueued after this point sees `combining == false`
                    // and combines for itself instead of waiting forever.
                    inner.combining = false;
                    break;
                }
                inner.pending.drain(..).collect()
            };
            let mut published = Vec::new();
            for t in &batch {
                let sim = &mut session.simulator;
                for _ in 0..t.cycles {
                    sim.step();
                }
                let response = Response::Stepped { cycle: sim.cycle(), halted: sim.is_halted() };
                if t.id == ticket {
                    own_response = Some(response);
                } else {
                    published.push((t.id, response));
                }
            }
            if !published.is_empty() {
                let mut inner = queue.inner.lock();
                for (id, response) in published {
                    inner.finished.insert(id, response);
                }
                queue.ready.notify_all();
            }
        }
        // Still holding the session lock: if the batch pushed the session
        // past the dirty-cycle threshold, checkpoint it now instead of
        // letting up to a full interval of progress sit only in memory.
        self.maybe_checkpoint_dirty(session_id, &mut session);
        drop(session);
        match own_response {
            Some(response) => response,
            // A concurrent destroy closed the queue before this combiner
            // drained its batch: the closer already published our ticket's
            // `unknown session` error.
            None => queue
                .inner
                .lock()
                .finished
                .remove(&ticket)
                .unwrap_or_else(|| Response::error(format!("unknown session {session_id}"))),
        }
    }

    fn with_session(&self, id: u64, f: impl FnOnce(&mut Session) -> Response) -> Response {
        match self.session(id) {
            Some(slot) => {
                let mut guard = slot.session.lock();
                let response = f(&mut guard);
                // `Run` can advance far past the dirty threshold in one
                // request; read-only requests fail the cheap cycle check.
                self.maybe_checkpoint_dirty(id, &mut guard);
                response
            }
            None => Response::error(format!("unknown session {id}")),
        }
    }

    /// Checkpoint `session` if it has advanced at least the dirty-cycle
    /// threshold past its last checkpoint.  Called with the session lock
    /// held by the request that did the advancing.
    fn maybe_checkpoint_dirty(&self, id: u64, session: &mut Session) {
        let Some(ckpt) = &self.checkpoints else { return };
        if ckpt.dirty_cycles == 0 {
            return;
        }
        let cycle = session.simulator.cycle();
        let base = session.checkpointed_cycle.unwrap_or(0);
        if cycle.saturating_sub(base) < ckpt.dirty_cycles {
            return;
        }
        let envelope = SessionEnvelope::capture(id, &session.simulator, &session.program);
        if ckpt.store.save(&envelope).is_ok() {
            session.checkpointed_cycle = Some(cycle);
        }
    }

    /// Periodic checkpoint sweep, rate-limited to the configured interval.
    /// The network front end calls this from every housekeeping tick; the
    /// CAS on the tick stamp makes concurrent callers harmless.  Returns
    /// how many sessions were checkpointed (0 off-cadence or when
    /// checkpointing is disabled).
    pub fn checkpoint_tick(&self) -> usize {
        let Some(ckpt) = &self.checkpoints else { return 0 };
        let now = self.now_ms();
        let last = ckpt.last_tick_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) < ckpt.interval_ms
            || ckpt
                .last_tick_ms
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return 0;
        }
        let sweep_started = Instant::now();
        let written = self.checkpoint_dirty_sessions();
        self.obs.journal.record(
            Event::new(EventKind::CheckpointSweep, self.obs.journal.now_us())
                .fields(written as u64, sweep_started.elapsed().as_micros() as u64),
        );
        written
    }

    /// Checkpoint every resident session whose state has moved since its
    /// last checkpoint.  Sessions whose lock is held (a request is
    /// mid-flight) are skipped — the next sweep, or the request's own
    /// dirty-threshold check, catches them.
    pub fn checkpoint_dirty_sessions(&self) -> usize {
        let Some(ckpt) = &self.checkpoints else { return 0 };
        let mut written = 0;
        for shard in self.shards.iter() {
            let slots: Vec<(u64, Arc<SessionSlot>)> =
                shard.read().iter().map(|(&id, slot)| (id, Arc::clone(slot))).collect();
            for (id, slot) in slots {
                let Some(mut session) = slot.session.try_lock() else { continue };
                let cycle = session.simulator.cycle();
                if session.checkpointed_cycle == Some(cycle) {
                    continue;
                }
                let envelope = SessionEnvelope::capture(id, &session.simulator, &session.program);
                if ckpt.store.save(&envelope).is_ok() {
                    session.checkpointed_cycle = Some(cycle);
                    written += 1;
                }
            }
        }
        written
    }

    /// Every checkpoint in the state directory (session id + age), for the
    /// router's failover recovery and the `/admin/checkpoints` endpoint.
    pub fn checkpoint_entries(&self) -> Vec<CheckpointEntry> {
        self.checkpoints.as_ref().map_or_else(Vec::new, |c| c.store.scan())
    }

    /// Boot-time recovery: restore every checkpointed session that is not
    /// already resident.  Returns how many were restored plus the sessions
    /// that refused to restore (and why).
    pub fn recover_checkpoints(&self) -> (usize, Vec<(u64, String)>) {
        let entries = self.checkpoint_entries();
        let mut recovered = 0;
        let mut failures = Vec::new();
        for entry in entries {
            if self.shards[shard_index(entry.session)].read().contains_key(&entry.session) {
                continue;
            }
            match self.restore_from_disk(entry.session) {
                Ok(_) => recovered += 1,
                Err(e) => failures.push((entry.session, e)),
            }
        }
        (recovered, failures)
    }

    /// Recover specific sessions (the router's failover path, via
    /// `/admin/recover`): each is reported live-as-is, restored from its
    /// checkpoint with the staleness it inherited, or failed with the
    /// reason.
    pub fn recover_sessions(&self, sessions: &[u64]) -> Vec<RecoverOutcome> {
        sessions
            .iter()
            .map(|&id| {
                if let Some(slot) = self.shards[shard_index(id)].read().get(&id).cloned() {
                    let cycle = slot.session.lock().simulator.cycle();
                    return RecoverOutcome {
                        session: id,
                        ok: true,
                        already_live: true,
                        cycle,
                        staleness_ms: 0,
                        error: None,
                    };
                }
                let age = self.checkpoints.as_ref().and_then(|c| c.store.age_of(id));
                match self.restore_from_disk(id) {
                    Ok(slot) => RecoverOutcome {
                        session: id,
                        ok: true,
                        already_live: false,
                        cycle: slot.session.lock().simulator.cycle(),
                        staleness_ms: age.map_or(0, |a| a.as_millis() as u64),
                        error: None,
                    },
                    Err(e) => RecoverOutcome {
                        session: id,
                        ok: false,
                        already_live: false,
                        cycle: 0,
                        staleness_ms: 0,
                        error: Some(e),
                    },
                }
            })
            .collect()
    }

    /// Encode a response: JSON, optionally compressed.  The first byte of the
    /// payload is a flag: 0 = plain JSON, 1 = LZSS-compressed JSON.
    pub fn encode_response(&self, response: &Response) -> Bytes {
        let json = serde_json::to_vec(response).expect("responses serialize");
        if self.config.compress_responses {
            let compressed = rvsim_compress::compress(&json);
            let mut out = Vec::with_capacity(compressed.len() + 1);
            out.push(1u8);
            out.extend_from_slice(&compressed);
            Bytes::from(out)
        } else {
            let mut out = Vec::with_capacity(json.len() + 1);
            out.push(0u8);
            out.extend_from_slice(&json);
            Bytes::from(out)
        }
    }

    /// Decode a payload produced by [`SimulationServer::encode_response`].
    pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
        if payload.is_empty() {
            return Err("empty response payload".to_string());
        }
        match payload[0] {
            // Plain JSON deserializes straight from the borrowed slice.
            0 => serde_json::from_slice(&payload[1..]).map_err(|e| e.to_string()),
            1 => {
                let json = rvsim_compress::decompress(&payload[1..]).map_err(|e| e.to_string())?;
                serde_json::from_slice(&json).map_err(|e| e.to_string())
            }
            other => Err(format!("unknown payload flag {other}")),
        }
    }

    /// Handle a raw JSON request payload and produce an encoded response —
    /// the full per-request work the paper's performance evaluation measures
    /// (decode, simulate, encode, compress).  `GetState` takes the
    /// allocation-free serve path: the snapshot renders directly into the
    /// session's reusable buffers, and an unchanged cycle returns the cached
    /// encoded payload without re-capturing anything.  The returned
    /// [`Bytes`] handle shares the cache's buffer — transports write it to
    /// the wire without ever copying the payload.
    pub fn handle_raw(&self, request_json: &[u8]) -> Bytes {
        self.handle_raw_traced(request_json, 0)
    }

    /// [`handle_raw`](Self::handle_raw) carrying the front end's request
    /// id, timing the dispatch into the per-endpoint latency histogram.
    /// The cached-serve fast paths (`GetState`/`GetStateDelta`) are timed
    /// one request in [`RAW_SAMPLE`] and recorded with matching weight —
    /// the untimed majority pay one relaxed counter bump.  Every other
    /// endpoint is timed exactly: those handlers run micro- to
    /// milliseconds, where two clock reads are noise.  No locks, no
    /// allocation on any path.
    pub fn handle_raw_traced(&self, request_json: &[u8], request_id: u64) -> Bytes {
        match serde_json::from_slice::<Request>(request_json) {
            Ok(Request::GetState { session }) => {
                self.sampled_raw(EP_GET_STATE, || self.serve_state_raw(session))
            }
            Ok(Request::GetStateDelta { session, since_cycle }) => {
                self.sampled_raw(EP_GET_STATE_DELTA, || self.serve_delta_raw(session, since_cycle))
            }
            Ok(request) => {
                let started = Instant::now();
                let endpoint = endpoint_index(&request);
                let payload = self.encode_response(&self.handle_traced(request, request_id));
                self.endpoints[endpoint].record(started.elapsed().as_micros() as u64);
                payload
            }
            Err(e) => {
                let started = Instant::now();
                let payload =
                    self.encode_response(&Response::error(format!("malformed request: {e}")));
                self.endpoints[EP_MALFORMED].record(started.elapsed().as_micros() as u64);
                payload
            }
        }
    }

    /// Dispatch one cached-serve fast-path request, timing it into
    /// `endpoint`'s histogram (weighted) when the sampling counter elects
    /// it.  Tick 0 is always elected, so the first request of any workload
    /// seeds the histogram.
    #[inline]
    fn sampled_raw(&self, endpoint: usize, serve: impl FnOnce() -> Bytes) -> Bytes {
        if self.raw_ticks.fetch_add(1, Ordering::Relaxed) & (RAW_SAMPLE - 1) == 0 {
            let started = Instant::now();
            let payload = serve();
            self.endpoints[endpoint]
                .record_weighted(started.elapsed().as_micros() as u64, RAW_SAMPLE);
            payload
        } else {
            serve()
        }
    }

    /// The `GetState` fast path: render the state-response JSON directly from
    /// the simulator into the session's reusable [`SnapshotBuffer`], compress
    /// it with the session's reusable [`Compressor`], and cache the encoded
    /// bytes keyed by cycle.  Byte-identical to the generic
    /// `encode_response(&handle(GetState))` path (golden-tested).
    fn serve_state_raw(&self, id: u64) -> Bytes {
        self.apply_deployment_overhead();
        let Some(slot) = self.session(id) else {
            return self.encode_response(&Response::error(format!("unknown session {id}")));
        };
        let mut guard = slot.session.lock();
        let Session { simulator, serve, epoch, .. } = &mut *guard;
        let cycle = simulator.cycle();
        if serve.encoded_key != Some((*epoch, cycle)) {
            serve.buffer.render_state_response(simulator);
            // Reclaim the previous payload's allocation when every consumer
            // has dropped its handle (the steady state once responses have
            // been written to the wire); fall back to a fresh buffer while
            // clones are still alive.
            let mut out = match std::mem::take(&mut serve.encoded).try_into_vec() {
                Ok(mut vec) => {
                    vec.clear();
                    vec
                }
                Err(_) => Vec::new(),
            };
            if self.config.compress_responses {
                out.push(1u8);
                serve.compressor.compress_into(serve.buffer.bytes(), &mut out);
            } else {
                out.push(0u8);
                out.extend_from_slice(serve.buffer.bytes());
            }
            serve.encoded = Bytes::from(out);
            serve.encoded_key = Some((*epoch, cycle));
        } else {
            self.shared_state_serves.fetch_add(1, Ordering::Relaxed);
        }
        // The raw path serves full snapshots; a client that later asks for a
        // delta against this cycle must get one, so the base must exist.
        // Capturing it structurally would defeat the fast path: instead the
        // delta handler falls back to a full snapshot when no base matches.
        // Serving the cache is a reference bump on the shared buffer.
        serve.encoded.clone()
    }

    fn apply_deployment_overhead(&self) {
        match self.config.mode {
            DeploymentMode::Direct => {}
            DeploymentMode::Containerized { request_overhead_us } => {
                // Busy-wait so the overhead consumes CPU like the real
                // proxying / namespace translation does, rather than merely
                // sleeping.
                let start = std::time::Instant::now();
                while start.elapsed().as_micros() < request_overhead_us as u128 {
                    std::hint::spin_loop();
                }
            }
            DeploymentMode::RemoteEmulated { service_time_us } => {
                // Sleep, don't spin: emulated nodes must overlap on a host
                // with fewer cores than nodes.
                std::thread::sleep(Duration::from_micros(service_time_us));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 20
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

    fn server() -> SimulationServer {
        SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: false,
            worker_threads: 1,
            idle_session_ttl_seconds: None,
        })
    }

    fn create(server: &SimulationServer) -> u64 {
        match server.handle(Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
            session: None,
        }) {
            Response::SessionCreated { session } => session,
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn session_lifecycle() {
        let server = server();
        let id = create(&server);
        assert_eq!(server.session_count(), 1);
        let r = server.handle(Request::Step { session: id, cycles: 5 });
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
        let r = server.handle(Request::Run { session: id, max_cycles: 100_000 });
        match r {
            Response::Stepped { halted, .. } => assert!(halted),
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::GetStats { session: id }) {
            Response::Stats(stats) => {
                assert!(stats.committed > 20);
                assert!(stats.ipc() > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.handle(Request::DestroySession { session: id }), Response::Destroyed);
        assert_eq!(server.session_count(), 0);
        assert!(server.handle(Request::Step { session: id, cycles: 1 }).is_error());
    }

    #[test]
    fn state_snapshot_and_step_back() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 10 });
        let r = server.handle(Request::GetState { session: id });
        match r {
            Response::State(snapshot) => {
                assert_eq!(snapshot.cycle, 10);
                assert_eq!(snapshot.int_registers.len(), 32);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = server.handle(Request::StepBack { session: id, cycles: 3 });
        assert_eq!(r, Response::Stepped { cycle: 7, halted: false });
    }

    #[test]
    fn create_session_with_bad_program_reports_error() {
        let server = server();
        let r = server.handle(Request::CreateSession {
            program: "main:\n  bogus a0, a1\n".into(),
            architecture: None,
            entry: None,
            session: None,
        });
        assert!(r.is_error());
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn compile_request_round_trips_through_assembler() {
        let server = server();
        let r = server.handle(Request::Compile {
            source: "int main(void) { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }"
                .into(),
            optimization: 2,
        });
        match r {
            Response::Compiled { assembly, line_map } => {
                assert!(assembly.contains("main:"));
                assert!(!line_map.is_empty());
                // The compiled assembly must itself create a valid session.
                let r2 = server.handle(Request::CreateSession {
                    program: assembly,
                    architecture: None,
                    entry: None,
                    session: None,
                });
                assert!(matches!(r2, Response::SessionCreated { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = server.handle(Request::Compile {
            source: "int main(void) { return 1 + ; }".into(),
            optimization: 0,
        });
        assert!(r.is_error());
    }

    #[test]
    fn raw_payload_round_trip_with_and_without_compression() {
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
                idle_session_ttl_seconds: None,
            });
            let id = create(&server);
            let request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            let payload = server.handle_raw(&request);
            assert_eq!(payload[0], compress as u8);
            let response = SimulationServer::decode_response(&payload).unwrap();
            assert!(matches!(response, Response::State(_)));
        }
    }

    #[test]
    fn malformed_raw_request_is_an_error_response() {
        let server = server();
        let payload = server.handle_raw(b"{not json");
        let response = SimulationServer::decode_response(&payload).unwrap();
        assert!(response.is_error());
        assert!(SimulationServer::decode_response(&[]).is_err());
        assert!(SimulationServer::decode_response(&[9, 1, 2]).is_err());
    }

    #[test]
    fn containerized_mode_is_slower_per_request() {
        let direct = server();
        let container = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Containerized { request_overhead_us: 200 },
            compress_responses: false,
            worker_threads: 1,
            idle_session_ttl_seconds: None,
        });
        let id_d = create(&direct);
        let id_c = create(&container);
        let time = |s: &SimulationServer, id: u64| {
            let start = std::time::Instant::now();
            for _ in 0..20 {
                s.handle(Request::Step { session: id, cycles: 1 });
            }
            start.elapsed()
        };
        let t_direct = time(&direct, id_d);
        let t_container = time(&container, id_c);
        assert!(
            t_container > t_direct,
            "containerized ({t_container:?}) must be slower than direct ({t_direct:?})"
        );
    }

    #[test]
    fn raw_get_state_is_byte_identical_to_generic_encode_across_run() {
        // The fast path (direct render + cached payload) must be
        // indistinguishable on the wire from the generic capture+serde path,
        // from the fresh session through mid-run to the halted state, both
        // with and without compression.
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
                idle_session_ttl_seconds: None,
            });
            let id = create(&server);
            let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            loop {
                let fast = server.handle_raw(&raw_request);
                let generic =
                    server.encode_response(&server.handle(Request::GetState { session: id }));
                assert_eq!(
                    fast, generic,
                    "fast path differs from generic path (compress={compress})"
                );
                let halted = match server.handle(Request::Step { session: id, cycles: 1 }) {
                    Response::Stepped { halted, .. } => halted,
                    other => panic!("unexpected {other:?}"),
                };
                if halted {
                    let fast = server.handle_raw(&raw_request);
                    let generic =
                        server.encode_response(&server.handle(Request::GetState { session: id }));
                    assert_eq!(fast, generic, "halted-state payload differs");
                    break;
                }
            }
        }
    }

    #[test]
    fn unchanged_cycle_returns_cached_payload() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 5 });
        let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let first = server.handle_raw(&raw_request);
        let second = server.handle_raw(&raw_request);
        assert_eq!(first, second, "same cycle must serve identical bytes");
        server.handle(Request::Step { session: id, cycles: 1 });
        let third = server.handle_raw(&raw_request);
        assert_ne!(first, third, "advancing the cycle must refresh the payload");
        // Stepping back to an earlier cycle re-renders deterministically.
        server.handle(Request::StepBack { session: id, cycles: 1 });
        let fourth = server.handle_raw(&raw_request);
        assert_eq!(first, fourth, "deterministic replay must reproduce the payload");
    }

    #[test]
    fn delta_protocol_reconstructs_full_snapshots() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 3 });

        // First delta request has no base: full snapshot fallback.
        let base =
            match server.handle(Request::GetStateDelta { session: id, since_cycle: u64::MAX }) {
                Response::State(snapshot) => *snapshot,
                other => panic!("expected full fallback, got {other:?}"),
            };

        // From here on, every step yields a real delta that reconstructs the
        // exact capture.
        let mut held = base;
        for _ in 0..10 {
            server.handle(Request::Step { session: id, cycles: 1 });
            let response =
                server.handle(Request::GetStateDelta { session: id, since_cycle: held.cycle });
            match response {
                Response::StateDelta(delta) => {
                    assert_eq!(delta.since_cycle, held.cycle);
                    held = delta.apply_to(&held).expect("delta applies");
                }
                other => panic!("expected a delta, got {other:?}"),
            }
            let full = match server.handle(Request::GetState { session: id }) {
                Response::State(snapshot) => *snapshot,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(held, full, "reconstructed snapshot must equal the full capture");
        }

        // A stale base (client fell behind) falls back to a full snapshot.
        server.handle(Request::Step { session: id, cycles: 2 });
        let response = server.handle(Request::GetStateDelta { session: id, since_cycle: 1 });
        assert!(matches!(response, Response::State(_)), "stale base must fall back");
    }

    #[test]
    fn delta_for_unknown_session_is_an_error() {
        let server = server();
        let r = server.handle(Request::GetStateDelta { session: 99, since_cycle: 0 });
        assert!(r.is_error());
    }

    #[test]
    fn compression_shrinks_state_payloads() {
        let compressed_server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 1,
            idle_session_ttl_seconds: None,
        });
        let plain_server = server();
        let id_c = create(&compressed_server);
        let id_p = create(&plain_server);
        compressed_server.handle(Request::Step { session: id_c, cycles: 5 });
        plain_server.handle(Request::Step { session: id_p, cycles: 5 });
        let req_c = serde_json::to_vec(&Request::GetState { session: id_c }).unwrap();
        let req_p = serde_json::to_vec(&Request::GetState { session: id_p }).unwrap();
        let compressed = compressed_server.handle_raw(&req_c);
        let plain = plain_server.handle_raw(&req_p);
        assert!(
            compressed.len() < plain.len() / 2,
            "state snapshot should compress to less than half ({} vs {})",
            compressed.len(),
            plain.len()
        );
    }

    #[test]
    fn cached_get_state_is_served_zero_copy() {
        // Repeated `GetState` at an unchanged cycle must hand out the SAME
        // buffer (pointer identity), not an equal copy: the cached payload
        // is a shared `Bytes` handle and serving it is a reference bump.
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
                idle_session_ttl_seconds: None,
            });
            let id = create(&server);
            server.handle(Request::Step { session: id, cycles: 7 });
            let request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            let first = server.handle_raw(&request);
            let second = server.handle_raw(&request);
            let third = server.handle_raw(&request);
            assert_eq!(
                first.as_ptr(),
                second.as_ptr(),
                "same-cycle GetState must serve the identical buffer (compress={compress})"
            );
            assert_eq!(second.as_ptr(), third.as_ptr());
            // Advancing the cycle refreshes the payload; dropping our handles
            // first lets the refresh reclaim the very same allocation, but
            // either way the bytes change.
            server.handle(Request::Step { session: id, cycles: 1 });
            drop((first, second));
            let fourth = server.handle_raw(&request);
            assert_ne!(&third[..], &fourth[..], "new cycle must re-render");
        }
    }

    #[test]
    fn payload_buffer_is_reclaimed_once_clients_drop_their_handles() {
        let server = server();
        let id = create(&server);
        let request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let payload = server.handle_raw(&request);
        // Two live handles (ours + the cache): not reclaimable.
        assert!(payload.clone().try_into_vec().is_err());
        // The cache's handle is the only survivor after a refresh renders a
        // new payload; our dropped clone lets try_into_vec succeed then.
        let solo = Bytes::from(payload.to_vec());
        assert!(solo.try_into_vec().is_ok());
    }

    #[test]
    fn idle_sessions_are_evicted_after_ttl() {
        let server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: false,
            worker_threads: 1,
            idle_session_ttl_seconds: Some(3600),
        });
        let stale = create(&server);
        let fresh = create(&server);
        assert_eq!(server.session_count(), 2);

        // Nothing is an hour old: the configured sweep keeps both.
        assert_eq!(server.evict_idle(), 0);
        assert_eq!(server.session_count(), 2);

        // Age both sessions past an explicit 1-hour TTL on the virtual
        // clock, then touch the fresh one: only the untouched session is
        // older than the cutoff.
        server.advance_clock(2 * 3600 * 1000);
        server.handle(Request::Step { session: fresh, cycles: 1 });
        let evicted = server.evict_idle_older_than(Duration::from_secs(3600));
        assert_eq!(evicted, 1, "exactly the untouched session is swept");
        assert_eq!(server.session_count(), 1);
        assert_eq!(server.evicted_session_count(), 1);
        assert!(server.handle(Request::Step { session: stale, cycles: 1 }).is_error());
        assert!(!server.handle(Request::Step { session: fresh, cycles: 1 }).is_error());

        // A zero TTL sweeps everything that is not mid-request.
        assert_eq!(server.evict_idle_older_than(Duration::ZERO), 1);
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.evicted_session_count(), 2);
    }

    #[test]
    fn session_count_stays_consistent_under_concurrent_create_and_destroy() {
        // The count is shard-aware bookkeeping (one atomic), so concurrent
        // creates/destroys across shards must never lose or double-count.
        let server = Arc::new(server());
        let mut threads = Vec::new();
        for _ in 0..8 {
            let server = Arc::clone(&server);
            threads.push(std::thread::spawn(move || {
                let mut kept = 0usize;
                for round in 0..20 {
                    let id = match server.handle(Request::CreateSession {
                        program: PROGRAM.into(),
                        architecture: None,
                        entry: None,
                        session: None,
                    }) {
                        Response::SessionCreated { session } => session,
                        other => panic!("unexpected {other:?}"),
                    };
                    if round % 2 == 0 {
                        assert_eq!(
                            server.handle(Request::DestroySession { session: id }),
                            Response::Destroyed
                        );
                    } else {
                        kept += 1;
                    }
                }
                kept
            }));
        }
        let kept: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(server.session_count(), kept);
        // Destroying a session twice fails the second time and does not
        // corrupt the count.
        let id = create(&server);
        assert_eq!(server.handle(Request::DestroySession { session: id }), Response::Destroyed);
        assert!(server.handle(Request::DestroySession { session: id }).is_error());
        assert_eq!(server.session_count(), kept);
    }

    #[test]
    fn sequential_steps_never_count_as_coalesced() {
        let server = server();
        let id = create(&server);
        for i in 1..=10u64 {
            let r = server.handle(Request::Step { session: id, cycles: 1 });
            assert_eq!(r, Response::Stepped { cycle: i, halted: false });
        }
        assert_eq!(server.coalesced_step_count(), 0, "no concurrency, no coalescing");
    }

    #[test]
    fn concurrent_steps_coalesce_to_the_sequential_result() {
        // N threads hammer one session with Step requests.  Whatever the
        // interleaving, the combiner must (a) account for every requested
        // cycle exactly once, (b) give each request a cumulative result as
        // if it ran alone in its arrival slot, and (c) leave the session in
        // a state byte-identical to the same total stepped sequentially.
        const THREADS: usize = 8;
        const STEPS_PER_THREAD: u64 = 5;
        const CYCLES_PER_STEP: u64 = 3;
        // A loop long enough that the simulator never halts inside the
        // test's cycle budget (a halted simulator stops advancing the cycle
        // counter, which would collapse the cumulative lattice).
        const LONG_PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 1000000
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";
        let create_long = |server: &SimulationServer| -> u64 {
            match server.handle(Request::CreateSession {
                program: LONG_PROGRAM.into(),
                architecture: None,
                entry: None,
                session: None,
            }) {
                Response::SessionCreated { session } => session,
                other => panic!("unexpected response {other:?}"),
            }
        };

        let concurrent = Arc::new(server());
        let id = create_long(&concurrent);
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let mut threads = Vec::new();
        for _ in 0..THREADS {
            let server = Arc::clone(&concurrent);
            let barrier = Arc::clone(&barrier);
            threads.push(std::thread::spawn(move || {
                barrier.wait();
                let mut cycles_seen = Vec::new();
                for _ in 0..STEPS_PER_THREAD {
                    match server.handle(Request::Step { session: id, cycles: CYCLES_PER_STEP }) {
                        Response::Stepped { cycle, .. } => cycles_seen.push(cycle),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                cycles_seen
            }));
        }
        let mut all_cycles: Vec<u64> =
            threads.into_iter().flat_map(|t| t.join().unwrap()).collect();

        let total = THREADS as u64 * STEPS_PER_THREAD * CYCLES_PER_STEP;
        // (b): every response sits on the cumulative lattice and no two
        // requests observe the same cycle — each got its own exclusive slot.
        all_cycles.sort_unstable();
        let expected: Vec<u64> =
            (1..=THREADS as u64 * STEPS_PER_THREAD).map(|i| i * CYCLES_PER_STEP).collect();
        assert_eq!(all_cycles, expected, "responses must be the sequential prefix sums");

        // (a) + (c): final state equals a sequential run of the same total.
        let sequential = server();
        let id_seq = create_long(&sequential);
        sequential.handle(Request::Step { session: id_seq, cycles: total });
        let raw_conc = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let raw_seq = serde_json::to_vec(&Request::GetState { session: id_seq }).unwrap();
        let conc_payload = concurrent.handle_raw(&raw_conc);
        let seq_payload = sequential.handle_raw(&raw_seq);
        // Payloads embed the session-independent state only, so they must
        // match byte for byte.
        assert_eq!(
            conc_payload, seq_payload,
            "coalesced execution must leave byte-identical state"
        );
        // The coalescing counter never exceeds the requests that could have
        // been combined (everything but the combiner passes themselves).
        assert!(concurrent.coalesced_step_count() <= (THREADS as u64 * STEPS_PER_THREAD));
    }

    #[test]
    fn shared_state_serves_are_counted_on_cache_hits() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 4 });
        let request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        assert_eq!(server.shared_state_serve_count(), 0);
        let _first = server.handle_raw(&request); // renders + caches
        assert_eq!(server.shared_state_serve_count(), 0);
        let _second = server.handle_raw(&request); // cache hit
        let _third = server.handle_raw(&request); // cache hit
        assert_eq!(server.shared_state_serve_count(), 2);
        server.handle(Request::Step { session: id, cycles: 1 });
        let _fourth = server.handle_raw(&request); // cycle moved: re-render
        assert_eq!(server.shared_state_serve_count(), 2);
    }

    #[test]
    fn serialize_restore_round_trips_a_live_session() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 7 });
        let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let before = server.handle_raw(&raw_request).to_vec();

        // Serialize-with-destroy vacates the session atomically.
        let envelope = match server.handle(Request::SerializeSession { session: id, destroy: true })
        {
            Response::Serialized(envelope) => envelope,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(envelope.cycle, 7);
        assert_eq!(server.session_count(), 0);
        assert!(server.handle(Request::Step { session: id, cycles: 1 }).is_error());

        // Restore reinstalls under the original id with identical state.
        let r = server.handle(Request::RestoreSession { envelope, replace: false });
        assert_eq!(r, Response::SessionCreated { session: id });
        let after = server.handle_raw(&raw_request).to_vec();
        assert_eq!(before, after, "restored session must serve identical state bytes");
        let r = server.handle(Request::Step { session: id, cycles: 1 });
        assert_eq!(r, Response::Stepped { cycle: 8, halted: false });
    }

    #[test]
    fn restore_to_same_cycle_invalidates_the_serve_cache() {
        // Regression: the serve cache used to be keyed by cycle alone, so a
        // session replaced by *different* state at the same cycle served the
        // previous state's cached payload.
        const OTHER_PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 77
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 5 });
        let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let cached = server.handle_raw(&raw_request).to_vec();

        // Build an envelope of a *different* program at the same cycle and
        // install it in place under the same id.
        let other = create_with(&server, OTHER_PROGRAM);
        server.handle(Request::Step { session: other, cycles: 5 });
        let mut envelope =
            match server.handle(Request::SerializeSession { session: other, destroy: true }) {
                Response::Serialized(envelope) => envelope,
                other => panic!("unexpected {other:?}"),
            };
        envelope.session = id;
        let r = server.handle(Request::RestoreSession { envelope, replace: true });
        assert_eq!(r, Response::SessionCreated { session: id });

        let fresh = server.handle_raw(&raw_request).to_vec();
        assert_ne!(cached, fresh, "replaced state at the same cycle must re-render");
        // And the fresh payload matches the generic path for the new state.
        let generic =
            server.encode_response(&server.handle(Request::GetState { session: id })).to_vec();
        assert_eq!(fresh, generic);
    }

    fn create_with(server: &SimulationServer, program: &str) -> u64 {
        match server.handle(Request::CreateSession {
            program: program.into(),
            architecture: None,
            entry: None,
            session: None,
        }) {
            Response::SessionCreated { session } => session,
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn explicit_session_ids_are_honored_and_collisions_fail() {
        let server = server();
        let r = server.handle(Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
            session: Some(1000),
        });
        assert_eq!(r, Response::SessionCreated { session: 1000 });
        let r = server.handle(Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
            session: Some(1000),
        });
        assert!(r.is_error(), "duplicate explicit id must fail");
        assert_eq!(server.session_count(), 1);
        // The auto-assign counter was pushed past the explicit id.
        let auto = create(&server);
        assert!(auto > 1000, "auto id {auto} must not collide with explicit ids");
        match server.handle(Request::ListSessions) {
            Response::SessionList { sessions } => assert_eq!(sessions, vec![1000, auto]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eviction_skips_sessions_with_queued_step_work() {
        let server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: false,
            worker_threads: 1,
            idle_session_ttl_seconds: Some(1),
        });
        let id = create(&server);
        let slot = server.session(id).unwrap();
        // Simulate a Step mid-coalescing: a ticket is queued and a combiner
        // is (about to be) active.  The session lock itself is free — which
        // is exactly the window the old sweep evicted in.
        {
            let mut inner = slot.steps.inner.lock();
            inner.pending.push_back(StepTicket { id: 0, cycles: 1 });
            inner.combining = true;
        }
        server.advance_clock(10_000);
        assert_eq!(
            server.evict_idle_older_than(Duration::ZERO),
            0,
            "a session with queued step work must not be evicted"
        );
        assert_eq!(server.session_count(), 1);
        // Once the queue is quiet the sweep takes it.
        {
            let mut inner = slot.steps.inner.lock();
            inner.pending.clear();
            inner.combining = false;
        }
        assert_eq!(server.evict_idle_older_than(Duration::ZERO), 1);
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn destroy_wakes_queued_step_waiters_with_an_error() {
        // Regression: a Step waiting on the coalescing condvar while the
        // session is destroyed used to sleep forever (nobody combined its
        // ticket).  The destroy must fail the queued ticket and wake it.
        let server = Arc::new(server());
        let id = create(&server);
        let slot = server.session(id).unwrap();
        // Pose as an active combiner so the spawned Step becomes a waiter.
        slot.steps.inner.lock().combining = true;

        let waiter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.handle(Request::Step { session: id, cycles: 1 }))
        };
        // Give the waiter time to enqueue and block on the condvar.
        while slot.steps.inner.lock().pending.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));

        assert_eq!(server.handle(Request::DestroySession { session: id }), Response::Destroyed);
        let response = waiter.join().unwrap();
        assert!(response.is_error(), "queued waiter must fail, got {response:?}");

        // And a Step racing in *after* the close errors instead of stepping
        // the removed simulator.
        let late = server.coalesced_step(id, &slot, 1, 0);
        assert!(late.is_error(), "post-close Step must fail, got {late:?}");
    }

    #[test]
    fn remote_emulated_mode_sleeps_per_request() {
        let server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::RemoteEmulated { service_time_us: 2_000 },
            compress_responses: false,
            worker_threads: 1,
            idle_session_ttl_seconds: None,
        });
        let id = create(&server);
        let start = std::time::Instant::now();
        for _ in 0..5 {
            server.handle(Request::Step { session: id, cycles: 1 });
        }
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "5 requests at 2ms emulated service time took {:?}",
            start.elapsed()
        );
    }

    use crate::checkpoint::CheckpointFault;
    use std::path::PathBuf;

    fn temp_state_dir() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rvsim-server-ckpt-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn server_with_checkpoints(dir: &std::path::Path, dirty_cycles: u64) -> SimulationServer {
        SimulationServer::with_checkpoints(
            DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: false,
                worker_threads: 1,
                idle_session_ttl_seconds: Some(3600),
            },
            CheckpointConfig { state_dir: dir.into(), interval: Duration::ZERO, dirty_cycles },
        )
        .expect("state dir opens")
    }

    #[test]
    fn eviction_spills_to_disk_and_the_session_restores_on_demand() {
        let dir = temp_state_dir();
        let server = server_with_checkpoints(&dir, 0);
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 7 });
        let raw_request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
        let before = server.handle_raw(&raw_request).to_vec();

        server.advance_clock(10_000);
        assert_eq!(server.evict_idle_older_than(Duration::ZERO), 1);
        assert_eq!(server.session_count(), 0, "the session left memory");
        assert_eq!(server.spilled_session_count(), 1);
        assert!(server.checkpoint_store().unwrap().contains(id), "…but not the disk");

        // Next touch restores it transparently, byte-identically.
        let after = server.handle_raw(&raw_request).to_vec();
        assert_eq!(before, after, "restored session must serve identical state bytes");
        assert_eq!(server.session_count(), 1);
        assert_eq!(server.restored_session_count(), 1);
        // And a spilled session still shows up in the session listing.
        server.advance_clock(10_000);
        server.evict_idle_older_than(Duration::ZERO);
        match server.handle(Request::ListSessions) {
            Response::SessionList { sessions } => assert_eq!(sessions, vec![id]),
            other => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn destroy_removes_the_checkpoint_too() {
        let dir = temp_state_dir();
        let server = server_with_checkpoints(&dir, 0);
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 3 });
        assert!(server.checkpoint_dirty_sessions() >= 1);
        assert!(server.checkpoint_store().unwrap().contains(id));
        assert_eq!(server.handle(Request::DestroySession { session: id }), Response::Destroyed);
        assert!(!server.checkpoint_store().unwrap().contains(id), "destroy must not resurrect");
        assert!(server.handle(Request::Step { session: id, cycles: 1 }).is_error());
        // Destroying a session that only exists on disk also works.
        let spilled = create(&server);
        server.advance_clock(10_000);
        assert_eq!(server.evict_idle_older_than(Duration::ZERO), 1);
        assert_eq!(
            server.handle(Request::DestroySession { session: spilled }),
            Response::Destroyed
        );
        assert!(server.handle(Request::GetState { session: spilled }).is_error());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_recovery_reowns_checkpointed_sessions() {
        let dir = temp_state_dir();
        let first = server_with_checkpoints(&dir, 0);
        let a = create(&first);
        let b = create(&first);
        first.handle(Request::Step { session: a, cycles: 5 });
        first.handle(Request::Step { session: b, cycles: 9 });
        assert_eq!(first.checkpoint_dirty_sessions(), 2);
        drop(first); // the crash

        let second = server_with_checkpoints(&dir, 0);
        let (recovered, failures) = second.recover_checkpoints();
        assert_eq!(recovered, 2);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(second.session_count(), 2);
        assert_eq!(
            second.handle(Request::Step { session: a, cycles: 1 }),
            Response::Stepped { cycle: 6, halted: false }
        );
        assert_eq!(
            second.handle(Request::Step { session: b, cycles: 1 }),
            Response::Stepped { cycle: 10, halted: false }
        );
        // Fresh creates on the recovered server never collide with
        // recovered ids.
        let fresh = create(&second);
        assert!(fresh > b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_cycle_threshold_checkpoints_mid_interval() {
        // A loop far longer than the test's cycle budget: the simulator
        // must never halt, so every Step/Run advances the full request.
        const LONG_PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 1000000
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";
        let dir = temp_state_dir();
        let server = server_with_checkpoints(&dir, 10);
        let id = create_with(&server, LONG_PROGRAM);
        let store = server.checkpoint_store().unwrap();
        let installed = store.write_count();
        // 9 cycles past the install checkpoint: under the threshold.
        server.handle(Request::Step { session: id, cycles: 9 });
        assert_eq!(store.write_count(), installed);
        // The 10th crosses it — the request itself writes the checkpoint.
        server.handle(Request::Step { session: id, cycles: 1 });
        assert_eq!(store.write_count(), installed + 1);
        assert_eq!(store.load(id).unwrap().0.cycle, 10);
        // Run advances through with_session and checkpoints the same way.
        server.handle(Request::Run { session: id, max_cycles: 25 });
        assert_eq!(store.write_count(), installed + 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_spill_keeps_the_session_resident() {
        let dir = temp_state_dir();
        let server = server_with_checkpoints(&dir, 0);
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 4 });
        server.checkpoint_store().unwrap().inject_fault(CheckpointFault::NoSpace, 1);
        server.advance_clock(10_000);
        assert_eq!(
            server.evict_idle_older_than(Duration::ZERO),
            0,
            "a session whose spill failed must stay resident"
        );
        assert_eq!(server.session_count(), 1);
        assert!(!server.handle(Request::Step { session: id, cycles: 1 }).is_error());
        // With the fault disarmed, the next sweep spills it normally.
        server.advance_clock(10_000);
        assert_eq!(server.evict_idle_older_than(Duration::ZERO), 1);
        assert_eq!(server.session_count(), 0);
        assert!(server.checkpoint_store().unwrap().contains(id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_sessions_reports_live_restored_and_missing() {
        let dir = temp_state_dir();
        let server = server_with_checkpoints(&dir, 0);
        let live = create(&server);
        server.handle(Request::Step { session: live, cycles: 2 });
        let spilled = create(&server);
        server.handle(Request::Step { session: spilled, cycles: 6 });
        server.advance_clock(10_000);
        server.handle(Request::Step { session: live, cycles: 1 }); // re-touch
        assert_eq!(server.evict_idle_older_than(Duration::from_secs(5)), 1);

        let outcomes = server.recover_sessions(&[live, spilled, 424242]);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].ok && outcomes[0].already_live);
        assert_eq!(outcomes[0].cycle, 3);
        assert!(outcomes[1].ok && !outcomes[1].already_live);
        assert_eq!(outcomes[1].cycle, 6);
        assert!(!outcomes[2].ok);
        assert!(outcomes[2].error.as_deref().unwrap().contains("no checkpoint"));
        assert_eq!(server.session_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_tick_respects_the_interval() {
        let dir = temp_state_dir();
        let server = SimulationServer::with_checkpoints(
            DeploymentConfig::default(),
            CheckpointConfig {
                state_dir: dir.clone(),
                interval: Duration::from_secs(3600),
                dirty_cycles: 0,
            },
        )
        .unwrap();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 2 });
        assert_eq!(server.checkpoint_tick(), 0, "inside the first interval: no sweep");
        server.advance_clock(3600 * 1000 + 1);
        assert_eq!(server.checkpoint_tick(), 1, "past the interval: the sweep runs");
        server.handle(Request::Step { session: id, cycles: 2 });
        assert_eq!(server.checkpoint_tick(), 0, "gate re-arms after a sweep");
        server.advance_clock(3600 * 1000 + 1);
        assert_eq!(server.checkpoint_tick(), 1);
        assert_eq!(server.checkpoint_store().unwrap().load(id).unwrap().0.cycle, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_ids_spread_across_shards() {
        let mut used = std::collections::HashSet::new();
        for id in 1..=64u64 {
            used.insert(shard_index(id));
        }
        assert!(used.len() > SESSION_SHARDS / 2, "ids clump into {} shards", used.len());
        assert!(used.iter().all(|&s| s < SESSION_SHARDS));
    }
}
