//! Session management and request dispatch.

use crate::protocol::{Request, Response};
use parking_lot::Mutex;
use rvsim_asm::filter_assembly;
use rvsim_cc::OptLevel;
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the server emulates its deployment (§IV-A, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentMode {
    /// Direct execution (the paper's "Direct" rows).
    Direct,
    /// Containerized execution: every request pays an extra fixed CPU cost
    /// that stands in for the container's network/namespace overhead
    /// (the paper's "Docker" rows).
    Containerized {
        /// Extra per-request overhead in microseconds of busy work.
        request_overhead_us: u64,
    },
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentConfig {
    /// Deployment mode.
    pub mode: DeploymentMode,
    /// Compress response payloads (the gzip substitute).
    pub compress_responses: bool,
    /// Number of worker threads in the threaded front end.
    pub worker_threads: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 4,
        }
    }
}

struct Session {
    simulator: Simulator,
}

/// The simulation server: a set of sessions plus request dispatch.
///
/// The server is cheap to share (`Arc<SimulationServer>`); each session is
/// individually locked so concurrent users do not serialize on one another.
pub struct SimulationServer {
    config: DeploymentConfig,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
}

impl SimulationServer {
    /// Create a server.
    pub fn new(config: DeploymentConfig) -> Self {
        SimulationServer {
            config,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }

    /// Server with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(DeploymentConfig::default())
    }

    /// The deployment configuration.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    fn session(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions.lock().get(&id).cloned()
    }

    /// Handle one decoded request.
    pub fn handle(&self, request: Request) -> Response {
        self.apply_deployment_overhead();
        match request {
            Request::CreateSession { program, architecture, entry } => {
                let config = architecture.unwrap_or_default();
                self.create_session(&program, &config, entry.as_deref())
            }
            Request::Compile { source, optimization } => {
                let opt = match optimization {
                    0 => OptLevel::O0,
                    1 => OptLevel::O1,
                    2 => OptLevel::O2,
                    _ => OptLevel::O3,
                };
                match rvsim_cc::compile(&source, opt) {
                    Ok(output) => Response::Compiled {
                        assembly: filter_assembly(&output.assembly),
                        line_map: output.line_map,
                    },
                    Err(errors) => Response::error(
                        errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n"),
                    ),
                }
            }
            Request::Step { session, cycles } => self.with_session(session, |sim| {
                for _ in 0..cycles {
                    sim.step();
                }
                Response::Stepped { cycle: sim.cycle(), halted: sim.is_halted() }
            }),
            Request::StepBack { session, cycles } => self.with_session(session, |sim| {
                for _ in 0..cycles {
                    sim.step_back();
                }
                Response::Stepped { cycle: sim.cycle(), halted: sim.is_halted() }
            }),
            Request::Run { session, max_cycles } => {
                self.with_session(session, |sim| match sim.run(max_cycles) {
                    Ok(result) => {
                        Response::Stepped { cycle: result.cycles, halted: sim.is_halted() }
                    }
                    Err(e) => Response::error(e),
                })
            }
            Request::GetState { session } => self.with_session(session, |sim| {
                Response::State(Box::new(ProcessorSnapshot::capture(sim)))
            }),
            Request::GetStats { session } => {
                self.with_session(session, |sim| Response::Stats(Box::new(sim.statistics())))
            }
            Request::DestroySession { session } => {
                if self.sessions.lock().remove(&session).is_some() {
                    Response::Destroyed
                } else {
                    Response::error(format!("unknown session {session}"))
                }
            }
        }
    }

    fn create_session(
        &self,
        program: &str,
        config: &ArchitectureConfig,
        _entry: Option<&str>,
    ) -> Response {
        match Simulator::from_assembly(program, config) {
            Ok(simulator) => {
                let id = self.next_session.fetch_add(1, Ordering::Relaxed);
                self.sessions.lock().insert(id, Arc::new(Mutex::new(Session { simulator })));
                Response::SessionCreated { session: id }
            }
            Err(e) => Response::error(e),
        }
    }

    fn with_session(&self, id: u64, f: impl FnOnce(&mut Simulator) -> Response) -> Response {
        match self.session(id) {
            Some(session) => {
                let mut guard = session.lock();
                f(&mut guard.simulator)
            }
            None => Response::error(format!("unknown session {id}")),
        }
    }

    /// Encode a response: JSON, optionally compressed.  The first byte of the
    /// payload is a flag: 0 = plain JSON, 1 = LZSS-compressed JSON.
    pub fn encode_response(&self, response: &Response) -> Vec<u8> {
        let json = serde_json::to_vec(response).expect("responses serialize");
        if self.config.compress_responses {
            let compressed = rvsim_compress::compress(&json);
            let mut out = Vec::with_capacity(compressed.len() + 1);
            out.push(1u8);
            out.extend_from_slice(&compressed);
            out
        } else {
            let mut out = Vec::with_capacity(json.len() + 1);
            out.push(0u8);
            out.extend_from_slice(&json);
            out
        }
    }

    /// Decode a payload produced by [`SimulationServer::encode_response`].
    pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
        if payload.is_empty() {
            return Err("empty response payload".to_string());
        }
        let json = match payload[0] {
            0 => payload[1..].to_vec(),
            1 => rvsim_compress::decompress(&payload[1..]).map_err(|e| e.to_string())?,
            other => return Err(format!("unknown payload flag {other}")),
        };
        serde_json::from_slice(&json).map_err(|e| e.to_string())
    }

    /// Handle a raw JSON request payload and produce an encoded response —
    /// the full per-request work the paper's performance evaluation measures
    /// (decode, simulate, encode, compress).
    pub fn handle_raw(&self, request_json: &[u8]) -> Vec<u8> {
        let response = match serde_json::from_slice::<Request>(request_json) {
            Ok(request) => self.handle(request),
            Err(e) => Response::error(format!("malformed request: {e}")),
        };
        self.encode_response(&response)
    }

    fn apply_deployment_overhead(&self) {
        if let DeploymentMode::Containerized { request_overhead_us } = self.config.mode {
            // Busy-wait so the overhead consumes CPU like the real proxying /
            // namespace translation does, rather than merely sleeping.
            let start = std::time::Instant::now();
            while start.elapsed().as_micros() < request_overhead_us as u128 {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 20
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

    fn server() -> SimulationServer {
        SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: false,
            worker_threads: 1,
        })
    }

    fn create(server: &SimulationServer) -> u64 {
        match server.handle(Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
        }) {
            Response::SessionCreated { session } => session,
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn session_lifecycle() {
        let server = server();
        let id = create(&server);
        assert_eq!(server.session_count(), 1);
        let r = server.handle(Request::Step { session: id, cycles: 5 });
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
        let r = server.handle(Request::Run { session: id, max_cycles: 100_000 });
        match r {
            Response::Stepped { halted, .. } => assert!(halted),
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::GetStats { session: id }) {
            Response::Stats(stats) => {
                assert!(stats.committed > 20);
                assert!(stats.ipc() > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.handle(Request::DestroySession { session: id }), Response::Destroyed);
        assert_eq!(server.session_count(), 0);
        assert!(server.handle(Request::Step { session: id, cycles: 1 }).is_error());
    }

    #[test]
    fn state_snapshot_and_step_back() {
        let server = server();
        let id = create(&server);
        server.handle(Request::Step { session: id, cycles: 10 });
        let r = server.handle(Request::GetState { session: id });
        match r {
            Response::State(snapshot) => {
                assert_eq!(snapshot.cycle, 10);
                assert_eq!(snapshot.int_registers.len(), 32);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = server.handle(Request::StepBack { session: id, cycles: 3 });
        assert_eq!(r, Response::Stepped { cycle: 7, halted: false });
    }

    #[test]
    fn create_session_with_bad_program_reports_error() {
        let server = server();
        let r = server.handle(Request::CreateSession {
            program: "main:\n  bogus a0, a1\n".into(),
            architecture: None,
            entry: None,
        });
        assert!(r.is_error());
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn compile_request_round_trips_through_assembler() {
        let server = server();
        let r = server.handle(Request::Compile {
            source: "int main(void) { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }"
                .into(),
            optimization: 2,
        });
        match r {
            Response::Compiled { assembly, line_map } => {
                assert!(assembly.contains("main:"));
                assert!(!line_map.is_empty());
                // The compiled assembly must itself create a valid session.
                let r2 = server.handle(Request::CreateSession {
                    program: assembly,
                    architecture: None,
                    entry: None,
                });
                assert!(matches!(r2, Response::SessionCreated { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = server.handle(Request::Compile {
            source: "int main(void) { return 1 + ; }".into(),
            optimization: 0,
        });
        assert!(r.is_error());
    }

    #[test]
    fn raw_payload_round_trip_with_and_without_compression() {
        for compress in [false, true] {
            let server = SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: compress,
                worker_threads: 1,
            });
            let id = create(&server);
            let request = serde_json::to_vec(&Request::GetState { session: id }).unwrap();
            let payload = server.handle_raw(&request);
            assert_eq!(payload[0], compress as u8);
            let response = SimulationServer::decode_response(&payload).unwrap();
            assert!(matches!(response, Response::State(_)));
        }
    }

    #[test]
    fn malformed_raw_request_is_an_error_response() {
        let server = server();
        let payload = server.handle_raw(b"{not json");
        let response = SimulationServer::decode_response(&payload).unwrap();
        assert!(response.is_error());
        assert!(SimulationServer::decode_response(&[]).is_err());
        assert!(SimulationServer::decode_response(&[9, 1, 2]).is_err());
    }

    #[test]
    fn containerized_mode_is_slower_per_request() {
        let direct = server();
        let container = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Containerized { request_overhead_us: 200 },
            compress_responses: false,
            worker_threads: 1,
        });
        let id_d = create(&direct);
        let id_c = create(&container);
        let time = |s: &SimulationServer, id: u64| {
            let start = std::time::Instant::now();
            for _ in 0..20 {
                s.handle(Request::Step { session: id, cycles: 1 });
            }
            start.elapsed()
        };
        let t_direct = time(&direct, id_d);
        let t_container = time(&container, id_c);
        assert!(
            t_container > t_direct,
            "containerized ({t_container:?}) must be slower than direct ({t_direct:?})"
        );
    }

    #[test]
    fn compression_shrinks_state_payloads() {
        let compressed_server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 1,
        });
        let plain_server = server();
        let id_c = create(&compressed_server);
        let id_p = create(&plain_server);
        compressed_server.handle(Request::Step { session: id_c, cycles: 5 });
        plain_server.handle(Request::Step { session: id_p, cycles: 5 });
        let req_c = serde_json::to_vec(&Request::GetState { session: id_c }).unwrap();
        let req_p = serde_json::to_vec(&Request::GetState { session: id_p }).unwrap();
        let compressed = compressed_server.handle_raw(&req_c);
        let plain = plain_server.handle_raw(&req_p);
        assert!(
            compressed.len() < plain.len() / 2,
            "state snapshot should compress to less than half ({} vs {})",
            compressed.len(),
            plain.len()
        );
    }
}
