//! # rvsim-server — the simulation server
//!
//! The paper's deployment is a client/server application: all simulation
//! logic runs server-side, and both the web GUI and the CLI talk to it
//! through a JSON API (§III).  This crate reproduces that architecture as an
//! in-process server:
//!
//! * [`protocol`] — the JSON request/response protocol (create session, step,
//!   step back, run, fetch the processor snapshot, fetch statistics, compile
//!   C code, destroy session).
//! * [`SimulationServer`] — session management and request dispatch; every
//!   session owns a [`rvsim_core::Simulator`].
//! * [`ThreadedServer`] / [`ServerClient`] — a worker-pool front end that
//!   serializes/deserializes payloads, optionally compresses responses
//!   (the gzip substitute) and optionally emulates the containerized
//!   deployment overhead measured in Table I.
//!
//! The HTTP/NGINX/Docker layers of the original are replaced by in-process
//! channels; what is preserved is the work per request (JSON encode/decode,
//! snapshot construction, compression) and the queueing behaviour under
//! concurrent load — the quantities the paper's evaluation reports.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod envelope;
pub mod protocol;
pub mod server;
pub mod threaded;

pub use checkpoint::{
    CheckpointConfig, CheckpointEntry, CheckpointFault, CheckpointStore, RecoverOutcome,
};
pub use envelope::{SessionEnvelope, ENVELOPE_VERSION};
pub use protocol::{Request, Response};
pub use server::{DeploymentConfig, DeploymentMode, SimulationServer};
pub use threaded::{ServerClient, ThreadedServer};
