//! Worker-pool front end: the Rust stand-in for the Undertow HTTP server.
//!
//! Requests are JSON payloads submitted over a channel and handled by a fixed
//! pool of worker threads.  Under light load a request is picked up almost
//! immediately; under heavy load requests queue, which is exactly the
//! behaviour Table I measures when going from 30 to 100 concurrent users.

use crate::protocol::{Request, Response};
use crate::server::SimulationServer;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

struct Job {
    payload: Vec<u8>,
    /// Replies carry the server's shared payload handle — a cached
    /// `GetState` flows from the serve cache to the client without a copy.
    reply: Sender<Bytes>,
}

/// What flows to the workers: a job, or an order to exit.  The explicit
/// sentinel (rather than channel disconnect) lets `shutdown` terminate the
/// pool even while clients still hold `Sender` clones.
enum WorkerMsg {
    Job(Job),
    Shutdown,
}

/// A running worker pool around a [`SimulationServer`].
pub struct ThreadedServer {
    server: Arc<SimulationServer>,
    tx: Option<Sender<WorkerMsg>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadedServer {
    /// Start `worker_threads` workers (taken from the server's configuration).
    pub fn start(server: SimulationServer) -> Self {
        let workers = server.config().worker_threads.max(1);
        let server = Arc::new(server);
        let (tx, rx) = unbounded::<WorkerMsg>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = rx.clone();
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                while let Ok(WorkerMsg::Job(job)) = rx.recv() {
                    let response = server.handle_raw(&job.payload);
                    // The client may have given up (timeout); ignore send errors.
                    let _ = job.reply.send(response);
                }
            }));
        }
        drop(rx); // workers hold the only receiver clones
        ThreadedServer { server, tx: Some(tx), workers: handles }
    }

    /// A cheap handle clients use to submit requests.
    pub fn client(&self) -> ServerClient {
        ServerClient { tx: self.tx.clone().expect("server is running") }
    }

    /// Access to the underlying server (e.g. for session counting in tests).
    pub fn server(&self) -> &SimulationServer {
        &self.server
    }

    /// Stop the workers and wait for them to exit.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        if let Some(tx) = self.tx.take() {
            // One sentinel per worker; each worker exits after consuming one.
            for _ in 0..self.workers.len() {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // When the last worker exits, its receiver clone disconnects the
        // channel: jobs that raced in behind the sentinels are discarded
        // (failing their clients with "server dropped the request") and
        // later sends fail fast.  Atomic with the queue — no stranded jobs.
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Client handle: encodes requests, submits them to the pool and decodes the
/// (possibly compressed) responses.
#[derive(Clone)]
pub struct ServerClient {
    tx: Sender<WorkerMsg>,
}

impl ServerClient {
    /// Send `request` and wait for the response.
    pub fn call(&self, request: &Request) -> Result<Response, String> {
        let payload = serde_json::to_vec(request).map_err(|e| e.to_string())?;
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(WorkerMsg::Job(Job { payload, reply: reply_tx }))
            .map_err(|_| "server is shut down".to_string())?;
        let raw = reply_rx.recv().map_err(|_| "server dropped the request".to_string())?;
        SimulationServer::decode_response(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DeploymentConfig, DeploymentMode};

    const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 50
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

    fn start(workers: usize) -> ThreadedServer {
        ThreadedServer::start(SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: workers,
            idle_session_ttl_seconds: None,
        }))
    }

    #[test]
    fn client_round_trip() {
        let server = start(2);
        let client = server.client();
        let r = client
            .call(&Request::CreateSession {
                program: PROGRAM.into(),
                architecture: None,
                entry: None,
                session: None,
            })
            .unwrap();
        let session = match r {
            Response::SessionCreated { session } => session,
            other => panic!("unexpected {other:?}"),
        };
        let r = client.call(&Request::Step { session, cycles: 4 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 4, halted: false });
        let r = client.call(&Request::GetState { session }).unwrap();
        assert!(matches!(r, Response::State(_)));
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_independent_sessions() {
        let server = start(4);
        let mut threads = Vec::new();
        for _ in 0..8 {
            let client = server.client();
            threads.push(std::thread::spawn(move || {
                let r = client
                    .call(&Request::CreateSession {
                        program: PROGRAM.into(),
                        architecture: None,
                        entry: None,
                        session: None,
                    })
                    .unwrap();
                let session = match r {
                    Response::SessionCreated { session } => session,
                    other => panic!("unexpected {other:?}"),
                };
                for _ in 0..10 {
                    let r = client.call(&Request::Step { session, cycles: 1 }).unwrap();
                    assert!(matches!(r, Response::Stepped { .. }));
                }
                session
            }));
        }
        let mut ids: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every client must get its own session");
        assert_eq!(server.server().session_count(), 8);
        server.shutdown();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let server = start(1);
        let client = server.client();
        server.shutdown();
        let r = client.call(&Request::GetStats { session: 1 });
        assert!(r.is_err());
    }
}
