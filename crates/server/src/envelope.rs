//! Portable session envelopes for serialize/restore and live migration.
//!
//! A [`SessionEnvelope`] captures everything needed to rebuild a session on
//! another process: the architecture configuration, the assembly program,
//! the cycle the session had reached, and the full architectural snapshot
//! at that cycle.  Restore is *replay-based*: the simulator is rebuilt from
//! the program and stepped forward to the captured cycle, then the rebuilt
//! state is compared against the envelope's snapshot.  The simulator is
//! deterministic, so a matching snapshot proves the restored session will
//! retire byte-identically to the original from that point on — the same
//! equivalence argument the ISS cosim spine uses.

use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator};
use serde::{Deserialize, Serialize};

/// Envelope format version understood by this build.
pub const ENVELOPE_VERSION: u32 = 1;

/// Magic prefix of the binary framing (`to_bytes`/`from_bytes`).
const ENVELOPE_MAGIC: &[u8; 4] = b"RVSE";

/// A serialized session: everything needed to rebuild it elsewhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEnvelope {
    /// Format version ([`ENVELOPE_VERSION`]).
    pub version: u32,
    /// The session id the envelope was captured under (restore reinstalls
    /// under the same id so clients keep their handle across migration).
    pub session: u64,
    /// Architecture the simulator runs.
    pub architecture: ArchitectureConfig,
    /// Assembly source the simulator was built from.
    pub program: String,
    /// Cycle the session had reached at capture.
    pub cycle: u64,
    /// Full architectural snapshot at `cycle`, used to verify the replayed
    /// restore reproduced the exact state.
    pub state: Box<ProcessorSnapshot>,
}

impl SessionEnvelope {
    /// Binary framing: `RVSE` magic, little-endian `u32` version, then the
    /// JSON body.  The magic + version live outside the JSON so a reader
    /// can reject a foreign or future envelope without parsing it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = serde_json::to_vec(self).expect("envelope serialization cannot fail");
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(ENVELOPE_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse the binary framing produced by [`SessionEnvelope::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 8 || &bytes[..4] != ENVELOPE_MAGIC {
            return Err("not a session envelope (missing RVSE magic)".to_string());
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("length checked"));
        if version != ENVELOPE_VERSION {
            return Err(format!(
                "unsupported envelope version {version} (this build understands {ENVELOPE_VERSION})"
            ));
        }
        let envelope: SessionEnvelope = serde_json::from_slice(&bytes[8..])
            .map_err(|e| format!("malformed envelope body: {e}"))?;
        if envelope.version != version {
            return Err(format!(
                "envelope header says version {version} but body says {}",
                envelope.version
            ));
        }
        Ok(envelope)
    }

    /// Capture a live simulator into an envelope.
    pub fn capture(session: u64, simulator: &Simulator, program: &str) -> Self {
        SessionEnvelope {
            version: ENVELOPE_VERSION,
            session,
            architecture: simulator.config().clone(),
            program: program.to_string(),
            cycle: simulator.cycle(),
            state: Box::new(ProcessorSnapshot::capture(simulator)),
        }
    }

    /// Rebuild the simulator by replaying the program to the captured
    /// cycle, then verify the rebuilt architectural state matches the
    /// envelope's snapshot exactly.  A mismatch means the envelope does not
    /// describe a state this build can reproduce (corrupt envelope or
    /// incompatible simulator) and the restore is refused.
    pub fn replay(&self) -> Result<Simulator, String> {
        if self.version != ENVELOPE_VERSION {
            return Err(format!(
                "unsupported envelope version {} (this build understands {ENVELOPE_VERSION})",
                self.version
            ));
        }
        let mut simulator = Simulator::from_assembly(&self.program, &self.architecture)
            .map_err(|e| format!("envelope program does not assemble: {e}"))?;
        while simulator.cycle() < self.cycle {
            let before = simulator.cycle();
            simulator.step();
            if simulator.cycle() == before {
                return Err(format!(
                    "replay stalled at cycle {before} before reaching envelope cycle {}",
                    self.cycle
                ));
            }
        }
        let rebuilt = ProcessorSnapshot::capture(&simulator);
        if rebuilt != *self.state {
            return Err(format!(
                "restored state diverges from the envelope at cycle {}",
                self.cycle
            ));
        }
        Ok(simulator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_core::ArchitectureConfig;

    const PROGRAM: &str = "
main:
    li   t0, 12
    li   t1, 0
loop:
    add  t1, t1, t0
    addi t0, t0, -1
    bne  t0, zero, loop
    mv   a0, t1
    ret
";

    #[test]
    fn envelope_round_trips_through_bytes() {
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        for _ in 0..7 {
            sim.step();
        }
        let envelope = SessionEnvelope::capture(9, &sim, PROGRAM);
        let bytes = envelope.to_bytes();
        let back = SessionEnvelope::from_bytes(&bytes).unwrap();
        assert_eq!(back, envelope);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn replay_reproduces_the_captured_state() {
        let config = ArchitectureConfig::wide();
        let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        for _ in 0..11 {
            sim.step();
        }
        let envelope = SessionEnvelope::capture(1, &sim, PROGRAM);
        let restored = envelope.replay().unwrap();
        assert_eq!(restored.cycle(), sim.cycle());
        assert_eq!(ProcessorSnapshot::capture(&restored), ProcessorSnapshot::capture(&sim));
    }

    #[test]
    fn replay_runs_past_halt_correctly() {
        let config = ArchitectureConfig::scalar();
        let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        sim.run(100_000).unwrap();
        assert!(sim.is_halted());
        let envelope = SessionEnvelope::capture(2, &sim, PROGRAM);
        let restored = envelope.replay().unwrap();
        assert!(restored.is_halted());
        assert_eq!(restored.cycle(), sim.cycle());
    }

    #[test]
    fn foreign_magic_and_versions_are_rejected() {
        assert!(SessionEnvelope::from_bytes(b"????0000{}").is_err());
        assert!(SessionEnvelope::from_bytes(b"RVSE").is_err());

        let config = ArchitectureConfig::default();
        let sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        let mut envelope = SessionEnvelope::capture(3, &sim, PROGRAM);
        envelope.version = 99;
        assert!(SessionEnvelope::from_bytes(&envelope.to_bytes()).is_err());
        assert!(envelope.replay().is_err());
    }

    #[test]
    fn tampered_state_is_refused_by_replay() {
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        for _ in 0..5 {
            sim.step();
        }
        let mut envelope = SessionEnvelope::capture(4, &sim, PROGRAM);
        envelope.cycle += 1; // snapshot no longer matches the claimed cycle
        let err = envelope.replay().unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }
}
