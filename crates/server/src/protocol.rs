//! JSON request/response protocol between clients (web GUI, CLI, load
//! generator) and the simulation server.

use crate::envelope::SessionEnvelope;
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, SimulationStatistics, SnapshotDelta};
use serde::{Deserialize, Serialize};

/// A client request.
///
/// `CreateSession` carries an inline `ArchitectureConfig`; requests are
/// short-lived and never stored in bulk, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// Create a simulation session from assembly source and an architecture.
    CreateSession {
        /// RISC-V assembly program.
        program: String,
        /// Architecture configuration (defaults when omitted).
        #[serde(default)]
        architecture: Option<ArchitectureConfig>,
        /// Optional entry label.
        #[serde(default)]
        entry: Option<String>,
        /// Explicit session id to install the session under (router
        /// placement and restore flows).  Errors if the id is taken; the
        /// server assigns one when omitted.
        #[serde(default)]
        session: Option<u64>,
    },
    /// Compile C source to assembly.
    Compile {
        /// C source code.
        source: String,
        /// Optimization level 0–3.
        #[serde(default)]
        optimization: u8,
    },
    /// Advance a session by `cycles` clock cycles.
    Step {
        /// Session id.
        session: u64,
        /// Number of cycles (default 1).
        #[serde(default = "default_one")]
        cycles: u64,
    },
    /// Step a session backwards by `cycles` clock cycles.
    StepBack {
        /// Session id.
        session: u64,
        /// Number of cycles (default 1).
        #[serde(default = "default_one")]
        cycles: u64,
    },
    /// Run a session until it halts or `max_cycles` elapse.
    Run {
        /// Session id.
        session: u64,
        /// Cycle budget.
        #[serde(default = "default_budget")]
        max_cycles: u64,
    },
    /// Fetch the full processor-state snapshot (the GUI view).
    GetState {
        /// Session id.
        session: u64,
    },
    /// Fetch the state as a delta against the snapshot the client already
    /// holds.  Answered with [`Response::StateDelta`] when the server still
    /// has the matching base (the state a previous `GetStateDelta` served
    /// for this session at `since_cycle`), and with a full
    /// [`Response::State`] otherwise — so the first delta request of a
    /// session always receives the full snapshot that seeds the base.
    GetStateDelta {
        /// Session id.
        session: u64,
        /// Cycle of the snapshot the client holds.
        since_cycle: u64,
    },
    /// Fetch the runtime statistics.
    GetStats {
        /// Session id.
        session: u64,
    },
    /// Destroy a session.
    DestroySession {
        /// Session id.
        session: u64,
    },
    /// Capture a session as a portable [`SessionEnvelope`] (config +
    /// program + architectural state), optionally destroying it in the same
    /// critical section — the atomic "serialize and vacate" a live
    /// migration needs.
    SerializeSession {
        /// Session id.
        session: u64,
        /// Remove the session while still holding its lock, so no request
        /// can slip in between the capture and the removal.
        #[serde(default)]
        destroy: bool,
    },
    /// Install a session from a [`SessionEnvelope`] under the envelope's
    /// original id.  The restore replays the program to the captured cycle
    /// and verifies the rebuilt state matches the envelope byte-for-byte.
    RestoreSession {
        /// The serialized session.
        envelope: Box<SessionEnvelope>,
        /// Replace an existing session under the same id (bumps its serve
        /// epoch) instead of failing.
        #[serde(default)]
        replace: bool,
    },
    /// List the ids of all live sessions (drain enumeration).
    ListSessions,
}

fn default_one() -> u64 {
    1
}

fn default_budget() -> u64 {
    1_000_000
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// Session created.
    SessionCreated {
        /// New session id.
        session: u64,
    },
    /// Compilation result.
    Compiled {
        /// Generated (filtered) assembly.
        assembly: String,
        /// C line → assembly line links.
        line_map: Vec<(usize, usize)>,
    },
    /// A step / step-back / run finished.
    Stepped {
        /// Current cycle after the operation.
        cycle: u64,
        /// Whether the simulation has halted.
        halted: bool,
    },
    /// Processor snapshot.
    State(Box<ProcessorSnapshot>),
    /// Incremental snapshot: only what changed since the client's base cycle.
    StateDelta(Box<SnapshotDelta>),
    /// Runtime statistics.
    Stats(Box<SimulationStatistics>),
    /// Session destroyed.
    Destroyed,
    /// A serialized session ([`Request::SerializeSession`]).
    Serialized(Box<SessionEnvelope>),
    /// Live session ids ([`Request::ListSessions`]).
    SessionList {
        /// Session ids, ascending.
        sessions: Vec<u64>,
    },
    /// The request failed.
    Error {
        /// Human-readable error message.
        message: String,
    },
}

impl Response {
    /// Build an error response.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error { message: message.into() }
    }

    /// True for error responses.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_round_trip() {
        let requests = vec![
            Request::CreateSession {
                program: "main: ret".into(),
                architecture: None,
                entry: None,
                session: None,
            },
            Request::CreateSession {
                program: "main: ret".into(),
                architecture: None,
                entry: None,
                session: Some(42),
            },
            Request::Compile { source: "int main(void){return 0;}".into(), optimization: 2 },
            Request::Step { session: 3, cycles: 10 },
            Request::StepBack { session: 3, cycles: 1 },
            Request::Run { session: 3, max_cycles: 500 },
            Request::GetState { session: 3 },
            Request::GetStateDelta { session: 3, since_cycle: 17 },
            Request::GetStats { session: 3 },
            Request::DestroySession { session: 3 },
            Request::SerializeSession { session: 3, destroy: true },
            Request::ListSessions,
        ];
        for r in requests {
            let json = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn request_json_uses_type_tags_and_defaults() {
        let r: Request = serde_json::from_str(r#"{"type":"step","session":1}"#).unwrap();
        assert_eq!(r, Request::Step { session: 1, cycles: 1 });
        let r: Request =
            serde_json::from_str(r#"{"type":"create_session","program":"main: ret"}"#).unwrap();
        assert!(matches!(r, Request::CreateSession { .. }));
        let r: Request = serde_json::from_str(r#"{"type":"run","session":2}"#).unwrap();
        assert_eq!(r, Request::Run { session: 2, max_cycles: 1_000_000 });
        // Pre-scale-out clients omit the new optional fields.
        let r: Request =
            serde_json::from_str(r#"{"type":"serialize_session","session":7}"#).unwrap();
        assert_eq!(r, Request::SerializeSession { session: 7, destroy: false });
    }

    #[test]
    fn response_helpers() {
        let e = Response::error("boom");
        assert!(e.is_error());
        let ok = Response::Destroyed;
        assert!(!ok.is_error());
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"error\""));
    }
}
