//! Durable session checkpoints: `RVSE` envelopes on disk.
//!
//! A [`CheckpointStore`] owns one state directory and persists sessions as
//! envelope files (`<session>.rvse`, the exact [`SessionEnvelope::to_bytes`]
//! framing — a checkpoint file *is* a portable envelope).  Writes are
//! atomic: the envelope is written to `<session>.rvse.tmp` and renamed over
//! the final name, so a crash mid-write can only ever leave the previous
//! checkpoint behind, never a torn one.  Restores go through
//! [`SessionEnvelope::replay`], which refuses state it cannot reproduce
//! byte-exactly — a corrupt or foreign checkpoint surfaces as an error, not
//! as silently wrong simulation state.
//!
//! Backends that share a state directory can also read *each other's*
//! checkpoints, which is what the router tier's failover recovery leans on:
//! when a backend dies, the surviving ring owners re-own its sessions from
//! their last checkpoints (restore-on-demand or an explicit
//! `/admin/recover`), with staleness bounded by the checkpoint interval.
//!
//! The store carries injectable fault points ([`CheckpointFault`]) so the
//! chaos suite can prove the failure behaviour deterministically: a torn
//! write must leave the previous checkpoint intact, a full disk must keep
//! the session resident instead of losing it, and a stale checkpoint must
//! bound — not corrupt — what a restore recovers.

use crate::envelope::SessionEnvelope;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// Default periodic checkpoint cadence (`serve --checkpoint-interval`).
pub const DEFAULT_CHECKPOINT_INTERVAL: Duration = Duration::from_secs(5);

/// Default dirty-cycle threshold: a session that advances this many cycles
/// past its last checkpoint is re-checkpointed by the request that crossed
/// the threshold, without waiting for the periodic tick.
pub const DEFAULT_DIRTY_CYCLES: u64 = 250_000;

/// File suffix of a finished checkpoint.
const CHECKPOINT_SUFFIX: &str = ".rvse";

/// File suffix of an in-flight atomic write.
const TEMP_SUFFIX: &str = ".rvse.tmp";

/// Checkpointing configuration ([`SimulationServer::with_checkpoints`]).
///
/// [`SimulationServer::with_checkpoints`]: crate::server::SimulationServer::with_checkpoints
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory the envelope files live in (created if missing).
    pub state_dir: PathBuf,
    /// Periodic checkpoint cadence, driven by the housekeeping tick.
    pub interval: Duration,
    /// Dirty-cycle threshold (0 disables mid-interval checkpoints).
    pub dirty_cycles: u64,
}

impl CheckpointConfig {
    /// Configuration with the default cadence and dirty threshold.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            state_dir: state_dir.into(),
            interval: DEFAULT_CHECKPOINT_INTERVAL,
            dirty_cycles: DEFAULT_DIRTY_CYCLES,
        }
    }
}

/// Injectable failure modes of the checkpoint write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFault {
    /// Write only half the envelope bytes to the temp file and skip the
    /// rename — the crash-mid-write scenario the atomic rename exists for.
    TornWrite,
    /// Fail the write as if the disk were full (`ENOSPC`).
    NoSpace,
    /// Report success without writing anything: the on-disk checkpoint
    /// silently stays one generation stale.
    StaleCheckpoint,
}

/// An armed fault: fire `remaining` times, then disarm.
struct FaultPlan {
    fault: CheckpointFault,
    remaining: u32,
}

/// One checkpointed session as seen by a directory scan.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CheckpointEntry {
    /// Session id the checkpoint file is named after.
    pub session: u64,
    /// Age of the checkpoint file (time since its last atomic rename).
    pub age_ms: u64,
}

/// Outcome of recovering one session from its checkpoint
/// ([`SimulationServer::recover_sessions`], the `/admin/recover` endpoint).
///
/// [`SimulationServer::recover_sessions`]: crate::server::SimulationServer::recover_sessions
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RecoverOutcome {
    /// Session id the recovery was asked for.
    pub session: u64,
    /// The session is live (already was, or was just restored).
    pub ok: bool,
    /// The session was already resident — nothing was restored.
    pub already_live: bool,
    /// Cycle the session is serving at.
    pub cycle: u64,
    /// Age of the checkpoint the restore replayed (0 when already live):
    /// the per-session staleness bound the failover report surfaces.
    pub staleness_ms: u64,
    /// Why the recovery failed, when it did.
    pub error: Option<String>,
}

/// A directory of durable session envelopes with atomic writes.
pub struct CheckpointStore {
    dir: PathBuf,
    fault: Mutex<Option<FaultPlan>>,
    writes: AtomicU64,
    write_failures: AtomicU64,
}

impl CheckpointStore {
    /// Open (creating if needed) the state directory at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            fault: Mutex::new(None),
            writes: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
        })
    }

    /// The state directory the store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, session: u64) -> PathBuf {
        self.dir.join(format!("{session}{CHECKPOINT_SUFFIX}"))
    }

    fn temp_path(&self, session: u64) -> PathBuf {
        self.dir.join(format!("{session}{TEMP_SUFFIX}"))
    }

    /// Arm `fault` to fire on the next `times` checkpoint writes.
    pub fn inject_fault(&self, fault: CheckpointFault, times: u32) {
        *self.fault.lock() = Some(FaultPlan { fault, remaining: times });
    }

    /// Take one armed fault shot, if any.
    fn take_fault(&self) -> Option<CheckpointFault> {
        let mut armed = self.fault.lock();
        let plan = armed.as_mut()?;
        let fault = plan.fault;
        plan.remaining -= 1;
        if plan.remaining == 0 {
            *armed = None;
        }
        Some(fault)
    }

    /// Persist `envelope` atomically: full bytes to the temp file, fsync-free
    /// rename over the final name.  The previous checkpoint stays readable
    /// until the rename, so no failure mode can lose it.
    pub fn save(&self, envelope: &SessionEnvelope) -> Result<(), String> {
        let bytes = envelope.to_bytes();
        let temp = self.temp_path(envelope.session);
        match self.take_fault() {
            Some(CheckpointFault::TornWrite) => {
                // Crash mid-write: half the bytes land in the temp file and
                // the rename never happens.  The previous checkpoint (if
                // any) is untouched.
                let _ = std::fs::write(&temp, &bytes[..bytes.len() / 2]);
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                return Err(format!(
                    "checkpoint write torn at {} bytes (injected)",
                    bytes.len() / 2
                ));
            }
            Some(CheckpointFault::NoSpace) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                return Err("checkpoint write failed: no space left on device (injected)".into());
            }
            Some(CheckpointFault::StaleCheckpoint) => {
                // Pretend success without writing: the on-disk state stays a
                // generation behind, which a later restore must tolerate
                // (bounded staleness, not corruption).
                return Ok(());
            }
            None => {}
        }
        std::fs::write(&temp, &bytes).map_err(|e| {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            format!("checkpoint write {}: {e}", temp.display())
        })?;
        std::fs::rename(&temp, self.path(envelope.session)).map_err(|e| {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            format!("checkpoint rename {}: {e}", temp.display())
        })?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Load the checkpoint of `session`, returning the envelope and the
    /// checkpoint's age (the staleness a restore from it inherits).
    pub fn load(&self, session: u64) -> Result<(SessionEnvelope, Duration), String> {
        let path = self.path(session);
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("no checkpoint for session {session}: {e}"))?;
        let envelope = SessionEnvelope::from_bytes(&bytes)
            .map_err(|e| format!("checkpoint {} unreadable: {e}", path.display()))?;
        if envelope.session != session {
            return Err(format!(
                "checkpoint {} claims session {} (file name says {session})",
                path.display(),
                envelope.session
            ));
        }
        Ok((envelope, file_age(&path)))
    }

    /// Age of `session`'s checkpoint file, if one exists.
    pub fn age_of(&self, session: u64) -> Option<Duration> {
        let path = self.path(session);
        path.exists().then(|| file_age(&path))
    }

    /// Whether a finished checkpoint exists for `session`.
    pub fn contains(&self, session: u64) -> bool {
        self.path(session).exists()
    }

    /// Delete `session`'s checkpoint (destroy / migrate-away).  Returns
    /// whether a file existed.
    pub fn remove(&self, session: u64) -> bool {
        std::fs::remove_file(self.path(session)).is_ok()
    }

    /// Every finished checkpoint in the directory, ascending by session id.
    /// Temp files (in-flight or torn writes) and foreign files are ignored.
    pub fn scan(&self) -> Vec<CheckpointEntry> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut found: Vec<CheckpointEntry> = entries
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name();
                let name = name.to_str()?;
                if name.ends_with(TEMP_SUFFIX) {
                    return None;
                }
                let session = name.strip_suffix(CHECKPOINT_SUFFIX)?.parse::<u64>().ok()?;
                Some(CheckpointEntry {
                    session,
                    age_ms: file_age(&entry.path()).as_millis() as u64,
                })
            })
            .collect();
        found.sort_unstable_by_key(|e| e.session);
        found
    }

    /// Checkpoints successfully written over the store's lifetime.
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Checkpoint writes that failed (including injected faults).
    pub fn write_failure_count(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }
}

/// Time since `path` was last (atomically) written.  A file whose mtime the
/// filesystem cannot report counts as fresh rather than infinitely stale.
fn file_age(path: &Path) -> Duration {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
        .unwrap_or(Duration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_core::{ArchitectureConfig, Simulator};
    use std::sync::atomic::AtomicU32;

    const PROGRAM: &str = "
main:
    li   t0, 9
    li   t1, 0
loop:
    add  t1, t1, t0
    addi t0, t0, -1
    bne  t0, zero, loop
    mv   a0, t1
    ret
";

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_store() -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "rvsim-ckpt-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("store opens")
    }

    fn envelope_at(session: u64, cycles: u64) -> SessionEnvelope {
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly(PROGRAM, &config).unwrap();
        for _ in 0..cycles {
            sim.step();
        }
        SessionEnvelope::capture(session, &sim, PROGRAM)
    }

    #[test]
    fn save_load_round_trips_byte_identically() {
        let store = temp_store();
        let envelope = envelope_at(7, 5);
        store.save(&envelope).unwrap();
        let (back, age) = store.load(7).unwrap();
        assert_eq!(back, envelope);
        assert_eq!(back.to_bytes(), envelope.to_bytes());
        assert!(age < Duration::from_secs(60));
        assert_eq!(store.write_count(), 1);
        // The temp file of the atomic write must not survive a clean save.
        assert!(!store.temp_path(7).exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn scan_lists_checkpoints_and_ignores_temp_and_foreign_files() {
        let store = temp_store();
        store.save(&envelope_at(3, 2)).unwrap();
        store.save(&envelope_at(11, 4)).unwrap();
        std::fs::write(store.dir().join("5.rvse.tmp"), b"torn").unwrap();
        std::fs::write(store.dir().join("README"), b"not a checkpoint").unwrap();
        let listed: Vec<u64> = store.scan().iter().map(|e| e.session).collect();
        assert_eq!(listed, vec![3, 11]);
        assert!(store.contains(3));
        assert!(!store.contains(5));
        assert!(store.remove(3));
        assert!(!store.remove(3));
        let listed: Vec<u64> = store.scan().iter().map(|e| e.session).collect();
        assert_eq!(listed, vec![11]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn torn_write_preserves_the_previous_checkpoint() {
        let store = temp_store();
        let old = envelope_at(9, 3);
        store.save(&old).unwrap();
        store.inject_fault(CheckpointFault::TornWrite, 1);
        let err = store.save(&envelope_at(9, 6)).unwrap_err();
        assert!(err.contains("torn"), "{err}");
        // The final file still holds the previous, fully valid checkpoint.
        let (back, _) = store.load(9).unwrap();
        assert_eq!(back, old);
        // The torn temp file is visible (simulating the crash residue) but
        // never listed as a checkpoint.
        assert_eq!(store.scan().len(), 1);
        // And the next write (fault disarmed) succeeds over the residue.
        let newer = envelope_at(9, 6);
        store.save(&newer).unwrap();
        assert_eq!(store.load(9).unwrap().0, newer);
        assert_eq!(store.write_failure_count(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_space_fault_fails_the_write_and_keeps_the_old_checkpoint() {
        let store = temp_store();
        let old = envelope_at(4, 2);
        store.save(&old).unwrap();
        store.inject_fault(CheckpointFault::NoSpace, 2);
        assert!(store.save(&envelope_at(4, 5)).unwrap_err().contains("no space"));
        assert!(store.save(&envelope_at(4, 5)).unwrap_err().contains("no space"));
        // Two shots armed, both fired: the third write goes through.
        store.save(&envelope_at(4, 5)).unwrap();
        assert_eq!(store.load(4).unwrap().0.cycle, envelope_at(4, 5).cycle);
        assert_eq!(store.write_failure_count(), 2);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_fault_reports_success_but_keeps_the_old_generation() {
        let store = temp_store();
        let old = envelope_at(2, 3);
        store.save(&old).unwrap();
        store.inject_fault(CheckpointFault::StaleCheckpoint, 1);
        store.save(&envelope_at(2, 8)).unwrap();
        // "Success", but the on-disk state is a generation behind — the
        // bounded-staleness scenario a restore must tolerate.
        assert_eq!(store.load(2).unwrap().0, old);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_rejects_a_mismatched_session_id() {
        let store = temp_store();
        let envelope = envelope_at(21, 2);
        std::fs::write(store.path(33), envelope.to_bytes()).unwrap();
        let err = store.load(33).unwrap_err();
        assert!(err.contains("claims session 21"), "{err}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
