//! Memory subsystem: main memory + optional L1 cache behind a transactional
//! interface (paper §III-A).

use crate::cache::{Cache, CacheConfig};
use crate::main_memory::{MainMemory, MemError};
use crate::transaction::{MemoryTransaction, TransactionKind};
use serde::{Deserialize, Serialize};

/// Baseline access latencies (the "Memory" settings tab).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTimings {
    /// Cycles to complete a load that goes to main memory.
    pub load_latency: u64,
    /// Cycles to complete a store that goes to main memory.
    pub store_latency: u64,
}

impl Default for MemoryTimings {
    fn default() -> Self {
        MemoryTimings { load_latency: 4, store_latency: 4 }
    }
}

/// Aggregated statistics reported in the Runtime Statistics window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MemStats {
    /// Total load transactions.
    pub loads: u64,
    /// Total store transactions.
    pub stores: u64,
    /// Bytes read by loads.
    pub bytes_read: u64,
    /// Bytes written by stores.
    pub bytes_written: u64,
    /// Cache accesses (loads + stores when the cache is enabled).
    pub cache_accesses: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Dirty-line writebacks.
    pub cache_writebacks: u64,
    /// Sum of access latencies (for average-latency reporting).
    pub total_latency: u64,
}

impl MemStats {
    /// Cache hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_accesses as f64
        }
    }

    /// Cache miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            1.0 - self.hit_ratio()
        }
    }

    /// Average access latency in cycles.
    pub fn average_latency(&self) -> f64 {
        let n = self.loads + self.stores;
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }
}

/// Main memory plus optional L1 cache, accessed through transactions.
#[derive(Debug)]
pub struct MemorySubsystem {
    memory: MainMemory,
    cache: Option<Cache>,
    timings: MemoryTimings,
    stats: MemStats,
    next_id: u64,
}

impl MemorySubsystem {
    /// Build a subsystem.  A disabled [`CacheConfig`] results in no cache.
    pub fn new(
        capacity: usize,
        cache_config: CacheConfig,
        timings: MemoryTimings,
    ) -> Result<Self, String> {
        let cache = if cache_config.enabled { Some(Cache::new(cache_config)?) } else { None };
        Ok(MemorySubsystem {
            memory: MainMemory::new(capacity),
            cache,
            timings,
            stats: MemStats::default(),
            next_id: 1,
        })
    }

    /// Subsystem with default geometry (64 KiB, default cache, default timings).
    pub fn with_defaults() -> Self {
        Self::new(MainMemory::DEFAULT_CAPACITY, CacheConfig::default(), MemoryTimings::default())
            .expect("default cache configuration is valid")
    }

    /// Borrow main memory (program loading, memory editor, dumps).
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Mutably borrow main memory.
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Borrow the cache, if enabled.
    pub fn cache(&self) -> Option<&Cache> {
        self.cache.as_ref()
    }

    /// Configured baseline timings.
    pub fn timings(&self) -> MemoryTimings {
        self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Register and immediately service a transaction: performs the data
    /// access against main memory, consults the cache for timing, fills in
    /// the transaction's id, completion cycle, hit flag and (for loads) the
    /// loaded value.
    pub fn register(&mut self, mut tx: MemoryTransaction) -> Result<MemoryTransaction, MemError> {
        tx.id = self.next_id;
        self.next_id += 1;

        // Data path: main memory is always authoritative.
        match tx.kind {
            TransactionKind::Load => {
                tx.value = self.memory.read(tx.address, tx.size)?;
                self.stats.loads += 1;
                self.stats.bytes_read += tx.size as u64;
            }
            TransactionKind::Store => {
                self.memory.write(tx.address, tx.size, tx.value)?;
                self.stats.stores += 1;
                self.stats.bytes_written += tx.size as u64;
            }
        }

        // Timing path.
        let base_latency = match tx.kind {
            TransactionKind::Load => self.timings.load_latency,
            TransactionKind::Store => self.timings.store_latency,
        };
        let extra = if let Some(cache) = self.cache.as_mut() {
            let r = cache.access(tx.address, tx.is_store(), tx.issue_cycle);
            tx.cache_hit = r.hit;
            tx.caused_writeback = r.writeback;
            self.stats.cache_accesses += 1;
            if r.hit {
                self.stats.cache_hits += 1;
                // A hit is served from the cache: only the cache access delay
                // applies, not the full memory latency.
                tx.completion_cycle = tx.issue_cycle + r.extra_latency.max(1);
                self.stats.total_latency += tx.latency();
                if r.writeback {
                    self.stats.cache_writebacks += 1;
                }
                return Ok(tx);
            }
            if r.writeback {
                self.stats.cache_writebacks += 1;
            }
            r.extra_latency
        } else {
            0
        };

        tx.completion_cycle = tx.issue_cycle + base_latency.max(1) + extra;
        self.stats.total_latency += tx.latency();
        Ok(tx)
    }

    /// Convenience wrapper: load `size` bytes at `address` issued at `cycle`.
    pub fn load(
        &mut self,
        address: u64,
        size: usize,
        cycle: u64,
    ) -> Result<MemoryTransaction, MemError> {
        self.register(MemoryTransaction::load(address, size, cycle))
    }

    /// Convenience wrapper: store `value` of `size` bytes at `address`.
    pub fn store(
        &mut self,
        address: u64,
        size: usize,
        value: u64,
        cycle: u64,
    ) -> Result<MemoryTransaction, MemError> {
        self.register(MemoryTransaction::store(address, size, value, cycle))
    }

    /// Reset the cache state and statistics while keeping memory contents.
    /// Used when a deterministic re-run starts (backward simulation).
    pub fn reset_timing_state(&mut self) {
        if let Some(c) = self.cache.as_mut() {
            c.reset();
        }
        self.stats = MemStats::default();
        self.next_id = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{ReplacementPolicy, WritePolicy};

    fn subsystem(cache_enabled: bool) -> MemorySubsystem {
        let cache = CacheConfig {
            enabled: cache_enabled,
            line_count: 4,
            line_size: 16,
            associativity: 2,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteBack,
            access_delay: 1,
            line_fill_delay: 10,
        };
        MemorySubsystem::new(1024, cache, MemoryTimings { load_latency: 4, store_latency: 6 })
            .unwrap()
    }

    #[test]
    fn store_then_load_round_trips_data() {
        let mut m = subsystem(true);
        m.store(0x40, 4, 0xdead_beef, 1).unwrap();
        let tx = m.load(0x40, 4, 2).unwrap();
        assert_eq!(tx.value, 0xdead_beef);
        assert_eq!(m.stats().loads, 1);
        assert_eq!(m.stats().stores, 1);
        assert_eq!(m.stats().bytes_written, 4);
        assert_eq!(m.stats().bytes_read, 4);
    }

    #[test]
    fn miss_then_hit_latency_difference() {
        let mut m = subsystem(true);
        let miss = m.load(0x100, 4, 10).unwrap();
        assert!(!miss.cache_hit);
        assert_eq!(miss.completion_cycle, 10 + 4 + 1 + 10);
        let hit = m.load(0x104, 4, 30).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.completion_cycle, 31);
        assert!(hit.latency() < miss.latency());
    }

    #[test]
    fn no_cache_uses_plain_memory_latency() {
        let mut m = subsystem(false);
        assert!(m.cache().is_none());
        let tx = m.load(0x10, 4, 5).unwrap();
        assert_eq!(tx.completion_cycle, 9);
        assert!(!tx.cache_hit);
        let tx = m.store(0x10, 4, 1, 5).unwrap();
        assert_eq!(tx.completion_cycle, 11);
        assert_eq!(m.stats().cache_accesses, 0);
    }

    #[test]
    fn errors_propagate_for_bad_addresses() {
        let mut m = subsystem(true);
        assert!(m.load(4096, 4, 0).is_err());
        assert!(m.store(1022, 4, 0, 0).is_err());
        assert!(m.load(2, 4, 0).is_err(), "misaligned");
    }

    #[test]
    fn stats_hit_ratio_and_latency() {
        let mut m = subsystem(true);
        m.load(0, 4, 0).unwrap(); // miss
        m.load(4, 4, 1).unwrap(); // hit
        m.load(8, 4, 2).unwrap(); // hit
        m.load(12, 4, 3).unwrap(); // hit
        assert_eq!(m.stats().cache_accesses, 4);
        assert_eq!(m.stats().cache_hits, 3);
        assert!((m.stats().hit_ratio() - 0.75).abs() < 1e-12);
        assert!((m.stats().miss_ratio() - 0.25).abs() < 1e-12);
        assert!(m.stats().average_latency() > 1.0);
    }

    #[test]
    fn transaction_ids_are_unique_and_monotonic() {
        let mut m = subsystem(true);
        let a = m.load(0, 4, 0).unwrap();
        let b = m.load(4, 4, 0).unwrap();
        let c = m.store(8, 4, 0, 0).unwrap();
        assert!(a.id < b.id && b.id < c.id);
    }

    #[test]
    fn reset_timing_state_keeps_memory_contents() {
        let mut m = subsystem(true);
        m.store(0x20, 4, 77, 0).unwrap();
        m.load(0x20, 4, 1).unwrap();
        m.reset_timing_state();
        assert_eq!(m.stats().loads, 0);
        assert_eq!(m.memory().read_u32(0x20).unwrap(), 77, "data must survive timing reset");
        let tx = m.load(0x20, 4, 2).unwrap();
        assert!(!tx.cache_hit, "cache must be cold again");
    }

    #[test]
    fn write_back_traffic_counted() {
        let mut m = subsystem(true);
        // Fill both ways of set 0 with dirty lines, then force an eviction.
        // Set selection: line = addr/16, set = line % 2. Set 0 lines: 0, 32, 64...
        m.store(0, 4, 1, 0).unwrap();
        m.store(32, 4, 2, 1).unwrap();
        m.store(64, 4, 3, 2).unwrap(); // evicts dirty line 0
        assert_eq!(m.stats().cache_writebacks, 1);
    }
}
