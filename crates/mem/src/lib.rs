//! # rvsim-mem — memory subsystem
//!
//! Models the paper's memory hierarchy (§II-C, §III-A):
//!
//! * [`MainMemory`] — the simulator's memory is a 1-D byte array with a
//!   predefined capacity; all loads/stores are bounds- and alignment-checked.
//! * [`MemoryTransaction`] — functional blocks request data by creating a
//!   transaction object; the subsystem fills in its completion time.  This is
//!   the paper's "transactional mode" which makes access latencies easy to
//!   configure and gives the GUI per-access metadata.
//! * [`Cache`] — a configurable L1 data cache: number of lines, line size,
//!   associativity, LRU/FIFO/Random replacement, write-back or write-through
//!   store behaviour, access delay and line-replacement delay.
//! * [`MemorySubsystem`] — glues memory + optional cache together and keeps
//!   the cache statistics reported in the Runtime Statistics window.
//! * [`settings`] — the Memory Settings window model: static global arrays of
//!   basic data types with alignment, filled with explicit values, repeated
//!   constants or random data; CSV / binary dump import & export.

#![warn(missing_docs)]

pub mod cache;
pub mod main_memory;
pub mod settings;
pub mod subsystem;
pub mod transaction;

pub use cache::{Cache, CacheConfig, ReplacementPolicy, WritePolicy};
pub use main_memory::{MainMemory, MemError};
pub use settings::{ArrayFill, MemoryArray, MemorySettings, ScalarType};
pub use subsystem::{MemStats, MemorySubsystem, MemoryTimings};
pub use transaction::{MemoryTransaction, TransactionKind};
