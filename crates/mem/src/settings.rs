//! The Memory Settings window model (paper §II-C, Fig. 8).
//!
//! Users define static global arrays of basic data types, choose their
//! alignment, and fill them with explicit comma-separated values, a repeated
//! constant, or random data.  The arrays are referenced from C code via
//! `extern` and from assembly via their label.  Memory dumps can be imported
//! and exported in binary or CSV form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scalar element type of a user-defined array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalarType {
    /// 8-bit byte / char.
    Byte,
    /// 16-bit half word.
    Half,
    /// 32-bit word.
    Word,
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE double.
    Double,
}

impl ScalarType {
    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            ScalarType::Byte => 1,
            ScalarType::Half => 2,
            ScalarType::Word | ScalarType::Float => 4,
            ScalarType::Double => 8,
        }
    }
}

/// How an array is populated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrayFill {
    /// Explicit values (floats are accepted for float/double arrays).
    Values(Vec<f64>),
    /// `count` copies of `value`.
    Repeat {
        /// The repeated constant.
        value: f64,
        /// How many elements.
        count: usize,
    },
    /// `count` random elements in `[lo, hi)`, deterministic per `seed`.
    Random {
        /// How many elements.
        count: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// RNG seed so runs replay identically.
        seed: u64,
    },
}

/// One user-defined static array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryArray {
    /// Label used from code (`extern int arr[]` / `la a0, arr`).
    pub name: String,
    /// Element type.
    pub element: ScalarType,
    /// Alignment in bytes (0 or 1 = natural element alignment).
    pub alignment: usize,
    /// Fill specification.
    pub fill: ArrayFill,
}

impl MemoryArray {
    /// Number of elements the fill produces.
    pub fn element_count(&self) -> usize {
        match &self.fill {
            ArrayFill::Values(v) => v.len(),
            ArrayFill::Repeat { count, .. } => *count,
            ArrayFill::Random { count, .. } => *count,
        }
    }

    /// Size in bytes.
    pub fn byte_size(&self) -> usize {
        self.element_count() * self.element.size()
    }

    /// Effective alignment in bytes.
    pub fn effective_alignment(&self) -> usize {
        self.alignment.max(self.element.size()).max(1)
    }

    /// Materialize the element values.
    pub fn values(&self) -> Vec<f64> {
        match &self.fill {
            ArrayFill::Values(v) => v.clone(),
            ArrayFill::Repeat { value, count } => vec![*value; *count],
            ArrayFill::Random { count, lo, hi, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..*count).map(|_| rng.random_range(*lo..*hi)).collect()
            }
        }
    }

    /// Encode the element values as little-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size());
        for v in self.values() {
            match self.element {
                ScalarType::Byte => out.push(v as i64 as u8),
                ScalarType::Half => out.extend_from_slice(&(v as i64 as u16).to_le_bytes()),
                ScalarType::Word => out.extend_from_slice(&(v as i64 as u32).to_le_bytes()),
                ScalarType::Float => out.extend_from_slice(&(v as f32).to_le_bytes()),
                ScalarType::Double => out.extend_from_slice(&v.to_le_bytes()),
            }
        }
        out
    }
}

/// A placed array: label, start address and byte size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedArray {
    /// Array label.
    pub name: String,
    /// Start address in main memory.
    pub address: u64,
    /// Size in bytes.
    pub size: usize,
}

/// The whole Memory Settings window: a list of arrays.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemorySettings {
    /// User-defined arrays in definition order.
    pub arrays: Vec<MemoryArray>,
}

impl MemorySettings {
    /// Empty settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an array definition.
    pub fn add(&mut self, array: MemoryArray) -> &mut Self {
        self.arrays.push(array);
        self
    }

    /// Allocate every array starting at `base`, respecting alignment, and
    /// write the fill data into `memory`.  Returns the placement table
    /// (label → address) used by the assembler's symbol table.
    pub fn allocate(
        &self,
        memory: &mut crate::MainMemory,
        base: u64,
    ) -> Result<Vec<PlacedArray>, String> {
        let mut cursor = base;
        let mut placed = Vec::with_capacity(self.arrays.len());
        for array in &self.arrays {
            let align = array.effective_alignment() as u64;
            cursor = cursor.div_ceil(align) * align;
            let bytes = array.to_bytes();
            memory
                .write_bytes(cursor, &bytes)
                .map_err(|e| format!("allocating `{}`: {e}", array.name))?;
            placed.push(PlacedArray {
                name: array.name.clone(),
                address: cursor,
                size: bytes.len(),
            });
            cursor += bytes.len() as u64;
        }
        Ok(placed)
    }

    /// Export the arrays as CSV (`name,type,index,value` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,type,index,value\n");
        for a in &self.arrays {
            let ty = match a.element {
                ScalarType::Byte => "byte",
                ScalarType::Half => "half",
                ScalarType::Word => "word",
                ScalarType::Float => "float",
                ScalarType::Double => "double",
            };
            for (i, v) in a.values().iter().enumerate() {
                out.push_str(&format!("{},{},{},{}\n", a.name, ty, i, v));
            }
        }
        out
    }

    /// Import arrays from CSV produced by [`MemorySettings::to_csv`].
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut settings = MemorySettings::new();
        let mut current: Option<(String, ScalarType, Vec<f64>)> = None;
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || lineno == 0 && line.starts_with("name,") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(format!(
                    "line {}: expected 4 fields, got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            let name = fields[0].to_string();
            let ty = match fields[1] {
                "byte" => ScalarType::Byte,
                "half" => ScalarType::Half,
                "word" => ScalarType::Word,
                "float" => ScalarType::Float,
                "double" => ScalarType::Double,
                other => return Err(format!("line {}: unknown type `{other}`", lineno + 1)),
            };
            let value: f64 = fields[3]
                .parse()
                .map_err(|_| format!("line {}: bad value `{}`", lineno + 1, fields[3]))?;
            match &mut current {
                Some((n, t, vals)) if *n == name && *t == ty => vals.push(value),
                _ => {
                    if let Some((n, t, vals)) = current.take() {
                        settings.add(MemoryArray {
                            name: n,
                            element: t,
                            alignment: 0,
                            fill: ArrayFill::Values(vals),
                        });
                    }
                    current = Some((name, ty, vec![value]));
                }
            }
        }
        if let Some((n, t, vals)) = current.take() {
            settings.add(MemoryArray {
                name: n,
                element: t,
                alignment: 0,
                fill: ArrayFill::Values(vals),
            });
        }
        Ok(settings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MainMemory;

    fn word_array(name: &str, values: &[f64]) -> MemoryArray {
        MemoryArray {
            name: name.to_string(),
            element: ScalarType::Word,
            alignment: 0,
            fill: ArrayFill::Values(values.to_vec()),
        }
    }

    #[test]
    fn sizes_and_alignment() {
        let a = word_array("a", &[1.0, 2.0, 3.0]);
        assert_eq!(a.element_count(), 3);
        assert_eq!(a.byte_size(), 12);
        assert_eq!(a.effective_alignment(), 4);
        let b = MemoryArray {
            name: "b".into(),
            element: ScalarType::Byte,
            alignment: 16,
            fill: ArrayFill::Repeat { value: 0.0, count: 64 },
        };
        assert_eq!(b.byte_size(), 64);
        assert_eq!(b.effective_alignment(), 16);
    }

    #[test]
    fn fills_materialize() {
        let r = MemoryArray {
            name: "r".into(),
            element: ScalarType::Word,
            alignment: 0,
            fill: ArrayFill::Repeat { value: 7.0, count: 5 },
        };
        assert_eq!(r.values(), vec![7.0; 5]);

        let rnd = MemoryArray {
            name: "rnd".into(),
            element: ScalarType::Float,
            alignment: 0,
            fill: ArrayFill::Random { count: 10, lo: 0.0, hi: 1.0, seed: 42 },
        };
        let v1 = rnd.values();
        let v2 = rnd.values();
        assert_eq!(v1, v2, "random fill must be deterministic per seed");
        assert!(v1.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn byte_encoding_is_little_endian_and_typed() {
        let w = word_array("w", &[1.0, 256.0]);
        assert_eq!(w.to_bytes(), vec![1, 0, 0, 0, 0, 1, 0, 0]);
        let f = MemoryArray {
            name: "f".into(),
            element: ScalarType::Float,
            alignment: 0,
            fill: ArrayFill::Values(vec![2.5]),
        };
        assert_eq!(f.to_bytes(), 2.5f32.to_le_bytes().to_vec());
        let d = MemoryArray {
            name: "d".into(),
            element: ScalarType::Double,
            alignment: 0,
            fill: ArrayFill::Values(vec![2.5]),
        };
        assert_eq!(d.to_bytes(), 2.5f64.to_le_bytes().to_vec());
    }

    #[test]
    fn allocation_respects_alignment_and_order() {
        let mut mem = MainMemory::new(256);
        let mut s = MemorySettings::new();
        s.add(MemoryArray {
            name: "bytes".into(),
            element: ScalarType::Byte,
            alignment: 0,
            fill: ArrayFill::Values(vec![1.0, 2.0, 3.0]),
        });
        s.add(MemoryArray {
            name: "words".into(),
            element: ScalarType::Word,
            alignment: 16,
            fill: ArrayFill::Values(vec![10.0, 20.0]),
        });
        let placed = s.allocate(&mut mem, 4).unwrap();
        assert_eq!(placed[0].address, 4);
        assert_eq!(placed[0].size, 3);
        assert_eq!(placed[1].address, 16, "second array aligned up to 16");
        assert_eq!(mem.read_u32(16).unwrap(), 10);
        assert_eq!(mem.read_u32(20).unwrap(), 20);
        assert_eq!(mem.bytes()[4..7], [1, 2, 3]);
    }

    #[test]
    fn allocation_overflow_reports_array_name() {
        let mut mem = MainMemory::new(16);
        let mut s = MemorySettings::new();
        s.add(MemoryArray {
            name: "big".into(),
            element: ScalarType::Word,
            alignment: 0,
            fill: ArrayFill::Repeat { value: 0.0, count: 100 },
        });
        let err = s.allocate(&mut mem, 0).unwrap_err();
        assert!(err.contains("big"));
    }

    #[test]
    fn csv_round_trip() {
        let mut s = MemorySettings::new();
        s.add(word_array("a", &[1.0, 2.0, 3.0]));
        s.add(MemoryArray {
            name: "f".into(),
            element: ScalarType::Float,
            alignment: 0,
            fill: ArrayFill::Values(vec![0.5, 1.5]),
        });
        let csv = s.to_csv();
        let back = MemorySettings::from_csv(&csv).unwrap();
        assert_eq!(back.arrays.len(), 2);
        assert_eq!(back.arrays[0].values(), vec![1.0, 2.0, 3.0]);
        assert_eq!(back.arrays[1].element, ScalarType::Float);
        assert_eq!(back.arrays[1].values(), vec![0.5, 1.5]);
    }

    #[test]
    fn csv_errors() {
        assert!(MemorySettings::from_csv("a,word,0\n").is_err());
        assert!(MemorySettings::from_csv("a,wat,0,1\n").is_err());
        assert!(MemorySettings::from_csv("a,word,0,xyz\n").is_err());
        assert!(MemorySettings::from_csv("").unwrap().arrays.is_empty());
    }
}
