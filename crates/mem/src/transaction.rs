//! Memory transactions (paper §III-A).
//!
//! Functional blocks that need data from memory do not poke the byte array
//! directly — they create a [`MemoryTransaction`] and register it with the
//! [`crate::MemorySubsystem`], which fills in the completion cycle based on the
//! configured latencies and the cache outcome.  The transaction carries the
//! metadata the interactive GUI displays (issue cycle, hit/miss, latency).

use serde::{Deserialize, Serialize};

/// Whether the transaction reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransactionKind {
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// One memory access request with its timing metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryTransaction {
    /// Unique id assigned by the subsystem at registration.
    pub id: u64,
    /// Load or store.
    pub kind: TransactionKind,
    /// First byte address.
    pub address: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: usize,
    /// Value to store (stores) or value loaded (filled in at completion).
    pub value: u64,
    /// Cycle the request was handed to the memory subsystem.
    pub issue_cycle: u64,
    /// Cycle the data is available / the store is accepted.
    pub completion_cycle: u64,
    /// True when the access hit in the L1 cache.
    pub cache_hit: bool,
    /// True when servicing the access evicted a dirty line (write-back traffic).
    pub caused_writeback: bool,
    /// Id of the instruction that generated the access, for GUI highlighting.
    pub instruction_id: Option<u64>,
}

impl MemoryTransaction {
    /// Build a load request.  The subsystem assigns `id`, timing and data.
    pub fn load(address: u64, size: usize, issue_cycle: u64) -> Self {
        MemoryTransaction {
            id: 0,
            kind: TransactionKind::Load,
            address,
            size,
            value: 0,
            issue_cycle,
            completion_cycle: issue_cycle,
            cache_hit: false,
            caused_writeback: false,
            instruction_id: None,
        }
    }

    /// Build a store request carrying `value`.
    pub fn store(address: u64, size: usize, value: u64, issue_cycle: u64) -> Self {
        MemoryTransaction {
            kind: TransactionKind::Store,
            value,
            ..Self::load(address, size, issue_cycle)
        }
    }

    /// Attach the id of the instruction that generated the access.
    pub fn for_instruction(mut self, instruction_id: u64) -> Self {
        self.instruction_id = Some(instruction_id);
        self
    }

    /// Total latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completion_cycle.saturating_sub(self.issue_cycle)
    }

    /// True for store transactions.
    pub fn is_store(&self) -> bool {
        self.kind == TransactionKind::Store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_value() {
        let l = MemoryTransaction::load(0x40, 4, 10);
        assert_eq!(l.kind, TransactionKind::Load);
        assert!(!l.is_store());
        assert_eq!(l.issue_cycle, 10);
        assert_eq!(l.latency(), 0);

        let s = MemoryTransaction::store(0x40, 4, 0xdead, 12);
        assert!(s.is_store());
        assert_eq!(s.value, 0xdead);
        assert_eq!(s.address, 0x40);
    }

    #[test]
    fn latency_is_completion_minus_issue() {
        let mut t = MemoryTransaction::load(0, 4, 100);
        t.completion_cycle = 112;
        assert_eq!(t.latency(), 12);
        t.completion_cycle = 90; // never happens, but must not underflow
        assert_eq!(t.latency(), 0);
    }

    #[test]
    fn instruction_tagging() {
        let t = MemoryTransaction::load(0, 4, 0).for_instruction(7);
        assert_eq!(t.instruction_id, Some(7));
    }
}
