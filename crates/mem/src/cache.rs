//! Configurable L1 data cache model (paper §II-C, "Cache" settings tab).
//!
//! The cache tracks tags and replacement metadata; data correctness is always
//! provided by [`crate::MainMemory`] (stores update memory immediately), so the
//! cache only influences *timing* and the statistics reported to the user.
//! This matches what the paper's educational tool communicates: hit/miss
//! behaviour, replacement policy effects and write-policy traffic, without the
//! risk of the cache and memory images diverging.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cache line replacement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    #[default]
    Lru,
    /// First-in first-out (replacement order = fill order).
    Fifo,
    /// Uniformly random victim (deterministically seeded so that backward
    /// simulation replays identically).
    Random,
}

/// Store behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WritePolicy {
    /// Dirty lines are written back on eviction.
    #[default]
    WriteBack,
    /// Every store is propagated to memory immediately.
    WriteThrough,
}

/// Cache geometry and timing configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Enable or disable the L1 cache entirely.
    pub enabled: bool,
    /// Total number of cache lines (must be a multiple of `associativity`).
    pub line_count: usize,
    /// Cache line size in bytes (power of two).
    pub line_size: usize,
    /// Set associativity (1 = direct-mapped).
    pub associativity: usize,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Store behaviour.
    pub write_policy: WritePolicy,
    /// Extra cycles to access the cache array (added to every access).
    pub access_delay: u64,
    /// Extra cycles to fill a line from memory on a miss.
    pub line_fill_delay: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            line_count: 16,
            line_size: 32,
            associativity: 2,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteBack,
            access_delay: 1,
            line_fill_delay: 10,
        }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn set_count(&self) -> usize {
        (self.line_count / self.associativity).max(1)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.line_count * self.line_size
    }

    /// Validate the geometry, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(format!("cache line size {} must be a power of two", self.line_size));
        }
        if self.associativity == 0 {
            return Err("cache associativity must be at least 1".to_string());
        }
        if self.line_count == 0 || !self.line_count.is_multiple_of(self.associativity) {
            return Err(format!(
                "cache line count {} must be a non-zero multiple of associativity {}",
                self.line_count, self.associativity
            ));
        }
        if !self.set_count().is_power_of_two() {
            return Err(format!("cache set count {} must be a power of two", self.set_count()));
        }
        Ok(())
    }
}

/// One cache line's metadata (the GUI shows these per line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheLine {
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit (write-back only).
    pub dirty: bool,
    /// Address tag.
    pub tag: u64,
    /// Base address of the cached block (for display).
    pub base_address: u64,
    /// Cycle of last access (LRU bookkeeping).
    pub last_used: u64,
    /// Cycle the line was filled (FIFO bookkeeping).
    pub filled_at: u64,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccessResult {
    /// True on hit.
    pub hit: bool,
    /// Extra cycles on top of the baseline load/store latency.
    pub extra_latency: u64,
    /// A dirty victim line had to be written back.
    pub writeback: bool,
    /// The victim line's base address, when a line was evicted.
    pub evicted: Option<u64>,
}

/// The L1 data cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<CacheLine>>,
    rng: StdRng,
    accesses: u64,
    hits: u64,
    writebacks: u64,
}

impl Cache {
    /// Build a cache from a validated configuration.
    pub fn new(config: CacheConfig) -> Result<Self, String> {
        config.validate()?;
        let sets = vec![vec![CacheLine::default(); config.associativity]; config.set_count()];
        Ok(Cache {
            config,
            sets,
            rng: StdRng::seed_from_u64(0x5eed),
            accesses: 0,
            hits: 0,
            writebacks: 0,
        })
    }

    /// The configuration the cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Dirty-line writebacks so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit ratio in `[0, 1]`; 0 when no access has happened yet.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Snapshot of all lines, set by set (GUI cache view).
    pub fn lines(&self) -> &[Vec<CacheLine>] {
        &self.sets
    }

    fn index_and_tag(&self, address: u64) -> (usize, u64, u64) {
        let line = address / self.config.line_size as u64;
        let set_count = self.config.set_count() as u64;
        let index = (line % set_count) as usize;
        let tag = line / set_count;
        let base = line * self.config.line_size as u64;
        (index, tag, base)
    }

    /// Perform one access at `address` during `cycle`.  `is_store` selects the
    /// write path.  Returns hit/miss and the extra latency to add on top of
    /// the baseline memory latency.
    pub fn access(&mut self, address: u64, is_store: bool, cycle: u64) -> CacheAccessResult {
        self.accesses += 1;
        let (index, tag, base) = self.index_and_tag(address);
        let assoc = self.config.associativity;
        let set = &mut self.sets[index];

        // Hit path.
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            self.hits += 1;
            set[way].last_used = cycle;
            if is_store && self.config.write_policy == WritePolicy::WriteBack {
                set[way].dirty = true;
            }
            return CacheAccessResult {
                hit: true,
                extra_latency: self.config.access_delay,
                writeback: false,
                evicted: None,
            };
        }

        // Miss: pick a victim way.
        let victim = if let Some(invalid) = set.iter().position(|l| !l.valid) {
            invalid
        } else {
            match self.config.replacement {
                ReplacementPolicy::Lru => {
                    let mut best = 0;
                    for i in 1..assoc {
                        if set[i].last_used < set[best].last_used {
                            best = i;
                        }
                    }
                    best
                }
                ReplacementPolicy::Fifo => {
                    let mut best = 0;
                    for i in 1..assoc {
                        if set[i].filled_at < set[best].filled_at {
                            best = i;
                        }
                    }
                    best
                }
                ReplacementPolicy::Random => self.rng.random_range(0..assoc),
            }
        };

        let old = set[victim];
        let writeback =
            old.valid && old.dirty && self.config.write_policy == WritePolicy::WriteBack;
        if writeback {
            self.writebacks += 1;
        }
        let evicted = if old.valid { Some(old.base_address) } else { None };

        set[victim] = CacheLine {
            valid: true,
            dirty: is_store && self.config.write_policy == WritePolicy::WriteBack,
            tag,
            base_address: base,
            last_used: cycle,
            filled_at: cycle,
        };

        let mut extra = self.config.access_delay + self.config.line_fill_delay;
        if writeback {
            // Writing the dirty victim back costs another line transfer.
            extra += self.config.line_fill_delay;
        }
        CacheAccessResult { hit: false, extra_latency: extra, writeback, evicted }
    }

    /// Invalidate all lines and reset statistics (used when the simulation is
    /// restarted, e.g. by backward stepping).
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = CacheLine::default();
            }
        }
        self.rng = StdRng::seed_from_u64(0x5eed);
        self.accesses = 0;
        self.hits = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lines: usize, line_size: usize, assoc: usize) -> CacheConfig {
        CacheConfig {
            enabled: true,
            line_count: lines,
            line_size,
            associativity: assoc,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteBack,
            access_delay: 1,
            line_fill_delay: 10,
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg(16, 32, 2).validate().is_ok());
        assert!(cfg(16, 31, 2).validate().is_err(), "non power-of-two line size");
        assert!(cfg(15, 32, 2).validate().is_err(), "line count not multiple of assoc");
        assert!(cfg(16, 32, 0).validate().is_err(), "zero associativity");
        assert!(cfg(0, 32, 1).validate().is_err(), "zero lines");
        assert!(cfg(12, 32, 2).validate().is_err(), "set count not power of two");
        let mut disabled = cfg(0, 0, 0);
        disabled.enabled = false;
        assert!(disabled.validate().is_ok(), "disabled cache skips validation");
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(cfg(16, 32, 2)).unwrap();
        let first = c.access(0x100, false, 1);
        assert!(!first.hit);
        assert_eq!(first.extra_latency, 11);
        let second = c.access(0x104, false, 2); // same line
        assert!(second.hit);
        assert_eq!(second.extra_latency, 1);
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // `n * 32` spells out line indices
    fn lru_evicts_least_recently_used() {
        // Direct-mapped would be trivial; use 2-way with 1 set to force choice.
        let mut c = Cache::new(cfg(2, 32, 2)).unwrap();
        c.access(0 * 32, false, 1); // line A
        c.access(1 * 32, false, 2); // line B
        c.access(0 * 32, false, 3); // touch A again
        let r = c.access(2 * 32, false, 4); // must evict B
        assert_eq!(r.evicted, Some(32));
        // A must still hit.
        assert!(c.access(0, false, 5).hit);
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let mut config = cfg(2, 32, 2);
        config.replacement = ReplacementPolicy::Fifo;
        let mut c = Cache::new(config).unwrap();
        c.access(0, false, 1); // A filled first
        c.access(32, false, 2); // B
        c.access(0, false, 3); // touching A does not matter for FIFO
        let r = c.access(64, false, 4);
        assert_eq!(r.evicted, Some(0), "FIFO must evict A despite recent use");
    }

    #[test]
    fn random_replacement_is_deterministic_across_resets() {
        let mut config = cfg(4, 16, 4);
        config.replacement = ReplacementPolicy::Random;
        let mut c = Cache::new(config).unwrap();
        fn run(c: &mut Cache) -> Vec<u64> {
            let mut evictions = Vec::new();
            for i in 0..32u64 {
                let r = c.access(i * 16, false, i);
                if let Some(e) = r.evicted {
                    evictions.push(e);
                }
            }
            evictions
        }
        let first = run(&mut c);
        c.reset();
        let second = run(&mut c);
        assert_eq!(first, second, "seeded RNG must replay identically after reset");
        assert!(!first.is_empty());
    }

    #[test]
    fn write_back_marks_dirty_and_costs_eviction_traffic() {
        let mut c = Cache::new(cfg(2, 32, 2)).unwrap();
        c.access(0, true, 1); // store -> dirty line A
        c.access(32, false, 2); // B
        let r = c.access(64, false, 3); // evicts A (LRU), dirty
        assert!(r.writeback);
        assert_eq!(r.extra_latency, 1 + 10 + 10);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_through_never_writes_back() {
        let mut config = cfg(2, 32, 2);
        config.write_policy = WritePolicy::WriteThrough;
        let mut c = Cache::new(config).unwrap();
        c.access(0, true, 1);
        c.access(32, true, 2);
        let r = c.access(64, true, 3);
        assert!(!r.writeback);
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn geometry_mapping_distinguishes_sets() {
        let mut c = Cache::new(cfg(4, 16, 1)).unwrap(); // 4 direct-mapped sets of 16 B
        c.access(0, false, 1); // set 0
        c.access(16, false, 2); // set 1
        c.access(32, false, 3); // set 2
        c.access(48, false, 4); // set 3
                                // All four lines should now hit.
        for (i, addr) in [(5u64, 0u64), (6, 16), (7, 32), (8, 48)] {
            assert!(c.access(addr, false, i).hit, "addr {addr}");
        }
        // 64 maps back to set 0 and evicts address 0.
        let r = c.access(64, false, 9);
        assert!(!r.hit);
        assert_eq!(r.evicted, Some(0));
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut c = Cache::new(cfg(4, 16, 2)).unwrap();
        c.access(0, true, 1);
        c.access(16, false, 2);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.hits(), 0);
        assert!(!c.access(0, false, 3).hit, "after reset everything misses again");
        assert!(c.lines().iter().flatten().filter(|l| l.valid).count() == 1);
    }

    #[test]
    fn capacity_and_sets() {
        let c = cfg(16, 64, 4);
        assert_eq!(c.capacity_bytes(), 1024);
        assert_eq!(c.set_count(), 4);
    }
}
