//! The complete branch predictor: BTB + PHT + history, as configured by the
//! Branch Prediction settings tab.

use crate::counter::{CounterState, PredictorKind, SaturatingPredictor};
use crate::history::{HistoryKind, HistoryRegisters};
use serde::{Deserialize, Serialize};

/// Branch predictor configuration (paper §II-C, last tab).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// Number of branch-target-buffer entries.
    pub btb_size: usize,
    /// Number of pattern-history-table entries.
    pub pht_size: usize,
    /// Predictor state machine (zero/one/two-bit).
    pub predictor_kind: PredictorKind,
    /// Default state of freshly allocated PHT entries.
    pub default_state: CounterState,
    /// Local or global history shift registers.
    pub history: HistoryKind,
    /// History length in bits (0 = PC-indexed only).
    pub history_bits: u32,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig {
            btb_size: 64,
            pht_size: 256,
            predictor_kind: PredictorKind::Two,
            default_state: CounterState::WeaklyTaken,
            history: HistoryKind::Global,
            history_bits: 4,
        }
    }
}

impl BranchPredictorConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.btb_size == 0 {
            return Err("BTB size must be at least 1".into());
        }
        if self.pht_size == 0 {
            return Err("PHT size must be at least 1".into());
        }
        Ok(())
    }
}

/// One BTB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
struct BtbEntry {
    valid: bool,
    pc: u64,
    target: u64,
}

/// Prediction returned to the fetch unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target from the BTB (None on a BTB miss — the fetch unit then
    /// falls through even for a predicted-taken branch, and the branch unit
    /// redirects later).
    pub target: Option<u64>,
    /// PHT index used, for GUI display of the consulted counter.
    pub pht_index: usize,
    /// State of the consulted counter at prediction time.
    pub counter_state: CounterState,
}

/// Accuracy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PredictorStats {
    /// Conditional-branch predictions made (updates observed).
    pub predictions: u64,
    /// Correct direction predictions.
    pub correct: u64,
    /// BTB lookups.
    pub btb_lookups: u64,
    /// BTB hits.
    pub btb_hits: u64,
}

impl PredictorStats {
    /// Direction prediction accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.predictions - self.correct
    }
}

/// The branch predictor used by the fetch and branch units.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    btb: Vec<BtbEntry>,
    pht: Vec<SaturatingPredictor>,
    history: HistoryRegisters,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Build a predictor from a validated configuration.
    pub fn new(config: BranchPredictorConfig) -> Result<Self, String> {
        config.validate()?;
        let pht = vec![
            SaturatingPredictor::new(config.predictor_kind, config.default_state);
            config.pht_size
        ];
        let history = HistoryRegisters::new(config.history, config.history_bits, config.pht_size);
        Ok(BranchPredictor {
            btb: vec![BtbEntry::default(); config.btb_size],
            pht,
            history,
            stats: PredictorStats::default(),
            config,
        })
    }

    /// Predictor with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(BranchPredictorConfig::default()).expect("default predictor config is valid")
    }

    /// The configuration in use.
    pub fn config(&self) -> &BranchPredictorConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn pht_index(&self, pc: u64) -> usize {
        let hist = self.history.value(pc);
        (((pc >> 2) ^ hist) as usize) % self.config.pht_size
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.config.btb_size
    }

    /// Predict the branch at `pc`.  Does not update any state; statistics are
    /// collected on [`BranchPredictor::update`].
    pub fn predict(&mut self, pc: u64) -> Prediction {
        let idx = self.pht_index(pc);
        let counter = self.pht[idx];
        let entry = self.btb[self.btb_index(pc)];
        self.stats.btb_lookups += 1;
        let target = if entry.valid && entry.pc == pc {
            self.stats.btb_hits += 1;
            Some(entry.target)
        } else {
            None
        };
        Prediction {
            taken: counter.predicts_taken(),
            target,
            pht_index: idx,
            counter_state: counter.state(),
        }
    }

    /// Peek at the prediction without touching BTB statistics (used by the
    /// GUI to display the counter a branch will consult).
    pub fn peek(&self, pc: u64) -> (usize, CounterState) {
        let idx = self.pht_index(pc);
        (idx, self.pht[idx].state())
    }

    /// Report the architectural outcome of the branch at `pc`.
    ///
    /// `predicted_taken` is the direction the fetch unit acted on, `taken` is
    /// the real outcome and `target` the real target (used to train the BTB).
    pub fn update(&mut self, pc: u64, predicted_taken: bool, taken: bool, target: u64) {
        self.stats.predictions += 1;
        if predicted_taken == taken {
            self.stats.correct += 1;
        }
        let idx = self.pht_index(pc);
        self.pht[idx].update(taken);
        self.history.record(pc, taken);
        if taken {
            let b = self.btb_index(pc);
            self.btb[b] = BtbEntry { valid: true, pc, target };
        }
    }

    /// Train only the BTB with the target of an unconditional jump without
    /// touching direction-prediction statistics or the PHT.
    pub fn train_btb(&mut self, pc: u64, target: u64) {
        let b = self.btb_index(pc);
        self.btb[b] = BtbEntry { valid: true, pc, target };
    }

    /// Forget everything (simulation restart).
    pub fn reset(&mut self) {
        for e in &mut self.btb {
            *e = BtbEntry::default();
        }
        for p in &mut self.pht {
            *p = SaturatingPredictor::new(self.config.predictor_kind, self.config.default_state);
        }
        self.history.reset();
        self.stats = PredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(kind: PredictorKind, default_state: CounterState) -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig {
            btb_size: 16,
            pht_size: 64,
            predictor_kind: kind,
            default_state,
            history: HistoryKind::Global,
            history_bits: 0,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(BranchPredictorConfig { btb_size: 0, ..Default::default() }.validate().is_err());
        assert!(BranchPredictorConfig { pht_size: 0, ..Default::default() }.validate().is_err());
        assert!(BranchPredictorConfig::default().validate().is_ok());
    }

    #[test]
    fn btb_miss_then_hit_after_taken_branch() {
        let mut p = predictor(PredictorKind::Two, CounterState::WeaklyTaken);
        let pred = p.predict(0x100);
        assert!(pred.target.is_none(), "cold BTB has no target");
        p.update(0x100, pred.taken, true, 0x200);
        let pred = p.predict(0x100);
        assert_eq!(pred.target, Some(0x200));
        assert_eq!(p.stats().btb_hits, 1);
        assert_eq!(p.stats().btb_lookups, 2);
    }

    #[test]
    fn not_taken_branches_do_not_pollute_btb() {
        let mut p = predictor(PredictorKind::Two, CounterState::WeaklyNotTaken);
        p.update(0x100, false, false, 0x200);
        assert_eq!(p.predict(0x100).target, None);
    }

    #[test]
    fn loop_branch_reaches_high_accuracy_with_two_bit() {
        let mut p = predictor(PredictorKind::Two, CounterState::WeaklyNotTaken);
        // A loop branch taken 9 times then not taken, repeated 10 times.
        for _ in 0..10 {
            for i in 0..10 {
                let taken = i != 9;
                let pred = p.predict(0x40);
                p.update(0x40, pred.taken, taken, 0x10);
            }
        }
        // 2-bit predictor mispredicts ~1-2 per loop iteration of 10.
        assert!(p.stats().accuracy() > 0.75, "accuracy {}", p.stats().accuracy());
    }

    #[test]
    fn one_bit_worse_than_two_bit_on_loop_pattern() {
        let run = |kind| {
            let mut p = predictor(kind, CounterState::WeaklyNotTaken);
            for _ in 0..50 {
                for i in 0..5 {
                    let taken = i != 4;
                    let pred = p.predict(0x40);
                    p.update(0x40, pred.taken, taken, 0x10);
                }
            }
            p.stats().accuracy()
        };
        let one = run(PredictorKind::One);
        let two = run(PredictorKind::Two);
        assert!(two > one, "two-bit {two} must beat one-bit {one} on loop exits");
    }

    #[test]
    fn zero_bit_accuracy_equals_taken_fraction() {
        let mut p = predictor(PredictorKind::Zero, CounterState::StronglyTaken);
        for i in 0..100 {
            let taken = i % 4 != 0; // 75 % taken
            let pred = p.predict(0x10);
            assert!(pred.taken, "always predicts the default direction");
            p.update(0x10, pred.taken, taken, 0x40);
        }
        assert!((p.stats().accuracy() - 0.75).abs() < 1e-9);
        assert_eq!(p.stats().mispredictions(), 25);
    }

    #[test]
    fn global_history_learns_alternating_pattern() {
        let mut p = BranchPredictor::new(BranchPredictorConfig {
            btb_size: 16,
            pht_size: 128,
            predictor_kind: PredictorKind::Two,
            default_state: CounterState::WeaklyNotTaken,
            history: HistoryKind::Global,
            history_bits: 2,
        })
        .unwrap();
        // Pattern T,N,T,N... — with 2 bits of history the predictor separates
        // the two contexts and converges; warm up then measure.
        let mut correct_tail = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let pred = p.predict(0x80);
            p.update(0x80, pred.taken, taken, 0x10);
            if i >= 100 && pred.taken == taken {
                correct_tail += 1;
            }
        }
        assert!(
            correct_tail >= 95,
            "history-based predictor should nail alternation, got {correct_tail}/100"
        );
    }

    #[test]
    fn different_branches_use_different_pht_entries() {
        let mut p = predictor(PredictorKind::Two, CounterState::WeaklyNotTaken);
        let a = p.predict(0x100).pht_index;
        let b = p.predict(0x104).pht_index;
        assert_ne!(a, b);
    }

    #[test]
    fn peek_does_not_change_stats() {
        let p = predictor(PredictorKind::Two, CounterState::WeaklyTaken);
        let before = *p.stats();
        let (_, state) = p.peek(0x40);
        assert_eq!(state, CounterState::WeaklyTaken);
        assert_eq!(*p.stats(), before);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut p = predictor(PredictorKind::Two, CounterState::WeaklyNotTaken);
        let pred = p.predict(0x100);
        p.update(0x100, pred.taken, true, 0x200);
        p.reset();
        assert_eq!(p.stats().predictions, 0);
        assert_eq!(p.predict(0x100).target, None);
        assert_eq!(p.peek(0x100).1, CounterState::WeaklyNotTaken);
    }
}
