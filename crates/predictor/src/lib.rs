//! # rvsim-predictor — branch prediction
//!
//! Implements the paper's Branch Prediction settings tab (§II-C): a branch
//! target buffer (BTB), a pattern history table (PHT) of zero-, one- or
//! two-bit predictors with a configurable default state, and a choice of
//! local or global history shift registers.
//!
//! The fetch unit consults [`BranchPredictor::predict`] for every potential
//! branch; the branch functional unit reports the real outcome through
//! [`BranchPredictor::update`], which also trains the BTB.

#![warn(missing_docs)]

pub mod counter;
pub mod history;
pub mod predictor;

pub use counter::{CounterState, PredictorKind, SaturatingPredictor};
pub use history::{HistoryKind, HistoryRegisters};
pub use predictor::{BranchPredictor, BranchPredictorConfig, Prediction, PredictorStats};
