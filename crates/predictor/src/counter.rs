//! Saturating-counter predictors: zero-bit, one-bit and two-bit state machines.

use serde::{Deserialize, Serialize};

/// Which predictor state machine the PHT entries use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PredictorKind {
    /// "Zero-bit": a static prediction that never changes (the default state
    /// decides taken / not-taken).
    Zero,
    /// One-bit: remembers the last outcome.
    One,
    /// Two-bit saturating counter.
    #[default]
    Two,
}

/// State of one predictor entry.  For the two-bit predictor all four states
/// are meaningful; the one-bit predictor only uses `StronglyNotTaken` /
/// `StronglyTaken`; the zero-bit predictor never leaves its default state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum CounterState {
    /// Strongly not taken (00).
    #[default]
    StronglyNotTaken,
    /// Weakly not taken (01).
    WeaklyNotTaken,
    /// Weakly taken (10).
    WeaklyTaken,
    /// Strongly taken (11).
    StronglyTaken,
}

impl CounterState {
    /// Predicted direction in this state.
    pub fn predicts_taken(self) -> bool {
        matches!(self, CounterState::WeaklyTaken | CounterState::StronglyTaken)
    }

    fn to_level(self) -> i8 {
        match self {
            CounterState::StronglyNotTaken => 0,
            CounterState::WeaklyNotTaken => 1,
            CounterState::WeaklyTaken => 2,
            CounterState::StronglyTaken => 3,
        }
    }

    fn from_level(level: i8) -> Self {
        match level.clamp(0, 3) {
            0 => CounterState::StronglyNotTaken,
            1 => CounterState::WeaklyNotTaken,
            2 => CounterState::WeaklyTaken,
            _ => CounterState::StronglyTaken,
        }
    }
}

/// One predictor entry implementing the configured state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaturatingPredictor {
    kind: PredictorKind,
    state: CounterState,
}

impl SaturatingPredictor {
    /// Create an entry of `kind` starting in `default_state`.
    pub fn new(kind: PredictorKind, default_state: CounterState) -> Self {
        // One-bit predictors collapse the default state to its direction.
        let state = match kind {
            PredictorKind::One => {
                if default_state.predicts_taken() {
                    CounterState::StronglyTaken
                } else {
                    CounterState::StronglyNotTaken
                }
            }
            _ => default_state,
        };
        SaturatingPredictor { kind, state }
    }

    /// Current state (GUI display).
    pub fn state(self) -> CounterState {
        self.state
    }

    /// Predicted direction.
    pub fn predicts_taken(self) -> bool {
        self.state.predicts_taken()
    }

    /// Train with the real outcome.
    pub fn update(&mut self, taken: bool) {
        match self.kind {
            PredictorKind::Zero => {}
            PredictorKind::One => {
                self.state = if taken {
                    CounterState::StronglyTaken
                } else {
                    CounterState::StronglyNotTaken
                };
            }
            PredictorKind::Two => {
                let level = self.state.to_level() + if taken { 1 } else { -1 };
                self.state = CounterState::from_level(level);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bit_never_learns() {
        let mut p = SaturatingPredictor::new(PredictorKind::Zero, CounterState::StronglyTaken);
        assert!(p.predicts_taken());
        p.update(false);
        p.update(false);
        assert!(p.predicts_taken(), "zero-bit predictor is static");

        let mut p = SaturatingPredictor::new(PredictorKind::Zero, CounterState::StronglyNotTaken);
        p.update(true);
        assert!(!p.predicts_taken());
    }

    #[test]
    fn one_bit_flips_on_every_mispredict() {
        let mut p = SaturatingPredictor::new(PredictorKind::One, CounterState::StronglyNotTaken);
        assert!(!p.predicts_taken());
        p.update(true);
        assert!(p.predicts_taken());
        p.update(false);
        assert!(!p.predicts_taken());
    }

    #[test]
    fn one_bit_collapses_default_state_to_direction() {
        let p = SaturatingPredictor::new(PredictorKind::One, CounterState::WeaklyTaken);
        assert_eq!(p.state(), CounterState::StronglyTaken);
        let p = SaturatingPredictor::new(PredictorKind::One, CounterState::WeaklyNotTaken);
        assert_eq!(p.state(), CounterState::StronglyNotTaken);
    }

    #[test]
    fn two_bit_needs_two_mispredicts_to_flip() {
        let mut p = SaturatingPredictor::new(PredictorKind::Two, CounterState::StronglyTaken);
        p.update(false);
        assert!(p.predicts_taken(), "still weakly taken after one not-taken");
        p.update(false);
        assert!(!p.predicts_taken(), "flipped after two");
    }

    #[test]
    fn two_bit_saturates() {
        let mut p = SaturatingPredictor::new(PredictorKind::Two, CounterState::StronglyTaken);
        for _ in 0..10 {
            p.update(true);
        }
        assert_eq!(p.state(), CounterState::StronglyTaken);
        for _ in 0..10 {
            p.update(false);
        }
        assert_eq!(p.state(), CounterState::StronglyNotTaken);
    }

    #[test]
    fn two_bit_walks_through_all_states() {
        let mut p = SaturatingPredictor::new(PredictorKind::Two, CounterState::StronglyNotTaken);
        let mut states = vec![p.state()];
        for _ in 0..3 {
            p.update(true);
            states.push(p.state());
        }
        assert_eq!(
            states,
            vec![
                CounterState::StronglyNotTaken,
                CounterState::WeaklyNotTaken,
                CounterState::WeaklyTaken,
                CounterState::StronglyTaken
            ]
        );
    }

    #[test]
    fn counter_state_ordering_matches_levels() {
        assert!(CounterState::StronglyNotTaken < CounterState::WeaklyNotTaken);
        assert!(CounterState::WeaklyTaken < CounterState::StronglyTaken);
        assert!(!CounterState::WeaklyNotTaken.predicts_taken());
        assert!(CounterState::WeaklyTaken.predicts_taken());
    }
}
