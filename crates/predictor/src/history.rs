//! Local / global branch-history shift registers.
//!
//! The Branch Prediction settings tab lets the user choose between one global
//! history register shared by all branches, or per-branch local history
//! registers (selected by the branch PC).  The history value is combined with
//! the branch PC to index the pattern history table.

use serde::{Deserialize, Serialize};

/// Which history organisation is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HistoryKind {
    /// One shared shift register (gshare-style indexing).
    #[default]
    Global,
    /// A table of per-branch shift registers.
    Local,
}

/// History shift registers (global or local).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryRegisters {
    kind: HistoryKind,
    bits: u32,
    global: u64,
    local: Vec<u64>,
}

impl HistoryRegisters {
    /// Create history storage.  `bits` is the history length (0 disables
    /// history; the PHT is then indexed by PC alone).  `local_entries` sizes
    /// the local-history table (power of two recommended).
    pub fn new(kind: HistoryKind, bits: u32, local_entries: usize) -> Self {
        HistoryRegisters {
            kind,
            bits: bits.min(32),
            global: 0,
            local: vec![0; local_entries.max(1)],
        }
    }

    /// Organisation in use.
    pub fn kind(&self) -> HistoryKind {
        self.kind
    }

    /// History length in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    fn mask(&self) -> u64 {
        if self.bits == 0 {
            0
        } else {
            (1u64 << self.bits) - 1
        }
    }

    fn local_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.local.len()
    }

    /// Current history value for the branch at `pc`.
    pub fn value(&self, pc: u64) -> u64 {
        match self.kind {
            HistoryKind::Global => self.global & self.mask(),
            HistoryKind::Local => self.local[self.local_index(pc)] & self.mask(),
        }
    }

    /// Shift the real outcome of the branch at `pc` into its history register.
    pub fn record(&mut self, pc: u64, taken: bool) {
        if self.bits == 0 {
            return;
        }
        let bit = taken as u64;
        match self.kind {
            HistoryKind::Global => {
                self.global = ((self.global << 1) | bit) & self.mask();
            }
            HistoryKind::Local => {
                let idx = self.local_index(pc);
                self.local[idx] = ((self.local[idx] << 1) | bit) & self.mask();
            }
        }
    }

    /// Clear all history (simulation restart).
    pub fn reset(&mut self) {
        self.global = 0;
        for h in &mut self.local {
            *h = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_history_is_shared_between_branches() {
        let mut h = HistoryRegisters::new(HistoryKind::Global, 4, 16);
        h.record(0x10, true);
        h.record(0x20, false);
        h.record(0x30, true);
        // 0b101 regardless of which PC asks.
        assert_eq!(h.value(0x10), 0b101);
        assert_eq!(h.value(0xffc), 0b101);
    }

    #[test]
    fn local_history_is_per_branch() {
        let mut h = HistoryRegisters::new(HistoryKind::Local, 4, 16);
        h.record(0x10, true);
        h.record(0x10, true);
        h.record(0x20, false);
        assert_eq!(h.value(0x10), 0b11);
        assert_eq!(h.value(0x20), 0b0);
        // Different PC mapping to a different entry starts clean.
        assert_eq!(h.value(0x14), 0);
    }

    #[test]
    fn history_is_masked_to_width() {
        let mut h = HistoryRegisters::new(HistoryKind::Global, 2, 1);
        for _ in 0..10 {
            h.record(0, true);
        }
        assert_eq!(h.value(0), 0b11, "only 2 bits retained");
    }

    #[test]
    fn zero_bits_disables_history() {
        let mut h = HistoryRegisters::new(HistoryKind::Global, 0, 1);
        h.record(0, true);
        h.record(0, true);
        assert_eq!(h.value(0), 0);
    }

    #[test]
    fn width_is_clamped_to_64_safe_range() {
        let h = HistoryRegisters::new(HistoryKind::Global, 40, 1);
        assert_eq!(h.bits(), 32);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = HistoryRegisters::new(HistoryKind::Local, 8, 4);
        h.record(0x10, true);
        h.record(0x20, true);
        h.reset();
        assert_eq!(h.value(0x10), 0);
        assert_eq!(h.value(0x20), 0);
    }

    #[test]
    fn local_aliasing_wraps_by_table_size() {
        let mut h = HistoryRegisters::new(HistoryKind::Local, 4, 2);
        // pc>>2 % 2: 0x10 -> 0, 0x14 -> 1, 0x18 -> 0 (aliases with 0x10).
        h.record(0x10, true);
        assert_eq!(h.value(0x18), 1, "aliased entries share history");
        assert_eq!(h.value(0x14), 0);
    }
}
