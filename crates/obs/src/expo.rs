//! Prometheus text exposition (format version 0.0.4): a builder used by
//! every `/metrics` endpoint, plus a small parser / validator shared by the
//! router's upstream aggregation, the CLI dashboard, the CI smoke job and
//! the format tests.

use crate::hist::HistogramSnapshot;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Content-Type the 0.0.4 text format must be served with.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    pub fn new() -> Exposition {
        Exposition { out: String::with_capacity(4096) }
    }

    /// Open a metric family: `# HELP` and `# TYPE` lines.  `kind` is one
    /// of `counter`, `gauge`, `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One sample with an integer value.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.write_series(name, labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// One sample with a float value.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.write_series(name, labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Complete single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.sample_u64(name, &[], value);
    }

    /// Complete single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "gauge", help);
        self.sample_u64(name, &[], value);
    }

    /// Complete single-sample gauge family with a float value.
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, "gauge", help);
        self.sample_f64(name, &[], value);
    }

    /// `_bucket{le=...}` / `_sum` / `_count` series for one histogram
    /// snapshot under `labels`.  Bounds are rendered in seconds (the
    /// underlying buckets are powers of two in microseconds); `_sum` is in
    /// seconds.  Call [`Exposition::family`] with kind `histogram` first;
    /// multiple label sets may share one family.
    pub fn histogram_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        let bucket_name = format!("{name}_bucket");
        for (bound_us, cumulative) in snapshot.cumulative_buckets() {
            let le = format_le_seconds(bound_us);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample_u64(&bucket_name, &with_le, cumulative);
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample_u64(&bucket_name, &with_le, snapshot.count());
        self.sample_f64(&format!("{name}_sum"), labels, snapshot.sum_us() as f64 / 1e6);
        self.sample_u64(&format!("{name}_count"), labels, snapshot.count());
    }

    /// Complete unlabeled histogram family.
    pub fn histogram(&mut self, name: &str, help: &str, snapshot: &HistogramSnapshot) {
        self.family(name, "histogram", help);
        self.histogram_series(name, &[], snapshot);
    }

    /// Append pre-rendered exposition text (must itself be well-formed).
    pub fn raw(&mut self, text: &str) {
        self.out.push_str(text);
        if !text.is_empty() && !text.ends_with('\n') {
            self.out.push('\n');
        }
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn write_series(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (index, (key, value)) in labels.iter().enumerate() {
                if index > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{key}=\"{}\"", escape_label(value));
            }
            self.out.push('}');
        }
    }
}

/// Histogram `le` bound for a power-of-two microsecond upper bound,
/// rendered in seconds.  Exact decimal (2^i · 10⁻⁶ is always finite), so
/// every backend renders identical strings and the router merge can match
/// buckets textually.
fn format_le_seconds(bound_us: u64) -> String {
    let seconds = bound_us as f64 / 1e6;
    format!("{seconds}")
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn unescape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (`foo_bucket`, not `foo`, for histogram buckets).
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// Label value for `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Labels minus `le`, the identity of a histogram series.
    fn identity_labels(&self) -> Vec<(String, String)> {
        self.labels.iter().filter(|(k, _)| k != "le").cloned().collect()
    }
}

/// One `# TYPE` family with its samples in document order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    pub name: String,
    pub help: Option<String>,
    /// `counter` / `gauge` / `histogram`, `None` for untyped samples.
    pub kind: Option<String>,
    pub samples: Vec<Sample>,
}

/// Parse a 0.0.4 text document into families (document order preserved).
/// Histogram `_bucket` / `_sum` / `_count` samples attach to their base
/// family.  Unknown-typed samples get an implicit untyped family.
pub fn parse_exposition(text: &str) -> Result<Vec<MetricFamily>, String> {
    let mut families: Vec<MetricFamily> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let family_entry = |families: &mut Vec<MetricFamily>,
                        index: &mut HashMap<String, usize>,
                        name: &str|
     -> usize {
        *index.entry(name.to_string()).or_insert_with(|| {
            families.push(MetricFamily {
                name: name.to_string(),
                help: None,
                kind: None,
                samples: Vec::new(),
            });
            families.len() - 1
        })
    };

    for (line_no, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", line_no + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            let at = family_entry(&mut families, &mut index, name);
            families[at].help = Some(help.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| err("TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(err("unknown metric type"));
            }
            let at = family_entry(&mut families, &mut index, name);
            families[at].kind = Some(kind.to_string());
        } else if line.starts_with('#') {
            continue; // other comments
        } else {
            let sample = parse_sample(line).map_err(|what| err(&what))?;
            // A histogram child series attaches to its base family.
            let family_name = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = sample.name.strip_suffix(suffix)?;
                    let at = *index.get(base)?;
                    (families[at].kind.as_deref() == Some("histogram")).then(|| base.to_string())
                })
                .unwrap_or_else(|| sample.name.clone());
            let at = family_entry(&mut families, &mut index, &family_name);
            families[at].samples.push(sample);
        }
    }
    Ok(families)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (series, value) = line.rsplit_once(' ').ok_or("sample without value")?;
    let value: f64 = value.parse().map_err(|_| "unparseable sample value".to_string())?;
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            let mut labels = Vec::new();
            let mut remaining = body;
            while !remaining.is_empty() {
                let (key, rest) = remaining.split_once("=\"").ok_or("malformed label")?;
                // Find the closing quote, honouring backslash escapes.
                let mut end = None;
                let bytes = rest.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            end = Some(i);
                            break;
                        }
                        _ => i += 1,
                    }
                }
                let end = end.ok_or("unterminated label value")?;
                labels.push((key.trim().to_string(), unescape_label(&rest[..end])));
                remaining = rest[end + 1..].trim_start_matches(',');
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(Sample { name, labels, value })
}

/// Parse and check format invariants: every sample is typed, histogram
/// buckets are `le`-sorted with non-decreasing cumulative counts, the
/// `+Inf` bucket matches `_count`, `_sum` exists, and no series repeats.
pub fn validate_exposition(text: &str) -> Result<Vec<MetricFamily>, String> {
    let families = parse_exposition(text)?;
    let mut seen_series: HashMap<String, ()> = HashMap::new();
    for family in &families {
        let kind = family
            .kind
            .as_deref()
            .ok_or_else(|| format!("family {} has samples but no # TYPE", family.name))?;
        for sample in &family.samples {
            let series = format!("{}{:?}", sample.name, sample.labels);
            if seen_series.insert(series, ()).is_some() {
                return Err(format!("duplicate series for {}", sample.name));
            }
            if !sample.value.is_finite() {
                return Err(format!("non-finite value for {}", sample.name));
            }
            if kind == "counter" && sample.value < 0.0 {
                return Err(format!("negative counter {}", sample.name));
            }
        }
        if kind == "histogram" {
            validate_histogram(family)?;
        }
    }
    Ok(families)
}

/// One histogram series under validation: cumulative `(le, count)` buckets
/// plus the `_sum` and `_count` samples once seen.
type HistogramSeries = (Vec<(f64, f64)>, Option<f64>, Option<f64>);

fn validate_histogram(family: &MetricFamily) -> Result<(), String> {
    // Group bucket/sum/count samples by identity labels (labels minus le).
    let mut series: HashMap<String, HistogramSeries> = HashMap::new();
    let bucket_name = format!("{}_bucket", family.name);
    let sum_name = format!("{}_sum", family.name);
    let count_name = format!("{}_count", family.name);
    for sample in &family.samples {
        let identity = format!("{:?}", sample.identity_labels());
        let entry = series.entry(identity).or_default();
        if sample.name == bucket_name {
            let le = sample.label("le").ok_or_else(|| format!("{bucket_name} without le"))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().map_err(|_| format!("bad le {le:?}"))?
            };
            entry.0.push((bound, sample.value));
        } else if sample.name == sum_name {
            entry.1 = Some(sample.value);
        } else if sample.name == count_name {
            entry.2 = Some(sample.value);
        } else {
            return Err(format!("unexpected sample {} in histogram {}", sample.name, family.name));
        }
    }
    for (identity, (buckets, sum, count)) in &series {
        if buckets.is_empty() {
            return Err(format!("histogram {} {identity} has no buckets", family.name));
        }
        for window in buckets.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(format!("histogram {} {identity} le not increasing", family.name));
            }
            if window[1].1 < window[0].1 {
                return Err(format!("histogram {} {identity} buckets not cumulative", family.name));
            }
        }
        let (last_bound, last_count) = *buckets.last().expect("non-empty");
        if !last_bound.is_infinite() {
            return Err(format!("histogram {} {identity} missing +Inf bucket", family.name));
        }
        let count =
            count.ok_or_else(|| format!("histogram {} {identity} missing _count", family.name))?;
        if (count - last_count).abs() > 0.5 {
            return Err(format!("histogram {} {identity} +Inf != _count", family.name));
        }
        if sum.is_none() {
            return Err(format!("histogram {} {identity} missing _sum", family.name));
        }
    }
    Ok(())
}

/// Merge several exposition documents by summing samples with the same
/// `(name, labels)` across documents, then render the result with family
/// names rewritten through `rename` (families mapped to `None` are
/// dropped).  Summing histogram children per-`le` is exactly a bucket-wise
/// histogram merge, so cumulative invariants survive.  `# HELP` / `# TYPE`
/// come from the first document that carries the family.
pub fn merge_and_rename(
    documents: &[String],
    mut rename: impl FnMut(&str) -> Option<String>,
) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut merged: HashMap<String, MetricFamily> = HashMap::new();
    for document in documents {
        let Ok(families) = parse_exposition(document) else { continue };
        for family in families {
            if !merged.contains_key(&family.name) {
                order.push(family.name.clone());
                merged.insert(
                    family.name.clone(),
                    MetricFamily { samples: Vec::new(), ..family.clone() },
                );
            }
            let target = merged.get_mut(&family.name).expect("just inserted");
            if target.kind.is_none() {
                target.kind = family.kind.clone();
            }
            for sample in family.samples {
                match target
                    .samples
                    .iter_mut()
                    .find(|s| s.name == sample.name && s.labels == sample.labels)
                {
                    Some(existing) => existing.value += sample.value,
                    None => target.samples.push(sample),
                }
            }
        }
    }

    let mut out = Exposition::new();
    for name in &order {
        let family = &merged[name];
        let Some(new_name) = rename(name) else { continue };
        if family.samples.is_empty() {
            continue;
        }
        out.family(
            &new_name,
            family.kind.as_deref().unwrap_or("untyped"),
            family.help.as_deref().unwrap_or("aggregated upstream metric"),
        );
        for sample in &family.samples {
            let sample_name = match sample.name.strip_prefix(name.as_str()) {
                Some(suffix) => format!("{new_name}{suffix}"),
                None => new_name.clone(),
            };
            let labels: Vec<(&str, &str)> =
                sample.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            if sample.value.fract() == 0.0 && sample.value.abs() < 9.0e15 {
                out.sample_u64(&sample_name, &labels, sample.value as u64);
            } else {
                out.sample_f64(&sample_name, &labels, sample.value);
            }
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_document() -> String {
        let hist = Histogram::new();
        for us in [3u64, 17, 200, 4_000, 250_000] {
            hist.record(us);
        }
        let mut expo = Exposition::new();
        expo.counter("rvsim_http_requests_total", "Requests served.", 42);
        expo.gauge("rvsim_connections_open", "Open connections.", 3);
        expo.family("rvsim_request_phase_seconds", "histogram", "Phase latency.");
        expo.histogram_series(
            "rvsim_request_phase_seconds",
            &[("phase", "handler")],
            &hist.snapshot(),
        );
        expo.histogram_series(
            "rvsim_request_phase_seconds",
            &[("phase", "queue_wait")],
            &hist.snapshot(),
        );
        expo.finish()
    }

    #[test]
    fn builder_output_validates() {
        let text = sample_document();
        let families = validate_exposition(&text).expect("valid exposition");
        assert_eq!(families.len(), 3);
        assert_eq!(families[0].kind.as_deref(), Some("counter"));
        assert_eq!(families[0].samples[0].value, 42.0);
        let hist_family = &families[2];
        assert_eq!(hist_family.kind.as_deref(), Some("histogram"));
        // 2 label sets × (28 finite + Inf + sum + count).
        assert_eq!(hist_family.samples.len(), 2 * (crate::BUCKETS + 3));
    }

    #[test]
    fn parser_reads_labels_and_escapes() {
        let text = "# TYPE demo gauge\ndemo{path=\"a\\\"b\\\\c\",other=\"x\"} 1.5\n";
        let families = parse_exposition(text).unwrap();
        let sample = &families[0].samples[0];
        assert_eq!(sample.label("path"), Some("a\"b\\c"));
        assert_eq!(sample.label("other"), Some("x"));
        assert_eq!(sample.value, 1.5);
    }

    #[test]
    fn validator_rejects_broken_histograms() {
        let missing_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_exposition(missing_inf).unwrap_err().contains("+Inf"));
        let non_cumulative = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(non_cumulative).unwrap_err().contains("cumulative"));
        let untyped = "loose_metric 1\n";
        assert!(validate_exposition(untyped).unwrap_err().contains("no # TYPE"));
        let count_mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(validate_exposition(count_mismatch).unwrap_err().contains("_count"));
    }

    #[test]
    fn merge_sums_series_and_preserves_histogram_invariants() {
        let a = sample_document();
        let b = sample_document();
        let merged = merge_and_rename(&[a, b], |name| Some(format!("up_{name}")));
        let families = validate_exposition(&merged).expect("merged output stays valid");
        let requests = families.iter().find(|f| f.name == "up_rvsim_http_requests_total").unwrap();
        assert_eq!(requests.samples[0].value, 84.0);
        let phases = families.iter().find(|f| f.name == "up_rvsim_request_phase_seconds").unwrap();
        let handler_count = phases
            .samples
            .iter()
            .find(|s| s.name.ends_with("_count") && s.label("phase") == Some("handler"))
            .unwrap();
        assert_eq!(handler_count.value, 10.0);
    }

    #[test]
    fn merge_drops_families_renamed_to_none() {
        let doc = "# TYPE keep counter\nkeep 1\n# TYPE drop counter\ndrop 1\n".to_string();
        let merged = merge_and_rename(&[doc], |name| (name == "keep").then(|| "kept".to_string()));
        assert!(merged.contains("kept 1"));
        assert!(!merged.contains("drop"));
    }
}
