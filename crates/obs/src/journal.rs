//! Always-on fixed-capacity event journal.
//!
//! A ring of plain-old-data [`Event`] slots, each guarded by its own
//! seqlock version word.  Writers claim a slot by bumping its version to
//! odd, copy the event in, then publish an even version that encodes the
//! global sequence number.  Readers copy the slot and re-check the version;
//! a torn read (writer raced the copy) is simply skipped.  No locks, no
//! allocation per event — the write path is one `fetch_add`, one CAS loop
//! (uncontended in practice: contention requires two writers lapping the
//! whole ring simultaneously) and a release store.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// What happened.  The numeric discriminants are stable within a build but
/// not across versions; the journal renders names, not numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A connection was accepted. `a` = open connections after the accept.
    ConnOpen,
    /// A connection closed. `a` = close reason code (see net::CloseKind),
    /// `b` = requests served on it.
    ConnClose,
    /// A dispatched request completed. `a` = HTTP status, `b` = total µs;
    /// `phases_us` carries header-read / queue-wait / handler / write-drain.
    Request,
    /// Same as [`EventKind::Request`] but over the slow-request threshold.
    SlowRequest,
    /// A step request joined an in-flight coalesced batch. `a` = waiters
    /// sharing the batch, `b` = cycles stepped.
    CoalesceJoin,
    /// A checkpoint sweep finished. `a` = sessions written, `b` = sweep µs.
    CheckpointSweep,
    /// A circuit breaker opened. `a` = backend index.
    BreakerOpen,
    /// A circuit breaker closed after a successful probe. `a` = backend.
    BreakerClose,
    /// Health probing declared a backend dead. `a` = backend index.
    BackendDead,
    /// A dead backend came back and rejoined the rings. `a` = backend.
    BackendRevived,
    /// Failover re-own finished. `a` = sessions recovered, `b` = µs spent.
    FailoverReown,
    /// One session was restored from a checkpoint. `session` is set,
    /// `a` = backend it was re-owned to, `b` = checkpoint staleness ms.
    SessionRestore,
    /// The router forwarded a request upstream. `a` = backend index,
    /// `b` = upstream latency µs.
    RouterForward,
    /// A drain completed. `a` = backend index, `b` = sessions migrated.
    Drain,
    /// One session moved between backends. `a` = from, `b` = to backend.
    SessionMigrated,
}

impl EventKind {
    /// Stable lowercase name used in the rendered JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ConnOpen => "conn_open",
            EventKind::ConnClose => "conn_close",
            EventKind::Request => "request",
            EventKind::SlowRequest => "slow_request",
            EventKind::CoalesceJoin => "coalesce_join",
            EventKind::CheckpointSweep => "checkpoint_sweep",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerClose => "breaker_close",
            EventKind::BackendDead => "backend_dead",
            EventKind::BackendRevived => "backend_revived",
            EventKind::FailoverReown => "failover_reown",
            EventKind::SessionRestore => "session_restore",
            EventKind::RouterForward => "router_forward",
            EventKind::Drain => "drain",
            EventKind::SessionMigrated => "session_migrated",
        }
    }

    /// Names of the kind-specific `a`/`b` payload fields, for rendering.
    fn field_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::ConnOpen => ("open_conns", "b"),
            EventKind::ConnClose => ("reason", "requests"),
            EventKind::Request | EventKind::SlowRequest => ("status", "total_us"),
            EventKind::CoalesceJoin => ("waiters", "cycles"),
            EventKind::CheckpointSweep => ("sessions", "sweep_us"),
            EventKind::BreakerOpen
            | EventKind::BreakerClose
            | EventKind::BackendDead
            | EventKind::BackendRevived => ("backend", "b"),
            EventKind::FailoverReown => ("recovered", "reown_us"),
            EventKind::SessionRestore => ("backend", "staleness_ms"),
            EventKind::RouterForward => ("backend", "upstream_us"),
            EventKind::Drain => ("backend", "migrated"),
            EventKind::SessionMigrated => ("from", "to"),
        }
    }

    /// Duration-like payload used by the `min_us` trace filter, if any.
    fn duration_us(self, event: &Event) -> Option<u64> {
        match self {
            EventKind::Request | EventKind::SlowRequest => Some(event.b),
            EventKind::RouterForward => Some(event.b),
            EventKind::CheckpointSweep => Some(event.b),
            EventKind::FailoverReown => Some(event.b),
            _ => None,
        }
    }
}

/// No-session sentinel for [`Event::session`].
pub const NO_SESSION: u64 = u64::MAX;

/// One journal entry.  Plain old data so the seqlock copy is a memcpy.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Microseconds since the Unix epoch (journal-local monotonic clock
    /// anchored to wall time at journal creation).
    pub ts_us: u64,
    pub kind: EventKind,
    /// 0 when the event is not tied to a request.
    pub request_id: u64,
    /// [`NO_SESSION`] when the event is not tied to a session.
    pub session: u64,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub b: u64,
    /// Phase timings for request events, zeros otherwise.
    pub phases_us: [u32; 4],
}

impl Event {
    pub fn new(kind: EventKind, ts_us: u64) -> Event {
        Event { ts_us, kind, request_id: 0, session: NO_SESSION, a: 0, b: 0, phases_us: [0; 4] }
    }

    pub fn request(mut self, request_id: u64) -> Event {
        self.request_id = request_id;
        self
    }

    pub fn session(mut self, session: u64) -> Event {
        self.session = session;
        self
    }

    pub fn fields(mut self, a: u64, b: u64) -> Event {
        self.a = a;
        self.b = b;
        self
    }

    pub fn phases(mut self, phases_us: [u32; 4]) -> Event {
        self.phases_us = phases_us;
        self
    }

    /// Render as one JSON object (one line of `/admin/trace` output).
    pub fn render_json(&self, seq: u64, out: &mut String) {
        use std::fmt::Write;
        let (a_name, b_name) = self.kind.field_names();
        let _ = write!(
            out,
            "{{\"seq\":{seq},\"ts_us\":{},\"event\":\"{}\"",
            self.ts_us,
            self.kind.name()
        );
        if self.request_id != 0 {
            let _ = write!(out, ",\"request_id\":\"{:016x}\"", self.request_id);
        }
        if self.session != NO_SESSION {
            let _ = write!(out, ",\"session\":{}", self.session);
        }
        let _ = write!(out, ",\"{a_name}\":{}", self.a);
        if b_name != "b" {
            let _ = write!(out, ",\"{b_name}\":{}", self.b);
        }
        if matches!(self.kind, EventKind::Request | EventKind::SlowRequest) {
            let _ = write!(
                out,
                ",\"phases_us\":{{\"header_read\":{},\"queue_wait\":{},\"handler\":{},\"write_drain\":{}}}",
                self.phases_us[0], self.phases_us[1], self.phases_us[2], self.phases_us[3]
            );
        }
        out.push('}');
    }
}

struct Slot {
    /// Seqlock word: 0 = empty, odd = being written, even `2*(seq+1)` =
    /// holds the event with global sequence number `seq`.
    version: AtomicU64,
    event: UnsafeCell<Event>,
}

// The UnsafeCell is only read under the seqlock protocol above.
unsafe impl Sync for Slot {}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            event: UnsafeCell::new(Event::new(EventKind::ConnOpen, 0)),
        }
    }
}

/// Fixed-capacity, lock-free, always-on event ring.
pub struct Journal {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    epoch_unix_us: u64,
    epoch: Instant,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl Journal {
    /// Journal holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 16).
    pub fn new(capacity: usize) -> Journal {
        let capacity = capacity.max(16).next_power_of_two();
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::empty()).collect();
        Journal {
            slots: slots.into_boxed_slice(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            epoch_unix_us: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since the Unix epoch, from the journal's monotonic
    /// clock (safe under wall-clock steps).
    pub fn now_us(&self) -> u64 {
        self.epoch_unix_us + self.epoch.elapsed().as_micros() as u64
    }

    /// Total events ever recorded (recent `capacity` of them retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Append one event, overwriting the oldest slot when full.
    pub fn record(&self, event: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Claim: flip to odd. Lost races only happen when another writer
        // laps the entire ring onto this slot mid-write; the newer write
        // wins and this event is dropped, which matches ring semantics.
        let mut current = slot.version.load(Ordering::Acquire);
        loop {
            if current % 2 == 1 || current >= 2 * (seq + 1) {
                return;
            }
            match slot.version.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        unsafe { *slot.event.get() = event };
        slot.version.store(2 * (seq + 1), Ordering::Release);
    }

    /// Copy out the currently-readable events, oldest first, with their
    /// sequence numbers.  Slots being written (or overwritten during the
    /// copy) are skipped.
    pub fn snapshot(&self) -> Vec<(u64, Event)> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.version.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let event = unsafe { *slot.event.get() };
            if slot.version.load(Ordering::Acquire) != before {
                continue;
            }
            events.push((before / 2 - 1, event));
        }
        events.sort_unstable_by_key(|&(seq, _)| seq);
        events
    }

    /// Render the `n` most recent events whose duration (for events that
    /// have one) is at least `min_us`, as newline-delimited JSON.
    pub fn render_trace(&self, n: usize, min_us: u64) -> String {
        let events = self.snapshot();
        let filtered: Vec<&(u64, Event)> = events
            .iter()
            .filter(|(_, e)| e.kind.duration_us(e).map(|us| us >= min_us).unwrap_or(min_us == 0))
            .collect();
        let start = filtered.len().saturating_sub(n);
        let mut out = String::with_capacity((filtered.len() - start) * 160);
        for (seq, event) in filtered[start..].iter() {
            event.render_json(*seq, &mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let journal = Journal::new(16);
        for i in 0..40u64 {
            journal.record(Event::new(EventKind::Request, journal.now_us()).fields(200, i));
        }
        let events = journal.snapshot();
        assert_eq!(events.len(), 16);
        // Oldest surviving event is #24 (40 - 16).
        assert_eq!(events.first().unwrap().1.b, 24);
        assert_eq!(events.last().unwrap().1.b, 39);
        let seqs: Vec<u64> = events.iter().map(|&(s, _)| s).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_writers_never_tear_reads() {
        let journal = std::sync::Arc::new(Journal::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t: u64| {
                let journal = journal.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // a == b in every event; a torn read would break it.
                        let v = t * 5_000 + i;
                        journal.record(
                            Event::new(EventKind::RouterForward, journal.now_us()).fields(v, v),
                        );
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for (_, event) in journal.snapshot() {
                assert_eq!(event.a, event.b, "torn journal read");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(journal.recorded(), 20_000);
        assert_eq!(journal.snapshot().len(), 64);
    }

    #[test]
    fn trace_filters_by_duration_and_count() {
        let journal = Journal::new(64);
        journal.record(Event::new(EventKind::BreakerOpen, 1).fields(0, 0));
        for us in [10u64, 5_000, 20_000] {
            journal.record(
                Event::new(EventKind::Request, journal.now_us())
                    .request(0xabc)
                    .fields(200, us)
                    .phases([1, 2, 3, 4]),
            );
        }
        // min_us filters request events but keeps duration-less ops events
        // only when min_us == 0.
        let all = journal.render_trace(100, 0);
        assert_eq!(all.lines().count(), 4);
        let slow = journal.render_trace(100, 1_000);
        assert_eq!(slow.lines().count(), 2);
        assert!(slow.contains("\"total_us\":5000"));
        let capped = journal.render_trace(1, 1_000);
        assert_eq!(capped.lines().count(), 1);
        assert!(capped.contains("\"total_us\":20000"));
        assert!(capped.contains("\"request_id\":\"0000000000000abc\""));
        assert!(capped.contains(
            "\"phases_us\":{\"header_read\":1,\"queue_wait\":2,\"handler\":3,\"write_drain\":4}"
        ));
    }
}
