//! Lock-free log₂-bucketed latency histogram.
//!
//! Values are microseconds.  Bucket `i` counts values `v` with
//! `v <= 2^i` µs (cumulative-style upper bounds, one bucket per power of
//! two), plus an overflow bucket for anything past `2^(BUCKETS-1)` µs
//! (~134 s).  Recording is four relaxed atomic RMWs — one bucket add, a
//! count add, a sum add and a max — so it is safe on the cached-GetState
//! fast path.  Quantiles interpolate within the winning bucket, which at
//! power-of-two resolution bounds the relative error at 2×; the exact
//! `count`, `sum` and `max` are always available.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets: upper bounds 2^0 .. 2^(BUCKETS-1) µs.
pub const BUCKETS: usize = 28;

/// Atomic, mergeable latency histogram. All methods take `&self`.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Index of the finite bucket for `us`, or `BUCKETS` for overflow.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        (64 - (us - 1).leading_zeros()) as usize
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one latency observation. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, us: u64) {
        let index = bucket_index(us);
        if index < BUCKETS {
            self.buckets[index].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Record one timed observation standing in for `weight` requests — the
    /// sampled-fast-path variant of [`record`](Self::record).  Bucket,
    /// count and sum all advance by `weight` (sum by `us * weight`), so the
    /// histogram keeps its Prometheus invariant (`count` = Σ buckets) and
    /// its quantiles stay unbiased while only one request in `weight` pays
    /// for the clock reads.  Counts are approximate to within `weight - 1`
    /// trailing untimed requests.
    #[inline]
    pub fn record_weighted(&self, us: u64, weight: u64) {
        let index = bucket_index(us);
        if index < BUCKETS {
            self.buckets[index].fetch_add(weight, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(weight, Ordering::Relaxed);
        }
        self.count.fetch_add(weight, Ordering::Relaxed);
        self.sum.fetch_add(us * weight, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the current state.  Concurrent recording
    /// may skew individual cells by in-flight operations; totals are exact
    /// once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (cell, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *cell = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Fold another histogram's counts into this one (bucket-wise add).
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (bucket, &add) in self.buckets.iter().zip(&other.buckets) {
            if add > 0 {
                bucket.fetch_add(add, Ordering::Relaxed);
            }
        }
        if other.overflow > 0 {
            self.overflow.fetch_add(other.overflow, Ordering::Relaxed);
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }
}

/// Plain-value copy of a [`Histogram`], used for quantile math, merging
/// and exposition rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub overflow: u64,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], overflow: 0, count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum
    }

    pub fn max_us(&self) -> u64 {
        self.max
    }

    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in microseconds by linear
    /// interpolation inside the winning bucket; the top end is clamped to
    /// the exact observed max.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (index, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            let next = cumulative + in_bucket;
            if rank <= next as f64 {
                let lower = if index == 0 { 0u64 } else { 1u64 << (index - 1) };
                let upper = 1u64 << index;
                let fraction = (rank - cumulative as f64) / in_bucket as f64;
                let estimate = lower as f64 + fraction * (upper - lower) as f64;
                return estimate.min(self.max as f64);
            }
            cumulative = next;
        }
        // Rank landed in the overflow bucket: all we know is the max.
        self.max as f64
    }

    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    pub fn p90_us(&self) -> f64 {
        self.quantile_us(0.90)
    }

    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    /// Bucket-wise sum of two snapshots.
    pub fn merged(mut self, other: &HistogramSnapshot) -> HistogramSnapshot {
        for (cell, &add) in self.buckets.iter_mut().zip(&other.buckets) {
            *cell += add;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self
    }

    /// Cumulative `(upper_bound_us, count)` pairs for Prometheus
    /// `_bucket{le=...}` series; the final `+Inf` bucket equals `count`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(BUCKETS);
        let mut cumulative = 0u64;
        for (index, &in_bucket) in self.buckets.iter().enumerate() {
            cumulative += in_bucket;
            out.push((1u64 << index, cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 27), 27);
        assert_eq!(bucket_index((1 << 27) + 1), 28);
    }

    #[test]
    fn count_sum_max_are_exact() {
        let hist = Histogram::new();
        for us in 0..1000u64 {
            hist.record(us);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum_us(), (0..1000).sum::<u64>());
        assert_eq!(snap.max_us(), 999);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let hist = Histogram::new();
        // Uniform 1..=1000 µs: p50 ≈ 500, p99 ≈ 990.
        for us in 1..=1000u64 {
            hist.record(us);
        }
        let snap = hist.snapshot();
        let p50 = snap.p50_us();
        let p99 = snap.p99_us();
        // Log buckets guarantee at worst 2× relative error.
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!((500.0..=1000.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        assert_eq!(snap.quantile_us(1.0), 1000.0);
    }

    #[test]
    fn eight_threads_record_with_exact_totals() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 100_000;
        let hist = std::sync::Arc::new(Histogram::new());
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        hist.record(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        let snap = hist.snapshot();
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.count(), n);
        assert_eq!(snap.sum_us(), n * (n - 1) / 2);
        assert_eq!(snap.max_us(), n - 1);
        let bucketed: u64 = snap.buckets.iter().sum::<u64>() + snap.overflow;
        assert_eq!(bucketed, n);
    }

    #[test]
    fn weighted_records_scale_count_and_sum() {
        let weighted = Histogram::new();
        let plain = Histogram::new();
        for us in [1u64, 10, 100, 1000] {
            weighted.record_weighted(us, 16);
            for _ in 0..16 {
                plain.record(us);
            }
        }
        assert_eq!(weighted.snapshot(), plain.snapshot());
    }

    #[test]
    fn merge_is_bucket_wise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for us in [1u64, 10, 100, 1000] {
            a.record(us);
            b.record(us * 2);
        }
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged.count(), 8);
        assert_eq!(merged.sum_us(), 1111 + 2222);
        assert_eq!(merged.max_us(), 2000);
        a.merge(&b.snapshot());
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn cumulative_buckets_are_monotonic_and_complete() {
        let hist = Histogram::new();
        for us in [0u64, 1, 5, 1 << 20, u64::from(u32::MAX)] {
            hist.record(us);
        }
        let snap = hist.snapshot();
        let cumulative = snap.cumulative_buckets();
        let mut previous = 0;
        for &(_, count) in &cumulative {
            assert!(count >= previous);
            previous = count;
        }
        assert_eq!(previous + snap.overflow, snap.count());
    }
}
