//! Observability primitives shared by every tier of the serving stack.
//!
//! Three building blocks, all designed for the hot path:
//!
//! - [`Histogram`]: a log₂-bucketed latency histogram whose recording path
//!   is a handful of relaxed atomic adds — no locks, no allocation.
//!   Snapshots are mergeable (bucket-wise addition), quote p50/p90/p99/max,
//!   and render directly as Prometheus histogram series.
//! - [`Journal`]: an always-on fixed-capacity ring of structured [`Event`]s
//!   guarded by per-slot seqlocks.  Writers never block readers and vice
//!   versa; a reader that races a writer simply skips the torn slot.
//! - [`expo`]: a Prometheus text-exposition builder plus a small parser /
//!   validator, shared by `/metrics` rendering, the router's upstream
//!   aggregation, the CLI dashboard and the format tests.
//!
//! [`Observer`] bundles one journal, the four per-phase connection
//! histograms and a request-id mint into the per-process-instance handle
//! the front end and its handler share.

pub mod expo;
pub mod hist;
pub mod journal;

pub use expo::{parse_exposition, validate_exposition, Exposition, MetricFamily, Sample};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use journal::{Event, EventKind, Journal};

use std::sync::atomic::{AtomicU64, Ordering};

/// Connection phases timed by the front end, in recording order.
pub const PHASES: [&str; 4] = ["header_read", "queue_wait", "handler", "write_drain"];

/// Index of the header-read phase in [`Observer::phase`].
pub const PHASE_HEADER_READ: usize = 0;
/// Index of the queue-wait phase in [`Observer::phase`].
pub const PHASE_QUEUE_WAIT: usize = 1;
/// Index of the handler phase in [`Observer::phase`].
pub const PHASE_HANDLER: usize = 2;
/// Index of the write-drain phase in [`Observer::phase`].
pub const PHASE_WRITE_DRAIN: usize = 3;

/// Default journal capacity (events). Power of two so the ring index is a
/// mask, sized to hold a few seconds of dispatch events under load.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Default slow-request threshold: any request slower than this is
/// force-journaled with its full phase breakdown.
pub const DEFAULT_SLOW_REQUEST_US: u64 = 100_000;

/// Per-process-instance observability handle: the journal, the per-phase
/// connection histograms and the request-id mint.  The network front end
/// and the [`ApiHandler`](../rvsim_net) it serves share one `Observer`, so
/// handler-side events (coalescing joins, checkpoint sweeps) land in the
/// same ring as connection lifecycle events.
#[derive(Debug)]
pub struct Observer {
    /// Structured event ring, always on.
    pub journal: Journal,
    /// Per-phase connection latency, indexed by `PHASE_*`.
    pub phase: [Histogram; 4],
    /// Requests slower than this many microseconds (all phases summed) are
    /// journaled as [`EventKind::SlowRequest`].
    pub slow_request_us: AtomicU64,
    request_seq: AtomicU64,
    id_seed: u64,
}

impl Observer {
    /// Observer with a journal of `journal_capacity` events (rounded up to
    /// a power of two).
    pub fn new(journal_capacity: usize) -> Observer {
        static OBSERVER_SEQ: AtomicU64 = AtomicU64::new(0);
        let seed = splitmix64(
            (u64::from(std::process::id()) << 20) ^ OBSERVER_SEQ.fetch_add(1, Ordering::Relaxed),
        );
        Observer {
            journal: Journal::new(journal_capacity),
            phase: Default::default(),
            slow_request_us: AtomicU64::new(DEFAULT_SLOW_REQUEST_US),
            request_seq: AtomicU64::new(0),
            id_seed: seed,
        }
    }

    /// Mint a fresh nonzero request id.  One atomic increment plus a bit
    /// mix; ids from distinct observers (distinct seeds) do not collide in
    /// practice.
    pub fn mint_request_id(&self) -> u64 {
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.id_seed ^ seq);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Current slow-request threshold in microseconds.
    pub fn slow_request_us(&self) -> u64 {
        self.slow_request_us.load(Ordering::Relaxed)
    }

    /// Record the four phase timings of one completed request.  The
    /// histograms always see it; the journal sees it only when it is
    /// interesting — over the slow-request threshold (journaled as
    /// [`EventKind::SlowRequest`]) or an error status (journaled as
    /// [`EventKind::Request`]).  Healthy fast requests stay out of the ring
    /// so a load burst does not wash away the operational events around it;
    /// a threshold of 0 force-journals everything.
    pub fn record_request(&self, request_id: u64, session: u64, status: u64, phases_us: [u32; 4]) {
        for (hist, us) in self.phase.iter().zip(phases_us) {
            hist.record(u64::from(us));
        }
        let total: u64 = phases_us.iter().map(|&us| u64::from(us)).sum();
        let slow = total >= self.slow_request_us();
        if !slow && status < 400 {
            return;
        }
        let kind = if slow { EventKind::SlowRequest } else { EventKind::Request };
        self.journal.record(
            Event::new(kind, self.journal.now_us())
                .request(request_id)
                .session(session)
                .fields(status, total)
                .phases(phases_us),
        );
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

/// Render a request id as the 16-hex-digit wire form carried by the
/// `x-rvsim-request-id` header.
pub fn format_request_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Allocation-free [`format_request_id`]: writes into a caller-provided
/// buffer (for the per-request response-header echo on the hot path).
pub fn write_request_id(id: u64, buf: &mut [u8; 16]) -> &str {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for (nibble, out) in buf.iter_mut().enumerate() {
        *out = HEX[((id >> (60 - 4 * nibble)) & 0xf) as usize];
    }
    std::str::from_utf8(buf).expect("hex digits are ASCII")
}

/// Parse a request id from its wire form.  Returns `None` for anything but
/// 1–16 hex digits (0 — "no id" — parses but is treated as absent by
/// callers).
pub fn parse_request_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s.trim(), 16).ok()
}

/// SplitMix64 bit mixer (public-domain constants); also used by the router
/// rings.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_nonzero_and_distinct() {
        let obs = Observer::new(64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = obs.mint_request_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate request id {id:#x}");
        }
    }

    #[test]
    fn request_id_round_trips_through_wire_form() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_request_id(&format_request_id(id)), Some(id));
        }
        assert_eq!(parse_request_id(""), None);
        assert_eq!(parse_request_id("xyz"), None);
        assert_eq!(parse_request_id("00000000000000000"), None);
    }

    #[test]
    fn slow_requests_are_force_journaled() {
        let obs = Observer::new(64);
        obs.slow_request_us.store(1_000, Ordering::Relaxed);
        obs.record_request(6, 1, 200, [10, 10, 10, 10]); // fast + healthy: no event
        obs.record_request(7, 1, 503, [10, 10, 10, 10]); // error status: journaled
        obs.record_request(8, 1, 200, [10, 10, 2_000, 10]); // slow: journaled
        let events = obs.journal.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].1.kind, EventKind::Request);
        assert_eq!(events[0].1.request_id, 7);
        assert_eq!(events[1].1.kind, EventKind::SlowRequest);
        assert_eq!(events[1].1.request_id, 8);
        assert_eq!(obs.phase[PHASE_HANDLER].snapshot().count(), 3);
    }

    #[test]
    fn zero_threshold_journals_every_request() {
        let obs = Observer::new(64);
        obs.slow_request_us.store(0, Ordering::Relaxed);
        obs.record_request(9, 1, 200, [0, 0, 0, 0]);
        assert_eq!(obs.journal.snapshot().len(), 1);
    }

    #[test]
    fn stack_request_id_matches_heap_form() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            let mut buf = [0u8; 16];
            assert_eq!(write_request_id(id, &mut buf), format_request_id(id));
        }
    }
}
