//! End-to-end router-tier tests: two real backend [`NetServer`]s plus a
//! [`Router`] front end on `127.0.0.1`, driven through [`TcpApiClient`].
//! Every test skips gracefully when the sandbox forbids loopback sockets.

use rvsim_net::{http_get, http_post, DrainReport, NetConfig, NetServer, Router, TcpApiClient};
use rvsim_server::{
    CheckpointConfig, DeploymentConfig, DeploymentMode, Request, Response, SimulationServer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 4000
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

fn loopback_available() -> bool {
    match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping loopback test: cannot bind 127.0.0.1: {e}");
            false
        }
    }
}

fn start_backend() -> NetServer {
    let deployment = DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: true,
        worker_threads: 2,
        idle_session_ttl_seconds: None,
    };
    NetServer::start(SimulationServer::new(deployment), NetConfig::default())
        .expect("backend starts")
}

fn start_router(backends: &[&NetServer]) -> NetServer {
    let router = Router::new(backends.iter().map(|b| b.local_addr()).collect());
    NetServer::start_with_handler(Arc::new(router), NetConfig::default()).expect("router starts")
}

fn create_session(client: &mut TcpApiClient) -> u64 {
    match client
        .call(&Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
            session: None,
        })
        .expect("create succeeds")
    {
        Response::SessionCreated { session } => session,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn router_spreads_sessions_and_proxies_the_protocol() {
    if !loopback_available() {
        return;
    }
    let b0 = start_backend();
    let b1 = start_backend();
    let router = start_router(&[&b0, &b1]);
    let mut client = TcpApiClient::new(router.local_addr());

    let sessions: Vec<u64> = (0..16).map(|_| create_session(&mut client)).collect();
    for &session in &sessions {
        assert!(session >= rvsim_net::ROUTER_SESSION_BASE, "router must number sessions");
        let r = client.call(&Request::Step { session, cycles: 5 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
        match client.call(&Request::GetState { session }).unwrap() {
            Response::State(snapshot) => assert_eq!(snapshot.cycle, 5),
            other => panic!("unexpected {other:?}"),
        }
    }
    let (on_b0, on_b1) = (b0.server().session_count(), b1.server().session_count());
    assert_eq!(on_b0 + on_b1, 16, "every session lives on exactly one backend");
    assert!(on_b0 > 0 && on_b1 > 0, "the ring must use both backends ({on_b0}/{on_b1})");

    // The aggregated list sees every session, whichever backend holds it.
    match client.call(&Request::ListSessions).unwrap() {
        Response::SessionList { sessions: listed } => {
            let mut expected = sessions.clone();
            expected.sort_unstable();
            assert_eq!(listed, expected);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Router metrics are served by the same front end.
    let (status, body) = http_get(router.local_addr(), "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rvsim_router_backends 2"), "{text}");
    assert!(text.contains("rvsim_router_backend_up{backend=\"0\"} 1"), "{text}");
    assert!(text.contains("rvsim_http_requests_total"), "{text}");
    rvsim_obs::validate_exposition(&text).expect("router metrics are valid 0.0.4 exposition");

    router.shutdown();
    b0.shutdown();
    b1.shutdown();
}

#[test]
fn drain_migrates_live_sessions_without_client_visible_errors() {
    if !loopback_available() {
        return;
    }
    let b0 = start_backend();
    let b1 = start_backend();
    let router = start_router(&[&b0, &b1]);
    let addr = router.local_addr();

    let mut client = TcpApiClient::new(addr);
    let sessions: Vec<u64> = (0..12).map(|_| create_session(&mut client)).collect();
    for &session in &sessions {
        let r = client.call(&Request::Step { session, cycles: 3 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 3, halted: false });
    }
    let before_b0 = b0.server().session_count();
    assert!(before_b0 > 0, "backend 0 must hold some sessions for the drain to move");

    // Clients keep hammering the sessions while the drain runs.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut threads = Vec::new();
    for chunk in sessions.chunks(4) {
        let chunk = chunk.to_vec();
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut client = TcpApiClient::new(addr);
            let mut requests = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                for &session in &chunk {
                    let response = client
                        .call(&Request::GetState { session })
                        .unwrap_or_else(|e| panic!("transport failed mid-drain: {e}"));
                    assert!(
                        matches!(response, Response::State(_)),
                        "client saw an error mid-drain: {response:?}"
                    );
                    requests += 1;
                }
            }
            requests
        }));
    }

    std::thread::sleep(Duration::from_millis(100));
    let (status, body) =
        http_post(addr, "/admin/drain", br#"{"backend":0}"#, Duration::from_secs(30)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let report: DrainReport = serde_json::from_slice(&body).unwrap();
    assert_eq!(report.backend, 0);
    assert_eq!(report.sessions, before_b0);
    assert_eq!(report.migrated, before_b0, "failed: {:?}", report.failed);
    assert!(report.failed.is_empty());

    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Release);
    let served: u64 = threads.into_iter().map(|t| t.join().expect("no client errors")).sum();
    assert!(served > 0);

    // Every session now lives on backend 1, with its state intact.
    assert_eq!(b0.server().session_count(), 0, "backend 0 must be empty after the drain");
    assert_eq!(b1.server().session_count(), sessions.len());
    for &session in &sessions {
        match client.call(&Request::GetState { session }).unwrap() {
            Response::State(snapshot) => assert_eq!(snapshot.cycle, 3, "state survived the move"),
            other => panic!("unexpected {other:?}"),
        }
    }

    // A second drain of the same backend is refused.
    let (status, _body) =
        http_post(addr, "/admin/drain", br#"{"backend":0}"#, Duration::from_secs(5)).unwrap();
    assert_eq!(status, 409);

    // Unknown control endpoints still 404 through the dispatch path.
    let (status, body) = http_post(addr, "/admin/nope", b"{}", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("no such endpoint"));

    router.shutdown();
    b0.shutdown();
    b1.shutdown();
}

/// Request ids of every `slow_request` event in one front end's journal,
/// via `GET /admin/trace` (threshold 0 journals every request).
fn journaled_request_ids(addr: std::net::SocketAddr) -> Vec<String> {
    let (status, body) =
        http_get(addr, "/admin/trace?n=1024&min_us=0", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    String::from_utf8(body)
        .unwrap()
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| {
            let event: serde_json::Value = serde_json::from_str(line).expect("valid NDJSON");
            if event["event"] == "slow_request" {
                Some(event["request_id"].as_str().expect("requests carry an id").to_string())
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn request_ids_follow_a_request_from_the_router_into_a_backend_journal() {
    if !loopback_available() {
        return;
    }
    // Threshold 0: every request is journaled at both tiers, so the id
    // minted at the router's edge is traceable end to end.
    let trace_all = NetConfig { slow_request_us: 0, ..NetConfig::default() };
    let deployment = DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: true,
        worker_threads: 2,
        idle_session_ttl_seconds: None,
    };
    let b0 = NetServer::start(SimulationServer::new(deployment), trace_all.clone())
        .expect("backend starts");
    let b1 = NetServer::start(SimulationServer::new(deployment), trace_all.clone())
        .expect("backend starts");
    let router = Router::new(vec![b0.local_addr(), b1.local_addr()]);
    let front = NetServer::start_with_handler(Arc::new(router), trace_all).expect("router starts");

    let mut client = TcpApiClient::new(front.local_addr());
    let session = create_session(&mut client);
    let r = client.call(&Request::Step { session, cycles: 2 }).unwrap();
    assert_eq!(r, Response::Stepped { cycle: 2, halted: false });
    match client.call(&Request::GetState { session }).unwrap() {
        Response::State(snapshot) => assert_eq!(snapshot.cycle, 2),
        other => panic!("unexpected {other:?}"),
    }

    let router_ids = journaled_request_ids(front.local_addr());
    assert!(router_ids.len() >= 3, "create/step/getstate journaled at the edge: {router_ids:?}");
    let mut backend_ids = journaled_request_ids(b0.local_addr());
    backend_ids.extend(journaled_request_ids(b1.local_addr()));
    // Every id the router minted for a forwarded request reappears verbatim
    // in the owning backend's journal — propagated via X-Rvsim-Request-Id.
    let followed = router_ids.iter().filter(|id| backend_ids.iter().any(|b| &b == id)).count();
    assert!(
        followed >= 3,
        "router ids {router_ids:?} must resurface in backend journals {backend_ids:?}"
    );

    front.shutdown();
    b0.shutdown();
    b1.shutdown();
}

/// A durable backend sharing `state_dir`: checkpoints swept on every
/// housekeeping tick so a fresh step is on disk within ~50 ms.
fn start_durable_backend(state_dir: &std::path::Path) -> NetServer {
    let deployment = DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: true,
        worker_threads: 2,
        idle_session_ttl_seconds: None,
    };
    let server = SimulationServer::with_checkpoints(
        deployment,
        CheckpointConfig {
            state_dir: state_dir.to_path_buf(),
            interval: Duration::ZERO,
            dirty_cycles: 0,
        },
    )
    .expect("state dir opens");
    let config =
        NetConfig { housekeeping_interval: Duration::from_millis(50), ..NetConfig::default() };
    NetServer::start(server, config).expect("backend starts")
}

#[test]
fn killed_backend_sessions_are_recovered_on_the_survivor_from_checkpoints() {
    if !loopback_available() {
        return;
    }
    let state_dir = std::env::temp_dir().join(format!("rvsim-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let b0 = start_durable_backend(&state_dir);
    let b1 = start_durable_backend(&state_dir);
    let router_handler = Arc::new(Router::new(vec![b0.local_addr(), b1.local_addr()]));
    // Fast probes: backend death is detected within a few hundred ms.
    let router_config =
        NetConfig { housekeeping_interval: Duration::from_millis(100), ..NetConfig::default() };
    let router = NetServer::start_with_handler(router_handler.clone(), router_config)
        .expect("router starts");
    let addr = router.local_addr();

    let mut client = TcpApiClient::new(addr);
    let sessions: Vec<u64> = (0..12).map(|_| create_session(&mut client)).collect();
    for &session in &sessions {
        let r = client.call(&Request::Step { session, cycles: 3 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 3, halted: false });
    }
    // Force the cycle-3 state to disk on both backends — deterministic, no
    // reliance on the housekeeping race.
    b0.server().checkpoint_dirty_sessions();
    b1.server().checkpoint_dirty_sessions();
    let on_dead_backend = b0.server().session_count();
    assert!(on_dead_backend > 0, "backend 0 must hold sessions for the failover to matter");

    // Crash backend 0.  The router's probes flip it dead after two
    // consecutive misses and trigger checkpoint recovery on the survivor.
    b0.shutdown();
    let deadline = Instant::now() + Duration::from_secs(15);
    let report = loop {
        if let Some(report) = router_handler.last_failover() {
            break report;
        }
        assert!(Instant::now() < deadline, "router never reported a failover");
        std::thread::sleep(Duration::from_millis(25));
    };

    assert_eq!(report.dead, vec![0]);
    assert!(report.failed.is_empty(), "recovery failures: {:?}", report.failed);
    assert_eq!(report.recovered.len(), sessions.len(), "every checkpointed session is re-owned");
    let freshly_restored = report.recovered.iter().filter(|r| !r.already_live).count();
    assert_eq!(freshly_restored, on_dead_backend, "the dead backend's sessions were restored");
    for recovered in &report.recovered {
        assert_eq!(recovered.backend, 1, "the survivor owns everything");
        assert_eq!(recovered.cycle, 3, "restored at the checkpointed cycle");
        assert!(
            recovered.staleness_ms < 30_000,
            "staleness is bounded by the checkpoint cadence, got {} ms",
            recovered.staleness_ms
        );
    }
    assert_eq!(router_handler.recovered_session_count(), on_dead_backend as u64);

    // Every session — including the crashed backend's — serves through the
    // router with its pre-crash state intact.
    assert_eq!(b1.server().session_count(), sessions.len());
    for &session in &sessions {
        match client.call(&Request::GetState { session }).unwrap() {
            Response::State(snapshot) => assert_eq!(snapshot.cycle, 3, "state survived the crash"),
            other => panic!("unexpected {other:?}"),
        }
    }
    // And they keep simulating from where they left off.
    for &session in &sessions {
        let r = client.call(&Request::Step { session, cycles: 2 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
    }

    let (status, body) = http_get(addr, "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rvsim_router_backend_up{backend=\"0\"} 0"), "{text}");
    assert!(text.contains("rvsim_router_backend_up{backend=\"1\"} 1"), "{text}");
    assert!(text.contains("rvsim_router_sessions_recovered_total"), "{text}");

    router.shutdown();
    b1.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
}
