//! Chunk-boundary property test for the incremental HTTP parser: a valid
//! pipelined request stream must parse to the identical request sequence no
//! matter how it is split into `feed` chunks — the defining property of
//! incremental framing over a TCP socket, where the kernel hands the server
//! arbitrary byte windows.

use proptest::prelude::*;
use rvsim_net::{HttpRequest, RequestParser};

/// A generated request: method/target/body/connection choices that cover
/// every framing shape the server sees.
fn arbitrary_request() -> impl Strategy<Value = Vec<u8>> {
    let body = proptest::collection::vec(any::<u8>(), 0..200);
    (0u8..4, body, any::<bool>(), any::<bool>()).prop_map(|(kind, body, close, bare_lf)| {
        let eol = if bare_lf { "\n" } else { "\r\n" };
        let connection = if close { format!("connection: close{eol}") } else { String::new() };
        match kind {
            0 => format!("GET /metrics HTTP/1.1{eol}{connection}{eol}").into_bytes(),
            1 => format!("GET /healthz HTTP/1.1{eol}x-extra: padding{eol}{connection}{eol}")
                .into_bytes(),
            _ => {
                let mut head = format!(
                    "POST /api HTTP/1.1{eol}content-length: {}{eol}{connection}{eol}",
                    body.len()
                )
                .into_bytes();
                head.extend_from_slice(&body);
                head
            }
        }
    })
}

fn parse_stream(chunks: &[&[u8]]) -> Vec<HttpRequest> {
    let mut parser = RequestParser::new();
    let mut requests = Vec::new();
    for chunk in chunks {
        parser.feed(chunk);
        while let Some(request) = parser.next_request().expect("valid stream must parse") {
            requests.push(request);
        }
    }
    assert_eq!(parser.buffered(), 0, "a complete stream leaves no residue");
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_chunk_split_parses_identically_to_the_unsplit_stream(
        requests in proptest::collection::vec(arbitrary_request(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let stream: Vec<u8> = requests.concat();
        let whole = parse_stream(&[&stream]);
        prop_assert_eq!(whole.len(), requests.len());

        // Split the same bytes at arbitrary boundaries (duplicates and
        // out-of-order cut points collapse into sorted unique offsets).
        let mut offsets: Vec<usize> = cuts.iter().map(|ix| ix % (stream.len() + 1)).collect();
        offsets.push(0);
        offsets.push(stream.len());
        offsets.sort_unstable();
        offsets.dedup();
        let chunks: Vec<&[u8]> =
            offsets.windows(2).map(|w| &stream[w[0]..w[1]]).collect();
        let split = parse_stream(&chunks);
        prop_assert_eq!(split, whole);
    }

    #[test]
    fn byte_at_a_time_equals_unsplit(requests in proptest::collection::vec(arbitrary_request(), 1..4)) {
        let stream: Vec<u8> = requests.concat();
        let whole = parse_stream(&[&stream]);
        let bytes: Vec<&[u8]> = stream.chunks(1).collect();
        let split = parse_stream(&bytes);
        prop_assert_eq!(split, whole);
    }
}
