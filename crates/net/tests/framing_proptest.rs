//! Chunk-boundary property test for the incremental HTTP parser: a valid
//! pipelined request stream must parse to the identical request sequence no
//! matter how it is split into `feed` chunks — the defining property of
//! incremental framing over a TCP socket, where the kernel hands the server
//! arbitrary byte windows.

use proptest::prelude::*;
use rvsim_net::{HttpRequest, RequestParser, MAX_BODY_BYTES};

/// A generated request: method/target/body/connection choices that cover
/// every framing shape the server sees.
fn arbitrary_request() -> impl Strategy<Value = Vec<u8>> {
    let body = proptest::collection::vec(any::<u8>(), 0..200);
    (0u8..4, body, any::<bool>(), any::<bool>()).prop_map(|(kind, body, close, bare_lf)| {
        let eol = if bare_lf { "\n" } else { "\r\n" };
        let connection = if close { format!("connection: close{eol}") } else { String::new() };
        match kind {
            0 => format!("GET /metrics HTTP/1.1{eol}{connection}{eol}").into_bytes(),
            1 => format!("GET /healthz HTTP/1.1{eol}x-extra: padding{eol}{connection}{eol}")
                .into_bytes(),
            _ => {
                let mut head = format!(
                    "POST /api HTTP/1.1{eol}content-length: {}{eol}{connection}{eol}",
                    body.len()
                )
                .into_bytes();
                head.extend_from_slice(&body);
                head
            }
        }
    })
}

fn parse_stream(chunks: &[&[u8]]) -> Vec<HttpRequest> {
    let mut parser = RequestParser::new();
    let mut requests = Vec::new();
    for chunk in chunks {
        parser.feed(chunk);
        while let Some(request) = parser.next_request().expect("valid stream must parse") {
            requests.push(request);
        }
    }
    assert_eq!(parser.buffered(), 0, "a complete stream leaves no residue");
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_chunk_split_parses_identically_to_the_unsplit_stream(
        requests in proptest::collection::vec(arbitrary_request(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let stream: Vec<u8> = requests.concat();
        let whole = parse_stream(&[&stream]);
        prop_assert_eq!(whole.len(), requests.len());

        // Split the same bytes at arbitrary boundaries (duplicates and
        // out-of-order cut points collapse into sorted unique offsets).
        let mut offsets: Vec<usize> = cuts.iter().map(|ix| ix % (stream.len() + 1)).collect();
        offsets.push(0);
        offsets.push(stream.len());
        offsets.sort_unstable();
        offsets.dedup();
        let chunks: Vec<&[u8]> =
            offsets.windows(2).map(|w| &stream[w[0]..w[1]]).collect();
        let split = parse_stream(&chunks);
        prop_assert_eq!(split, whole);
    }

    #[test]
    fn byte_at_a_time_equals_unsplit(requests in proptest::collection::vec(arbitrary_request(), 1..4)) {
        let stream: Vec<u8> = requests.concat();
        let whole = parse_stream(&[&stream]);
        let bytes: Vec<&[u8]> = stream.chunks(1).collect();
        let split = parse_stream(&bytes);
        prop_assert_eq!(split, whole);
    }

    /// Strict Content-Length classification: surrounding whitespace trims
    /// away, a plain digit string within the body cap frames exactly that
    /// many bytes, an oversized length is 413, and every other shape the
    /// permissive `usize::from_str` would have accepted (signs, embedded
    /// whitespace, hex) — or rejected differently — is a 400.
    #[test]
    fn content_length_values_are_classified_strictly(case in arbitrary_content_length_case()) {
        let (value, expected) = case;
        let mut wire =
            format!("POST /api HTTP/1.1\r\ncontent-length:{value}\r\n\r\n").into_bytes();
        if let Ok(length) = expected {
            wire.extend(vec![b'x'; length]);
        }
        let mut parser = RequestParser::new();
        parser.feed(&wire);
        match (parser.next_request(), expected) {
            (Ok(Some(request)), Ok(length)) => {
                prop_assert_eq!(request.body.len(), length);
            }
            (Err(error), Err(status)) => {
                prop_assert_eq!(error.status, status, "for value `{}`: {}", value, error.detail);
            }
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "content-length `{value}` parsed as {got:?}, expected {want:?}"
                )));
            }
        }
    }
}

/// A generated Content-Length header value plus the verdict the parser must
/// reach: `Ok(n)` frames an `n`-byte body, `Err(status)` rejects.
fn arbitrary_content_length_case() -> impl Strategy<Value = (String, Result<usize, u16>)> {
    (0u8..8, 0u64..9999).prop_map(|(kind, n)| {
        let small = (n as usize) % 600;
        match kind {
            // Plain digits inside the cap, bare or whitespace-padded: valid.
            0 => (small.to_string(), Ok(small)),
            1 => (format!("  {small}\t"), Ok(small)),
            // One past the cap, or too many digits for any usize: 413.
            2 => ((MAX_BODY_BYTES as u64 + 1 + n).to_string(), Err(413)),
            3 => (format!("9{n:029}"), Err(413)),
            // Signs, embedded whitespace, hex, text: all 400.
            4 => (format!("+{small}"), Err(400)),
            5 => (format!("-{small}"), Err(400)),
            6 => (format!("{small} {n}"), Err(400)),
            _ => (format!("0x{small:x}"), Err(400)),
        }
    })
}
