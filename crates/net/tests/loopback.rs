//! End-to-end loopback tests: a real [`NetServer`] on `127.0.0.1`, driven
//! through [`TcpApiClient`] and raw sockets.  Every test skips gracefully
//! when the sandbox forbids loopback sockets.

use rvsim_net::{NetConfig, NetServer, TcpApiClient};
use rvsim_server::{DeploymentConfig, DeploymentMode, Request, Response, SimulationServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 40
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

fn loopback_available() -> bool {
    match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping loopback test: cannot bind 127.0.0.1: {e}");
            false
        }
    }
}

fn start(config: DeploymentConfig, net: NetConfig) -> NetServer {
    NetServer::start(SimulationServer::new(config), net).expect("net server starts")
}

fn default_deployment(compress: bool) -> DeploymentConfig {
    DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: compress,
        worker_threads: 2,
        idle_session_ttl_seconds: None,
    }
}

fn create_session(client: &mut TcpApiClient) -> u64 {
    match client
        .call(&Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
            session: None,
        })
        .expect("create succeeds")
    {
        Response::SessionCreated { session } => session,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn protocol_round_trip_over_tcp() {
    if !loopback_available() {
        return;
    }
    for compress in [false, true] {
        let server = start(default_deployment(compress), NetConfig::default());
        let mut client = TcpApiClient::new(server.local_addr());
        let session = create_session(&mut client);
        let r = client.call(&Request::Step { session, cycles: 5 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
        match client.call(&Request::GetState { session }).unwrap() {
            Response::State(snapshot) => assert_eq!(snapshot.cycle, 5),
            other => panic!("unexpected {other:?}"),
        }
        // The cached serve path answers the repeat identically over the wire.
        match client.call(&Request::GetState { session }).unwrap() {
            Response::State(snapshot) => assert_eq!(snapshot.cycle, 5),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(client.call(&Request::DestroySession { session }).unwrap(), Response::Destroyed);
        assert_eq!(server.server().session_count(), 0);
        server.shutdown();
    }
}

#[test]
fn many_keep_alive_clients_share_the_worker_pool() {
    if !loopback_available() {
        return;
    }
    let server = start(default_deployment(true), NetConfig::default());
    let addr = server.local_addr();
    let mut threads = Vec::new();
    for _ in 0..8 {
        threads.push(std::thread::spawn(move || {
            let mut client = TcpApiClient::new(addr);
            let session = create_session(&mut client);
            for cycle in 1..=10u64 {
                let r = client.call(&Request::Step { session, cycles: 1 }).unwrap();
                assert_eq!(r, Response::Stepped { cycle, halted: false });
                let state = client.call(&Request::GetState { session }).unwrap();
                assert!(matches!(state, Response::State(_)));
            }
            session
        }));
    }
    let mut ids: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 8, "each client gets its own session");
    assert!(server.stats().requests_served.load(std::sync::atomic::Ordering::Relaxed) >= 8 * 21);
    server.shutdown();
}

#[test]
fn metrics_and_healthz_endpoints_respond() {
    if !loopback_available() {
        return;
    }
    let server = start(default_deployment(true), NetConfig::default());
    let mut client = TcpApiClient::new(server.local_addr());
    let session = create_session(&mut client);
    client.call(&Request::Step { session, cycles: 1 }).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    // The exposition is served under the Prometheus 0.0.4 content type.
    let headers = text.split("\r\n\r\n").next().unwrap();
    assert!(
        headers.contains("content-type: text/plain; version=0.0.4"),
        "wrong content type: {headers}"
    );
    assert!(text.contains("rvsim_sessions_live 1"), "{text}");
    assert!(text.contains("rvsim_http_requests_total"), "{text}");
    assert!(text.contains("rvsim_connections_accepted_total"), "{text}");
    // And the body parses as valid 0.0.4 exposition, histograms included.
    let body = text.split("\r\n\r\n").nth(1).unwrap();
    let families = rvsim_obs::validate_exposition(body).expect("valid exposition");
    assert!(families.iter().any(|f| f.name == "rvsim_endpoint_seconds"), "{body}");
    assert!(families.iter().any(|f| f.name == "rvsim_request_phase_seconds"), "{body}");

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.contains("ok"), "{text}");
    server.shutdown();
}

#[test]
fn malformed_requests_get_http_errors_and_close() {
    if !loopback_available() {
        return;
    }
    let server = start(default_deployment(true), NetConfig::default());

    // Bad request line -> 400.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"NOT A REQUEST LINE AT ALL\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");

    // Unknown path -> 404; wrong method -> 405 (connection stays usable
    // because these are application-level answers, not framing errors).
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(b"GET /nope HTTP/1.1\r\n\r\nDELETE /api HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 404 "), "{text}");
    assert!(text.contains("HTTP/1.1 405 "), "{text}");

    // Oversized head -> 431.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut huge = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    huge.extend(std::iter::repeat_n(b'a', rvsim_net::MAX_HEAD_BYTES + 64));
    huge.extend_from_slice(b"\r\n\r\n");
    stream.write_all(&huge).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 431 "), "{text}");

    let errors = server.stats().http_errors.load(std::sync::atomic::Ordering::Relaxed);
    assert!(errors >= 2, "framing errors must be counted, got {errors}");
    server.shutdown();
}

#[test]
fn housekeeping_tick_evicts_idle_sessions() {
    if !loopback_available() {
        return;
    }
    let deployment = DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: true,
        worker_threads: 2,
        // Zero TTL: anything idle at the next tick is swept.
        idle_session_ttl_seconds: Some(0),
    };
    let net =
        NetConfig { housekeeping_interval: Duration::from_millis(20), ..NetConfig::default() };
    let server = start(deployment, net);
    let mut client = TcpApiClient::new(server.local_addr());
    let session = create_session(&mut client);
    assert_eq!(server.server().session_count(), 1);

    // Within a second the housekeeper must have swept the idle session.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.server().session_count() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.server().session_count(), 0, "idle session must be evicted");
    assert!(server.server().evicted_session_count() >= 1);
    let r = client.call(&Request::Step { session, cycles: 1 }).unwrap();
    assert!(r.is_error(), "evicted session is gone");
    server.shutdown();
}

#[test]
fn graceful_shutdown_closes_idle_connections_and_joins() {
    if !loopback_available() {
        return;
    }
    let server = start(default_deployment(true), NetConfig::default());
    let addr = server.local_addr();
    let mut client = TcpApiClient::new(addr);
    let session = create_session(&mut client);
    client.call(&Request::Step { session, cycles: 1 }).unwrap();
    // Shutdown with the keep-alive connection still open: must return
    // promptly (joins acceptor, workers, housekeeper).
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(start.elapsed() < Duration::from_secs(5), "shutdown must not hang");
    // The old connection is dead; a fresh call cannot reach a server.
    assert!(client.call(&Request::Step { session, cycles: 1 }).is_err());
}

#[test]
fn overload_rejection_answers_503() {
    if !loopback_available() {
        return;
    }
    // Cap the front end at two live connections: with both held open, the
    // next connection must be answered 503 at the accept gate.
    let net = NetConfig { max_connections: 2, ..NetConfig::default() };
    let server = start(default_deployment(true), net);
    let addr = server.local_addr();

    // Hold the cap's worth of live keep-alive connections (the event loop
    // carries them idly; no worker is pinned).
    let _held_a = {
        let mut c = TcpApiClient::new(addr);
        create_session(&mut c);
        c
    };
    let _held_b = {
        let mut c = TcpApiClient::new(addr);
        create_session(&mut c);
        c
    };
    // The next connection must be turned away.  Allow a few attempts: the
    // open-connection gauge trails the accept loop by a moment.
    let mut rejected = false;
    for _ in 0..50 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        if text.starts_with("HTTP/1.1 503 ") {
            rejected = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(rejected, "a connection over the cap must answer 503");
    assert!(server.stats().connections_rejected.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    server.shutdown();
}

#[test]
fn stalled_clients_are_reclaimed_by_deadlines() {
    if !loopback_available() {
        return;
    }
    // Tight deadlines so the test runs in milliseconds.
    let net = NetConfig {
        header_deadline: Duration::from_millis(80),
        idle_deadline: Duration::from_millis(400),
        write_deadline: Duration::from_millis(80),
        ..NetConfig::default()
    };
    let server = start(default_deployment(true), net);
    let addr = server.local_addr();

    // A client that sends half a request head and then stalls must be
    // closed by the header deadline — under the old worker-pool front end
    // this connection pinned a worker thread forever.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(b"POST /api HTTP/1.1\r\ncontent-le").unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    let n = stalled.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close the stalled connection, not answer it");

    // A healthy client on the same server is unaffected.
    let mut client = TcpApiClient::new(addr);
    let session = create_session(&mut client);
    let r = client.call(&Request::Step { session, cycles: 1 }).unwrap();
    assert_eq!(r, Response::Stepped { cycle: 1, halted: false });

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stalled_closed = loop {
        let n =
            server.stats().connections_stalled_closed.load(std::sync::atomic::Ordering::Relaxed);
        if n >= 1 || std::time::Instant::now() >= deadline {
            break n;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(stalled_closed >= 1, "the deadline close must be counted as stalled");

    // An idle keep-alive connection is eventually reclaimed too — and
    // counted separately from the stalled family.
    drop(client);
    let idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut idle = idle;
    let n = idle.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "idle connection must be closed by the idle deadline");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let n = server.stats().connections_idle_closed.load(std::sync::atomic::Ordering::Relaxed);
        if n >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "idle close must be counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn slow_reader_mid_response_is_reclaimed_by_write_deadline() {
    if !loopback_available() {
        return;
    }
    let net = NetConfig {
        header_deadline: Duration::from_millis(200),
        idle_deadline: Duration::from_secs(30),
        write_deadline: Duration::from_millis(100),
        ..NetConfig::default()
    };
    // Plain JSON keeps the state payload large (hundreds of KB), so it
    // cannot fit the kernel buffers of a non-reading peer.
    let server = start(default_deployment(false), net);
    let addr = server.local_addr();

    let mut client = TcpApiClient::new(addr);
    let session = create_session(&mut client);
    client.call(&Request::Step { session, cycles: 1 }).unwrap();

    // Raw socket that pipelines hundreds of state requests and then never
    // reads a byte: the responses (megabytes of plain JSON in aggregate)
    // overflow the kernel buffers, the server's write stalls, and the write
    // deadline must reclaim the connection.
    let mut slow = TcpStream::connect(addr).unwrap();
    let request = serde_json::to_vec(&Request::GetState { session }).unwrap();
    let one = format!(
        "POST /api HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        request.len(),
        String::from_utf8(request).unwrap()
    );
    let pipelined: Vec<u8> = one.as_bytes().repeat(800);
    slow.write_all(&pipelined).unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let n =
            server.stats().connections_stalled_closed.load(std::sync::atomic::Ordering::Relaxed);
        if n >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "write deadline must reclaim the non-reading client"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The healthy keep-alive client still works afterwards.
    let r = client.call(&Request::Step { session, cycles: 1 }).unwrap();
    assert_eq!(r, Response::Stepped { cycle: 2, halted: false });
    server.shutdown();
}
