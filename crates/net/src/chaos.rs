//! Deterministic fault-injecting TCP proxy for chaos testing.
//!
//! [`ChaosProxy`] sits between a client and an upstream backend and injects
//! network faults on a per-connection basis: immediate connection resets,
//! truncation of the upstream's response after a random byte count, and
//! per-chunk latency.  Every decision is drawn from a [`StdRng`] seeded
//! from `config.seed ^ mix(connection_index)`, so a chaos run is **fully
//! reproducible**: the same seed against the same request sequence injects
//! the same faults, which is what lets a failing durability test be
//! replayed instead of shrugged off as flaky.
//!
//! The proxy is intentionally dumb about HTTP — it moves bytes.  Faults are
//! therefore exactly the ones a real network delivers: a reset looks like a
//! crashed backend, a truncation looks like a mid-response kill, a delay
//! looks like congestion.  The client and router retry/breaker logic under
//! test cannot tell the difference.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long pump threads block in one read before re-checking shutdown.
const PUMP_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Configuration of a [`ChaosProxy`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Address to listen on (`127.0.0.1:0` picks a free loopback port).
    pub listen: String,
    /// The backend to proxy to.
    pub upstream: SocketAddr,
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability that an accepted connection is reset immediately,
    /// before any byte is proxied (a crashed backend).
    pub reset_probability: f64,
    /// Probability that the upstream's response stream is cut after a
    /// random prefix (a backend killed mid-response).
    pub truncate_probability: f64,
    /// Probability that each proxied chunk is delayed (congestion).
    pub delay_probability: f64,
    /// Upper bound on one injected delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// A fault-free proxy for `upstream`: all probabilities zero, loopback
    /// listener on an ephemeral port.  Turn individual faults on from here.
    pub fn new(upstream: SocketAddr) -> Self {
        ChaosConfig {
            listen: "127.0.0.1:0".to_string(),
            upstream,
            seed: 0,
            reset_probability: 0.0,
            truncate_probability: 0.0,
            delay_probability: 0.0,
            max_delay_ms: 50,
        }
    }
}

/// Fault counters of a running [`ChaosProxy`].
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted (faulted or not).
    pub connections: AtomicU64,
    /// Connections reset before any byte was proxied.
    pub resets: AtomicU64,
    /// Upstream responses cut after a random prefix.
    pub truncated: AtomicU64,
    /// Chunks delivered late.
    pub delayed: AtomicU64,
}

/// The faults chosen for one connection, drawn up front so the decision
/// stream depends only on (seed, connection index) — not on data timing.
#[derive(Debug, Clone, Copy)]
struct ConnectionFate {
    reset: bool,
    /// Cut the upstream→client stream after this many bytes.
    truncate_after: Option<u64>,
    /// Sleep this long before each delayed chunk.
    delay: Option<Duration>,
    /// Probability used per chunk to decide whether `delay` applies.
    delay_probability: f64,
}

/// A running chaos proxy.  Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the acceptor and the per-connection
/// pump threads.
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind `config.listen` and start proxying to `config.upstream`.
    pub fn start(config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));

        let acceptor = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, config, stats, stop))
        };
        Ok(ChaosProxy { addr, stats, stop, acceptor: Some(acceptor) })
    }

    /// The proxy's listening address (with the real port when `:0` was
    /// requested).  Point clients here instead of at the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stop accepting and wind down the pump threads.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// splitmix64 finalizer: decorrelates consecutive connection indices so the
/// per-connection seeds are independent draws, not a counter.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Draw the complete fault plan for connection `index`.
fn draw_fate(config: &ChaosConfig, index: u64) -> ConnectionFate {
    let mut rng = StdRng::seed_from_u64(config.seed ^ mix(index));
    let reset = rng.random::<f64>() < config.reset_probability;
    let truncate = rng.random::<f64>() < config.truncate_probability;
    // Drawn unconditionally so a fate's byte/delay choices do not shift
    // when an earlier probability is tuned.  The cut lands within the first
    // KiB so even compact protocol responses are reliably affected.
    let truncate_after = rng.random_range(64u64..1024);
    let delay_ms = rng.random_range(1..config.max_delay_ms.max(2));
    ConnectionFate {
        reset,
        truncate_after: truncate.then_some(truncate_after),
        delay: (config.delay_probability > 0.0).then(|| Duration::from_millis(delay_ms)),
        delay_probability: config.delay_probability,
    }
}

fn accept_loop(
    listener: TcpListener,
    config: ChaosConfig,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    let mut index = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let fate = draw_fate(&config, index);
                index += 1;
                if fate.reset {
                    stats.resets.fetch_add(1, Ordering::Relaxed);
                    // Close without reading the request: with unread bytes
                    // in the receive buffer the kernel answers RST, so the
                    // client sees a reset, exactly like a crashed backend.
                    // (A client that has not sent yet sees an early EOF —
                    // equally fatal for its in-flight call.)
                    drop(client);
                    continue;
                }
                let Ok(upstream) =
                    TcpStream::connect_timeout(&config.upstream, Duration::from_secs(2))
                else {
                    drop(client);
                    continue;
                };
                pumps.extend(spawn_pumps(
                    client,
                    upstream,
                    fate,
                    index - 1,
                    &config,
                    &stats,
                    &stop,
                ));
                pumps.retain(|handle| !handle.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handle in pumps {
        let _ = handle.join();
    }
}

/// Start the two pump threads for one proxied connection.  Faults that
/// model a dying *backend* (truncation, latency) apply to the
/// upstream→client direction; the client→upstream direction is clean so a
/// request always reaches the backend once the connection exists.
fn spawn_pumps(
    client: TcpStream,
    upstream: TcpStream,
    fate: ConnectionFate,
    index: u64,
    config: &ChaosConfig,
    stats: &Arc<ChaosStats>,
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    for stream in [&client, &upstream] {
        let _ = stream.set_read_timeout(Some(PUMP_READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
    }
    let (client_read, upstream_read) = match (client.try_clone(), upstream.try_clone()) {
        (Ok(c), Ok(u)) => (c, u),
        _ => return Vec::new(),
    };

    let forward = {
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            pump(client_read, upstream, &stop, None, &mut |_len| {});
        })
    };
    let backward = {
        let stop = Arc::clone(stop);
        let stats = Arc::clone(stats);
        // Per-chunk delay decisions get their own stream, decorrelated from
        // the fate draw by the direction tag.
        let mut delay_rng = StdRng::seed_from_u64(config.seed ^ mix(index) ^ 0x0064_656c_6179);
        std::thread::spawn(move || {
            let delay_stats = Arc::clone(&stats);
            let mut on_chunk = move |_len: usize| {
                if let Some(delay) = fate.delay {
                    if delay_rng.random::<f64>() < fate.delay_probability {
                        delay_stats.delayed.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(delay);
                    }
                }
            };
            let truncated = pump(upstream_read, client, &stop, fate.truncate_after, &mut on_chunk);
            if truncated {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    vec![forward, backward]
}

/// Move bytes `from` → `to` until EOF, error, shutdown, or the truncation
/// budget runs out.  Returns whether the stream was truncated.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    stop: &AtomicBool,
    truncate_after: Option<u64>,
    on_chunk: &mut dyn FnMut(usize),
) -> bool {
    let mut moved = 0u64;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            let _ = to.shutdown(Shutdown::Both);
            return false;
        }
        let n = match from.read(&mut chunk) {
            Ok(0) => {
                // Propagate the half-close so the peer sees EOF promptly.
                let _ = to.shutdown(Shutdown::Write);
                return false;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return false;
            }
        };
        let send = &chunk[..n];
        if let Some(budget) = truncate_after {
            let remaining = budget.saturating_sub(moved);
            if remaining < n as u64 {
                // Deliver the allowed prefix, then cut the stream — the
                // client sees a response that stops mid-body.
                let _ = to.write_all(&send[..remaining as usize]);
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return true;
            }
        }
        on_chunk(send.len());
        if to.write_all(send).is_err() {
            let _ = from.shutdown(Shutdown::Both);
            return false;
        }
        moved += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetConfig, NetServer};
    use crate::TcpApiClient;
    use rvsim_server::server::DeploymentConfig;
    use rvsim_server::{Request, Response, SimulationServer};

    const PROGRAM: &str = "
main:
    li   t0, 5
    li   t1, 0
loop:
    add  t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    mv   a0, t1
    ret
";

    fn loopback_available() -> bool {
        std::net::TcpListener::bind("127.0.0.1:0").is_ok()
    }

    fn start_backend() -> NetServer {
        let server = SimulationServer::new(DeploymentConfig::default());
        NetServer::start(server, NetConfig::default()).expect("backend starts")
    }

    #[test]
    fn clean_proxy_is_transparent() {
        if !loopback_available() {
            eprintln!("skipping: loopback unavailable in this sandbox");
            return;
        }
        let backend = start_backend();
        let proxy = ChaosProxy::start(ChaosConfig::new(backend.local_addr())).expect("starts");

        let mut client = TcpApiClient::new(proxy.local_addr());
        let created = client
            .call(&Request::CreateSession {
                program: PROGRAM.to_string(),
                architecture: None,
                entry: None,
                session: Some(7),
            })
            .expect("create through proxy");
        assert_eq!(created, Response::SessionCreated { session: 7 });
        let stepped = client.call(&Request::Step { session: 7, cycles: 3 }).expect("step");
        assert!(matches!(stepped, Response::Stepped { cycle: 3, .. }), "got {stepped:?}");
        assert_eq!(proxy.stats().connections.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().resets.load(Ordering::Relaxed), 0);

        proxy.shutdown();
        backend.shutdown();
    }

    #[test]
    fn resets_are_injected_deterministically() {
        if !loopback_available() {
            eprintln!("skipping: loopback unavailable in this sandbox");
            return;
        }
        let backend = start_backend();
        let mut config = ChaosConfig::new(backend.local_addr());
        config.seed = 42;
        config.reset_probability = 1.0;
        let proxy = ChaosProxy::start(config).expect("starts");

        // Every connection dies before a byte moves; the client's retry
        // budget runs out and the call errors instead of hanging.
        let mut client = TcpApiClient::new(proxy.local_addr());
        let result = client.call_raw(b"{}");
        assert!(result.is_err(), "all-reset proxy must fail the call");
        let resets = proxy.stats().resets.load(Ordering::Relaxed);
        assert!(resets >= 1, "expected at least one injected reset, saw {resets}");
        assert_eq!(
            proxy.stats().connections.load(Ordering::Relaxed),
            resets,
            "every accepted connection was reset"
        );

        proxy.shutdown();
        backend.shutdown();
    }

    #[test]
    fn same_seed_injects_the_same_fault_sequence() {
        // The fate stream is a pure function of (seed, index): no sockets
        // needed to prove determinism.
        let upstream: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut config = ChaosConfig::new(upstream);
        config.seed = 1234;
        config.reset_probability = 0.3;
        config.truncate_probability = 0.4;
        config.delay_probability = 0.2;

        let first: Vec<(bool, Option<u64>)> =
            (0..64).map(|i| draw_fate(&config, i)).map(|f| (f.reset, f.truncate_after)).collect();
        let second: Vec<(bool, Option<u64>)> =
            (0..64).map(|i| draw_fate(&config, i)).map(|f| (f.reset, f.truncate_after)).collect();
        assert_eq!(first, second, "same seed must draw the same fates");

        let mut other = config.clone();
        other.seed = 5678;
        let third: Vec<(bool, Option<u64>)> =
            (0..64).map(|i| draw_fate(&other, i)).map(|f| (f.reset, f.truncate_after)).collect();
        assert_ne!(first, third, "different seeds must diverge");

        // Both faults actually occur somewhere in the window.
        assert!(first.iter().any(|(reset, _)| *reset), "some connection resets");
        assert!(first.iter().any(|(_, t)| t.is_some()), "some connection truncates");
    }

    #[test]
    fn truncation_cuts_responses_that_a_direct_connection_serves() {
        if !loopback_available() {
            eprintln!("skipping: loopback unavailable in this sandbox");
            return;
        }
        let backend = start_backend();
        // Direct path works: create a session and fetch its (large) state.
        let mut direct = TcpApiClient::new(backend.local_addr());
        direct
            .call(&Request::CreateSession {
                program: PROGRAM.to_string(),
                architecture: None,
                entry: None,
                session: Some(9),
            })
            .expect("create directly");
        let full = direct.call_raw(&serde_json::to_vec(&Request::GetState { session: 9 }).unwrap());
        let full = full.expect("direct GetState succeeds");
        assert!(full.len() > 1024, "state payload big enough to outlive any truncation budget");

        let mut config = ChaosConfig::new(backend.local_addr());
        config.seed = 7;
        config.truncate_probability = 1.0;
        let proxy = ChaosProxy::start(config).expect("starts");

        // Through the truncating proxy the same response is cut mid-body on
        // every attempt (truncate_after < 4096 < payload), so the call —
        // retries included — must fail.
        let mut chaotic = TcpApiClient::new(proxy.local_addr());
        let result =
            chaotic.call_raw(&serde_json::to_vec(&Request::GetState { session: 9 }).unwrap());
        assert!(result.is_err(), "truncated response must error, got {result:?}");
        // The pump thread bumps the counter just after the client observes
        // the cut; give it a moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while proxy.stats().truncated.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "truncation was never recorded");
            std::thread::sleep(Duration::from_millis(10));
        }

        proxy.shutdown();
        backend.shutdown();
    }
}
