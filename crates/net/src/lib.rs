//! # rvsim-net — the HTTP/1.1 network front end
//!
//! The paper deploys the simulator behind an Undertow HTTP server and
//! reports the *request path* — not the simulation — as the scaling
//! bottleneck (§IV-A).  Until this crate the Rust reproduction had no
//! transport at all, only the in-process worker pool in `rvsim-server`.
//! `rvsim-net` adds the real thing, hand-rolled over
//! [`std::net::TcpListener`] (the build environment is offline, so no
//! external HTTP stack):
//!
//! * [`http`] — incremental HTTP/1.1 request framing that tolerates
//!   arbitrary partial reads, with pipelining, keep-alive and bounded-size
//!   rejection (400/413/431/501/505);
//! * [`NetServer`] — a nonblocking readiness event loop (epoll through the
//!   vendored `polling` wrapper): per-connection state machines with
//!   buffered partial writes and slow-client deadlines, a dispatch worker
//!   pool executing `POST /api` payloads in
//!   [`rvsim_server::SimulationServer::handle_raw`], graceful shutdown, a
//!   periodic housekeeping tick (idle-session eviction) and a
//!   `GET /metrics` stats endpoint;
//! * [`TcpApiClient`] — the matching blocking keep-alive client used by
//!   `rvsim-loadgen --tcp` and the server benchmark.
//!
//! The response body of the protocol endpoint is the server's shared
//! [`bytes::Bytes`] payload handle: a cached `GetState` flows from the
//! per-session serve cache to the socket with zero payload copies.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod http;
pub mod router;
pub mod server;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use client::{http_get, http_post, http_request, TcpApiClient};
pub use http::{
    find_head_end, HttpError, HttpRequest, RequestParser, Version, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
pub use router::{DrainReport, FailoverReport, RecoveredSession, Router, ROUTER_SESSION_BASE};
pub use server::{ApiHandler, ControlResponse, NetConfig, NetServer, NetStats};
