//! The consistent-hash router tier: one front end fanning the protocol out
//! across N backend simulation servers.
//!
//! The paper scales by putting more cores behind one Undertow instance;
//! this module scales *out* instead: a [`Router`] implements
//! [`ApiHandler`](crate::server::ApiHandler), so the same epoll front end
//! that serves a [`rvsim_server::SimulationServer`] can serve a proxy that
//! consistent-hashes session ids across backend processes and forwards the
//! unmodified wire protocol over pooled keep-alive upstream connections.
//!
//! * **Placement** — session ids are hashed onto a ring of 64 virtual nodes
//!   per backend ([`HashRing`]); adding or removing a backend moves only
//!   `1/N` of the sessions.  The router assigns ids itself (from a high
//!   base, so they can never collide with ids a backend hands out to
//!   direct clients) and pins each session with `CreateSession{session}`.
//! * **Two rings** — `route` (where requests go) and `place` (where new or
//!   migrated sessions land).  During a drain the place ring already
//!   excludes the draining backend while the route ring still names it, so
//!   in-flight requests keep landing on the old copy until its session has
//!   actually moved.
//! * **Live drain** — `POST /admin/drain {"backend": k}` walks backend
//!   `k`'s sessions and, one at a time: latches the session (requests for
//!   it park on a condvar), `SerializeSession{destroy}` on the old node,
//!   `RestoreSession` on the ring target, records an override, unlatches.
//!   The client observes added latency, never an error.  When every session
//!   has moved the route ring flips to the place ring and the overrides are
//!   dropped.
//! * **Self-healing** — housekeeping probes `/healthz` of every backend;
//!   a dead backend is dropped from both rings (its sessions are lost —
//!   the backends share nothing) and a recovered one is folded back in.
//!   `/metrics` aggregates upstream counters as `rvsim_upstream_*` sums
//!   next to the router's own `rvsim_router_*` series.

use crate::client::{http_get, TcpApiClient};
use crate::server::{ApiHandler, ControlResponse};
use bytes::Bytes;
use rvsim_server::{Request, Response};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// Virtual nodes per backend on the hash ring.  64 keeps the per-backend
/// load imbalance in the low single-digit percents at the fleet sizes this
/// tier targets (2–16 nodes) while the ring stays small enough to rebuild
/// on every membership change.
const VNODES: u64 = 64;

/// First session id the router assigns.  Backends number their own sessions
/// from 0, so ids at and above this base can only have come from the router
/// — a direct client talking to a backend can never collide with a routed
/// session.
pub const ROUTER_SESSION_BASE: u64 = 1 << 32;

/// Upstream health-probe and control-call timeout.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a request parks on a session that is mid-migration before the
/// router gives up waiting (the migration itself is bounded by upstream
/// timeouts, so this only fires if a drain wedges).
const MIGRATION_WAIT: Duration = Duration::from_secs(10);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over backend indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct HashRing {
    /// `(point, backend index)` sorted by point; a key is owned by the
    /// first point at or after its hash (wrapping).
    points: Vec<(u64, usize)>,
}

impl HashRing {
    fn new(members: &[usize]) -> Self {
        let mut points = Vec::with_capacity(members.len() * VNODES as usize);
        for &backend in members {
            for vnode in 0..VNODES {
                points.push((splitmix64((backend as u64) << 16 | vnode), backend));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    fn owner(&self, session: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = splitmix64(session);
        let index = self.points.partition_point(|&(point, _)| point < hash);
        Some(self.points[if index == self.points.len() { 0 } else { index }].1)
    }
}

/// One upstream simulation server.
struct Backend {
    addr: SocketAddr,
    /// Idle keep-alive connections; a checked-out client that errors is
    /// dropped instead of returned, so the pool never caches a dead socket.
    pool: Mutex<Vec<TcpApiClient>>,
    alive: AtomicBool,
    draining: AtomicBool,
}

/// The two membership views: where requests *route* and where sessions
/// *place* (they differ only while a drain is in flight).
#[derive(Default)]
struct Rings {
    route: HashRing,
    place: HashRing,
}

/// Router counters surfaced on `/metrics`.
#[derive(Default)]
struct RouterStats {
    forwarded: AtomicU64,
    upstream_errors: AtomicU64,
    retries: AtomicU64,
    sessions_migrated: AtomicU64,
    drains: AtomicU64,
}

/// Outcome of one `/admin/drain` call, serialized as its JSON response.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct DrainReport {
    /// Backend index that was drained.
    pub backend: usize,
    /// Sessions found on the backend when the drain started.
    pub sessions: usize,
    /// Sessions successfully migrated.
    pub migrated: usize,
    /// Sessions that failed to move, with the reason.
    pub failed: Vec<(u64, String)>,
}

/// A consistent-hash proxy over N backend simulation servers.  Plug into
/// the front end with
/// [`NetServer::start_with_handler`](crate::server::NetServer::start_with_handler).
pub struct Router {
    backends: Vec<Backend>,
    rings: RwLock<Rings>,
    /// Session → backend pins that survive until the route ring catches up
    /// with a migration.
    overrides: RwLock<HashMap<u64, usize>>,
    /// Sessions currently mid-migration; requests for them park on
    /// `migration_done` instead of racing the move.
    migrating: Mutex<HashSet<u64>>,
    migration_done: Condvar,
    next_session: AtomicU64,
    next_compile: AtomicU64,
    stats: RouterStats,
    /// Cached `rvsim_upstream_*` aggregate, refreshed by housekeeping so
    /// `/metrics` never blocks on upstream probes.
    upstream_metrics: Mutex<String>,
    /// Serializes drains (and keeps ring edits coherent with them).
    drain_lock: Mutex<()>,
}

impl Router {
    /// A router over the given backends, all presumed alive until the first
    /// health probe says otherwise.
    pub fn new(backends: Vec<SocketAddr>) -> Router {
        let members: Vec<usize> = (0..backends.len()).collect();
        let ring = HashRing::new(&members);
        Router {
            backends: backends
                .into_iter()
                .map(|addr| Backend {
                    addr,
                    pool: Mutex::new(Vec::new()),
                    alive: AtomicBool::new(true),
                    draining: AtomicBool::new(false),
                })
                .collect(),
            rings: RwLock::new(Rings { route: ring.clone(), place: ring }),
            overrides: RwLock::new(HashMap::new()),
            migrating: Mutex::new(HashSet::new()),
            migration_done: Condvar::new(),
            next_session: AtomicU64::new(ROUTER_SESSION_BASE),
            next_compile: AtomicU64::new(0),
            stats: RouterStats::default(),
            upstream_metrics: Mutex::new(String::new()),
            drain_lock: Mutex::new(()),
        }
    }

    /// Backend addresses, in index order.
    pub fn backend_addrs(&self) -> Vec<SocketAddr> {
        self.backends.iter().map(|b| b.addr).collect()
    }

    /// Where the place ring would put `session` right now.  Benchmarks and
    /// tests use this to pick explicit session ids with a known, balanced
    /// placement.
    pub fn placement(&self, session: u64) -> Option<usize> {
        read_rings(&self.rings).place.owner(session)
    }

    /// Backends currently routable (alive and not draining).
    fn routable(&self) -> Vec<usize> {
        self.backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.alive.load(Ordering::Acquire) && !b.draining.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Forward a raw protocol payload to backend `index` over a pooled
    /// keep-alive connection.
    fn call_backend(&self, index: usize, body: &[u8]) -> Result<Vec<u8>, String> {
        let backend = &self.backends[index];
        if !backend.alive.load(Ordering::Acquire) {
            return Err(format!("backend {index} ({}) is down", backend.addr));
        }
        let pooled = lock(&backend.pool).pop();
        let mut client = pooled.unwrap_or_else(|| TcpApiClient::new(backend.addr));
        self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        match client.call_raw(body) {
            Ok(payload) => {
                lock(&backend.pool).push(client);
                Ok(payload)
            }
            Err(e) => {
                self.stats.upstream_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Forward a typed request and decode the typed response.
    fn call_backend_typed(&self, index: usize, request: &Request) -> Result<Response, String> {
        let body = serde_json::to_vec(request).map_err(|e| e.to_string())?;
        let payload = self.call_backend(index, &body)?;
        rvsim_server::SimulationServer::decode_response(&payload)
    }

    /// Where a request for `session` goes right now: a migration override
    /// if one exists, the route ring otherwise.
    fn target_for(&self, session: u64) -> Option<usize> {
        if let Some(&pinned) = read(&self.overrides).get(&session) {
            return Some(pinned);
        }
        read_rings(&self.rings).route.owner(session)
    }

    /// Park until `session` is not mid-migration (bounded wait).
    fn wait_not_migrating(&self, session: u64) {
        let mut migrating = lock(&self.migrating);
        let deadline = std::time::Instant::now() + MIGRATION_WAIT;
        while migrating.contains(&session) {
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero() {
                return;
            }
            migrating = self
                .migration_done
                .wait_timeout(migrating, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Forward a session-bearing request.  If the target answers "unknown
    /// session" and the routing decision has changed since (a drain or a
    /// health flip landed mid-flight), the request is retried once on the
    /// new target — this is what makes a drain invisible to clients.
    fn forward_session(&self, session: u64, body: &[u8]) -> Bytes {
        self.wait_not_migrating(session);
        let Some(target) = self.target_for(session) else {
            return encode_error("no live backend to route to");
        };
        match self.call_backend(target, body) {
            Ok(payload) => {
                if is_unknown_session(&payload) {
                    self.wait_not_migrating(session);
                    if let Some(moved) = self.target_for(session) {
                        if moved != target {
                            self.stats.retries.fetch_add(1, Ordering::Relaxed);
                            if let Ok(payload) = self.call_backend(moved, body) {
                                return Bytes::from(payload);
                            }
                        }
                    }
                }
                Bytes::from(payload)
            }
            Err(e) => encode_error(format!("upstream error: {e}")),
        }
    }

    /// Create a session: pick (or honor) the id, pin it to the place-ring
    /// owner, and forward with the id made explicit so the backend installs
    /// it under the router's numbering.
    fn create_session(&self, request: Request) -> Bytes {
        let Request::CreateSession { program, architecture, entry, session } = request else {
            return encode_error("create_session routed a non-create request");
        };
        let session = session.unwrap_or_else(|| self.next_session.fetch_add(1, Ordering::Relaxed));
        let Some(target) = read_rings(&self.rings).place.owner(session) else {
            return encode_error("no live backend to place the session on");
        };
        let request =
            Request::CreateSession { program, architecture, entry, session: Some(session) };
        let body = match serde_json::to_vec(&request) {
            Ok(body) => body,
            Err(e) => return encode_error(format!("unencodable request: {e}")),
        };
        match self.call_backend(target, &body) {
            Ok(payload) => Bytes::from(payload),
            Err(e) => encode_error(format!("upstream error: {e}")),
        }
    }

    /// Union of every routable backend's session list.
    fn list_sessions(&self) -> Bytes {
        let mut sessions = Vec::new();
        for index in self.routable() {
            match self.call_backend_typed(index, &Request::ListSessions) {
                Ok(Response::SessionList { sessions: mut part }) => sessions.append(&mut part),
                Ok(other) => {
                    return encode_error(format!("backend {index} answered {other:?} to a list"))
                }
                Err(e) => return encode_error(format!("upstream error: {e}")),
            }
        }
        sessions.sort_unstable();
        sessions.dedup();
        encode_response(&Response::SessionList { sessions })
    }

    /// Move every session off backend `index` (serialize on the old node,
    /// restore on the ring target, flip the route ring when done).
    pub fn drain(&self, index: usize) -> Result<DrainReport, (u16, String)> {
        let _serialized_drains = lock(&self.drain_lock);
        if index >= self.backends.len() {
            return Err((400, format!("no backend {index}")));
        }
        if self.backends[index].draining.swap(true, Ordering::AcqRel) {
            return Err((409, format!("backend {index} is already draining")));
        }
        let remaining = self.routable();
        if remaining.is_empty() {
            self.backends[index].draining.store(false, Ordering::Release);
            return Err((409, "no other live backend to drain into".to_string()));
        }
        // New and migrated sessions stop landing on the draining node now;
        // requests for existing sessions still route to it.
        write_rings(&self.rings).place = HashRing::new(&remaining);

        let sessions = match self.call_backend_typed(index, &Request::ListSessions) {
            Ok(Response::SessionList { sessions }) => sessions,
            Ok(other) => {
                self.backends[index].draining.store(false, Ordering::Release);
                return Err((502, format!("backend {index} answered {other:?} to a list")));
            }
            Err(e) => {
                self.backends[index].draining.store(false, Ordering::Release);
                return Err((502, format!("cannot enumerate backend {index}: {e}")));
            }
        };

        let mut migrated = Vec::new();
        let mut failed = Vec::new();
        for &session in &sessions {
            lock(&self.migrating).insert(session);
            let result = self.migrate_session(session, index);
            match result {
                Ok(target) => {
                    write(&self.overrides).insert(session, target);
                    migrated.push(session);
                }
                Err(e) => failed.push((session, e)),
            }
            lock(&self.migrating).remove(&session);
            self.migration_done.notify_all();
        }

        // Flip: requests now follow the post-drain ring, which agrees with
        // every override recorded above — so those pins can go.
        {
            let mut rings = write_rings(&self.rings);
            rings.route = rings.place.clone();
        }
        {
            let mut overrides = write(&self.overrides);
            for session in &migrated {
                overrides.remove(session);
            }
        }
        self.stats.sessions_migrated.fetch_add(migrated.len() as u64, Ordering::Relaxed);
        self.stats.drains.fetch_add(1, Ordering::Relaxed);
        Ok(DrainReport {
            backend: index,
            sessions: sessions.len(),
            migrated: migrated.len(),
            failed,
        })
    }

    /// Serialize-destroy on `from`, restore on the place-ring target.
    /// Returns the target index.
    fn migrate_session(&self, session: u64, from: usize) -> Result<usize, String> {
        let target = read_rings(&self.rings)
            .place
            .owner(session)
            .ok_or_else(|| "no live backend to migrate to".to_string())?;
        let envelope = match self
            .call_backend_typed(from, &Request::SerializeSession { session, destroy: true })?
        {
            Response::Serialized(envelope) => envelope,
            Response::Error { message } => return Err(format!("serialize failed: {message}")),
            other => return Err(format!("serialize answered {other:?}")),
        };
        match self
            .call_backend_typed(target, &Request::RestoreSession { envelope, replace: false })?
        {
            Response::SessionCreated { .. } => Ok(target),
            Response::Error { message } => Err(format!("restore failed: {message}")),
            other => Err(format!("restore answered {other:?}")),
        }
    }

    /// Probe every backend's `/healthz`; on a membership change rebuild
    /// both rings from the survivors.
    fn probe_backends(&self) {
        let mut changed = false;
        for backend in &self.backends {
            let alive = matches!(http_get(backend.addr, "/healthz", PROBE_TIMEOUT), Ok((200, _)));
            if backend.alive.swap(alive, Ordering::AcqRel) != alive {
                changed = true;
                if !alive {
                    // Whatever connections were pooled are dead with it.
                    lock(&backend.pool).clear();
                }
            }
        }
        if changed {
            let members = self.routable();
            let ring = HashRing::new(&members);
            let mut rings = write_rings(&self.rings);
            rings.route = ring.clone();
            rings.place = ring;
        }
    }

    /// Sum upstream `/metrics` into `rvsim_upstream_*` lines (cached; served
    /// by `append_metrics`).
    fn refresh_upstream_metrics(&self) {
        let mut sums: Vec<(String, u64)> = Vec::new();
        for backend in &self.backends {
            if !backend.alive.load(Ordering::Acquire) {
                continue;
            }
            let Ok((200, body)) = http_get(backend.addr, "/metrics", PROBE_TIMEOUT) else {
                continue;
            };
            for line in String::from_utf8_lossy(&body).lines() {
                let Some((name, value)) = line.rsplit_once(' ') else { continue };
                let Ok(value) = value.parse::<u64>() else { continue };
                match sums.iter_mut().find(|(n, _)| n == name) {
                    Some((_, sum)) => *sum += value,
                    None => sums.push((name.to_string(), value)),
                }
            }
        }
        let mut rendered = String::new();
        for (name, sum) in &sums {
            let Some(suffix) = name.strip_prefix("rvsim_") else { continue };
            rendered.push_str(&format!("rvsim_upstream_{suffix} {sum}\n"));
        }
        *lock(&self.upstream_metrics) = rendered;
    }
}

impl ApiHandler for Router {
    fn handle_api(&self, body: &[u8]) -> Bytes {
        let request: Request = match serde_json::from_slice(body) {
            Ok(request) => request,
            Err(e) => return encode_error(format!("malformed request: {e}")),
        };
        match request {
            request @ Request::CreateSession { .. } => self.create_session(request),
            Request::Compile { .. } => {
                // Compilation is stateless: spread it round-robin.
                let members = self.routable();
                if members.is_empty() {
                    return encode_error("no live backend to compile on");
                }
                let pick = self.next_compile.fetch_add(1, Ordering::Relaxed) as usize;
                match self.call_backend(members[pick % members.len()], body) {
                    Ok(payload) => Bytes::from(payload),
                    Err(e) => encode_error(format!("upstream error: {e}")),
                }
            }
            Request::ListSessions => self.list_sessions(),
            Request::RestoreSession { ref envelope, .. } => {
                let session = envelope.session;
                match read_rings(&self.rings).place.owner(session) {
                    Some(target) => match self.call_backend(target, body) {
                        Ok(payload) => Bytes::from(payload),
                        Err(e) => encode_error(format!("upstream error: {e}")),
                    },
                    None => encode_error("no live backend to restore onto"),
                }
            }
            Request::Step { session, .. }
            | Request::StepBack { session, .. }
            | Request::Run { session, .. }
            | Request::GetState { session }
            | Request::GetStateDelta { session, .. }
            | Request::GetStats { session }
            | Request::DestroySession { session }
            | Request::SerializeSession { session, .. } => self.forward_session(session, body),
        }
    }

    fn handle_control(&self, target: &str, body: &[u8]) -> Option<ControlResponse> {
        match target {
            "/admin/drain" => {
                #[derive(serde::Deserialize)]
                struct DrainArgs {
                    backend: usize,
                }
                let args: DrainArgs = match serde_json::from_slice(body) {
                    Ok(args) => args,
                    Err(e) => {
                        return Some(control(400, "Bad Request", &format!("{{\"error\":\"{e}\"}}")))
                    }
                };
                Some(match self.drain(args.backend) {
                    Ok(report) => ControlResponse {
                        status: 200,
                        reason: "OK",
                        body: serde_json::to_vec(&report).expect("reports serialize"),
                    },
                    Err((status, message)) => {
                        let reason = if status == 409 { "Conflict" } else { "Bad Request" };
                        control(status, reason, &format!("{{\"error\":{}}}", json_string(&message)))
                    }
                })
            }
            _ => None,
        }
    }

    fn append_metrics(&self, out: &mut String) {
        use std::fmt::Write;
        let alive = self.backends.iter().filter(|b| b.alive.load(Ordering::Acquire)).count();
        let _ = write!(
            out,
            "rvsim_router_backends {}\n\
             rvsim_router_backends_alive {alive}\n\
             rvsim_router_forwarded_total {}\n\
             rvsim_router_upstream_errors_total {}\n\
             rvsim_router_retries_total {}\n\
             rvsim_router_sessions_migrated_total {}\n\
             rvsim_router_drains_total {}\n",
            self.backends.len(),
            self.stats.forwarded.load(Ordering::Relaxed),
            self.stats.upstream_errors.load(Ordering::Relaxed),
            self.stats.retries.load(Ordering::Relaxed),
            self.stats.sessions_migrated.load(Ordering::Relaxed),
            self.stats.drains.load(Ordering::Relaxed),
        );
        for (index, backend) in self.backends.iter().enumerate() {
            let _ = writeln!(
                out,
                "rvsim_router_backend_up_{index} {}",
                u64::from(backend.alive.load(Ordering::Acquire))
            );
        }
        out.push_str(&lock(&self.upstream_metrics));
    }

    fn housekeeping(&self) {
        self.probe_backends();
        self.refresh_upstream_metrics();
    }
}

fn control(status: u16, reason: &'static str, body: &str) -> ControlResponse {
    ControlResponse { status, reason, body: body.as_bytes().to_vec() }
}

/// Encode a router-originated error in the wire format (flag byte 0 = plain
/// JSON), indistinguishable on the client from a backend error.
fn encode_error(message: impl Into<String>) -> Bytes {
    encode_response(&Response::error(message))
}

fn encode_response(response: &Response) -> Bytes {
    let json = serde_json::to_vec(response).expect("responses serialize");
    let mut out = Vec::with_capacity(json.len() + 1);
    out.push(0u8);
    out.extend_from_slice(&json);
    Bytes::from(out)
}

/// Cheap wire-level test for an (uncompressed) "unknown session" error —
/// the signal that a session moved out from under an in-flight request.
fn is_unknown_session(payload: &[u8]) -> bool {
    payload.first() == Some(&0)
        && payload[1..].starts_with(br#"{"type":"error","message":"unknown session"#)
}

fn json_string(s: &str) -> String {
    serde_json::to_string(s).unwrap_or_else(|_| "\"error\"".to_string())
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read<K, V>(map: &RwLock<HashMap<K, V>>) -> std::sync::RwLockReadGuard<'_, HashMap<K, V>> {
    map.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<K, V>(map: &RwLock<HashMap<K, V>>) -> std::sync::RwLockWriteGuard<'_, HashMap<K, V>> {
    map.write().unwrap_or_else(PoisonError::into_inner)
}

fn read_rings(rings: &RwLock<Rings>) -> std::sync::RwLockReadGuard<'_, Rings> {
    rings.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_rings(rings: &RwLock<Rings>) -> std::sync::RwLockWriteGuard<'_, Rings> {
    rings.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_ownership_is_stable_under_membership_growth() {
        let four = HashRing::new(&[0, 1, 2, 3]);
        let five = HashRing::new(&[0, 1, 2, 3, 4]);
        let total = 10_000u64;
        let moved = (0..total)
            .filter(|&s| four.owner(ROUTER_SESSION_BASE + s) != five.owner(ROUTER_SESSION_BASE + s))
            .count();
        // Adding one node to four should move about 1/5 of the keys; allow
        // generous slack for hash noise but catch "everything rehashed".
        assert!(moved > 0, "some keys must move");
        assert!(
            moved < (total as usize) * 2 / 5,
            "only ~1/5 of keys should move, moved {moved}/{total}"
        );
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(&[0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for s in 0..10_000u64 {
            counts[ring.owner(ROUTER_SESSION_BASE + s).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                (1_000..5_000).contains(&count),
                "backend {i} owns {count} of 10000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        assert_eq!(HashRing::new(&[]).owner(7), None);
    }

    #[test]
    fn wire_error_probe_matches_encoded_unknown_session() {
        let payload = encode_error("unknown session 41");
        assert!(is_unknown_session(&payload));
        let payload = encode_error("something else");
        assert!(!is_unknown_session(&payload));
        assert!(!is_unknown_session(&[]));
        assert!(!is_unknown_session(&[1, 2, 3]));
    }
}
