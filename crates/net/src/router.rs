//! The consistent-hash router tier: one front end fanning the protocol out
//! across N backend simulation servers.
//!
//! The paper scales by putting more cores behind one Undertow instance;
//! this module scales *out* instead: a [`Router`] implements
//! [`ApiHandler`](crate::server::ApiHandler), so the same epoll front end
//! that serves a [`rvsim_server::SimulationServer`] can serve a proxy that
//! consistent-hashes session ids across backend processes and forwards the
//! unmodified wire protocol over pooled keep-alive upstream connections.
//!
//! * **Placement** — session ids are hashed onto a ring of 64 virtual nodes
//!   per backend ([`HashRing`]); adding or removing a backend moves only
//!   `1/N` of the sessions.  The router assigns ids itself (from a high
//!   base, so they can never collide with ids a backend hands out to
//!   direct clients) and pins each session with `CreateSession{session}`.
//! * **Two rings** — `route` (where requests go) and `place` (where new or
//!   migrated sessions land).  During a drain the place ring already
//!   excludes the draining backend while the route ring still names it, so
//!   in-flight requests keep landing on the old copy until its session has
//!   actually moved.
//! * **Live drain** — `POST /admin/drain {"backend": k}` walks backend
//!   `k`'s sessions and, one at a time: latches the session (requests for
//!   it park on a condvar), `SerializeSession{destroy}` on the old node,
//!   `RestoreSession` on the ring target, records an override, unlatches.
//!   The client observes added latency, never an error.  When every session
//!   has moved the route ring flips to the place ring and the overrides are
//!   dropped.
//! * **Self-healing & failover** — housekeeping probes `/healthz` of every
//!   backend *concurrently*; a backend that misses two consecutive probes
//!   is dropped from both rings, and when the backends share a `--state-dir`
//!   the router immediately re-owns the dead node's sessions on the
//!   surviving ring owners from their last checkpoints (`/admin/recover`),
//!   with per-session staleness bounded by the checkpoint interval.  A
//!   recovered backend is folded back in.  `/metrics` aggregates upstream
//!   counters as `rvsim_upstream_*` sums next to the router's own
//!   `rvsim_router_*` series.
//! * **Circuit breakers** — every backend carries a breaker (closed → open
//!   after [`BREAKER_FAILURE_THRESHOLD`] consecutive upstream failures →
//!   half-open probe after [`BREAKER_COOLDOWN`]).  An open breaker fails
//!   fast instead of waiting out connect timeouts, and session traffic for
//!   a broken backend falls over to the surviving ring owner — so a sick
//!   backend sheds load before it drags the router down with it.

use crate::client::{http_get, http_post, TcpApiClient};
use crate::server::{ApiHandler, ControlResponse};
use bytes::Bytes;
use rvsim_obs::{expo, Event, EventKind, Exposition, Histogram, Observer};
use rvsim_server::{CheckpointEntry, RecoverOutcome, Request, Response};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Virtual nodes per backend on the hash ring.  64 keeps the per-backend
/// load imbalance in the low single-digit percents at the fleet sizes this
/// tier targets (2–16 nodes) while the ring stays small enough to rebuild
/// on every membership change.
const VNODES: u64 = 64;

/// First session id the router assigns.  Backends number their own sessions
/// from 0, so ids at and above this base can only have come from the router
/// — a direct client talking to a backend can never collide with a routed
/// session.
pub const ROUTER_SESSION_BASE: u64 = 1 << 32;

/// Upstream health-probe and control-call timeout.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// Consecutive failed `/healthz` probes before a backend is declared dead.
/// One dropped probe (GC pause, packet loss) must not flap the ring.
const PROBE_FAILURE_THRESHOLD: u32 = 2;

/// Consecutive upstream call failures that open a backend's breaker.
pub const BREAKER_FAILURE_THRESHOLD: u32 = 3;

/// How long an open breaker fails fast before admitting one half-open
/// probe request.
pub const BREAKER_COOLDOWN: Duration = Duration::from_secs(2);

/// Timeout for the `/admin/recover` call of a post-failover recovery (a
/// survivor may be replaying many checkpoints).
const RECOVER_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a request parks on a session that is mid-migration before the
/// router gives up waiting (the migration itself is bounded by upstream
/// timeouts, so this only fires if a drain wedges).
const MIGRATION_WAIT: Duration = Duration::from_secs(10);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over backend indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct HashRing {
    /// `(point, backend index)` sorted by point; a key is owned by the
    /// first point at or after its hash (wrapping).
    points: Vec<(u64, usize)>,
}

impl HashRing {
    fn new(members: &[usize]) -> Self {
        let mut points = Vec::with_capacity(members.len() * VNODES as usize);
        for &backend in members {
            for vnode in 0..VNODES {
                points.push((splitmix64((backend as u64) << 16 | vnode), backend));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    fn owner(&self, session: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = splitmix64(session);
        let index = self.points.partition_point(|&(point, _)| point < hash);
        Some(self.points[if index == self.points.len() { 0 } else { index }].1)
    }
}

/// Per-backend circuit breaker: closed → open after
/// [`BREAKER_FAILURE_THRESHOLD`] consecutive failures → half-open (one
/// probe request) after [`BREAKER_COOLDOWN`] → closed on success, re-open
/// on failure.  All transitions take an explicit `now_ms` so the state
/// machine is unit-testable without sleeping.
#[derive(Default)]
struct Breaker {
    consecutive_failures: AtomicU32,
    /// `now_ms + 1` of the moment the breaker opened; 0 = closed.  The +1
    /// keeps an open at millisecond zero distinguishable from the closed
    /// sentinel.
    opened_at_ms: AtomicU64,
    /// A half-open probe request is in flight (CAS-claimed so the cooldown
    /// expiry admits exactly one).
    half_open_probe: AtomicBool,
}

impl Breaker {
    /// Whether a request may go to the backend right now: always when
    /// closed; after the cooldown exactly one caller is admitted as the
    /// half-open probe; otherwise fail fast.
    fn allows(&self, now_ms: u64) -> bool {
        let opened = self.opened_at_ms.load(Ordering::Acquire);
        if opened == 0 {
            return true;
        }
        if now_ms + 1 < opened + BREAKER_COOLDOWN.as_millis() as u64 {
            return false;
        }
        !self.half_open_probe.swap(true, Ordering::AcqRel)
    }

    /// Open in any phase (cooling down or half-open)?  Used by routing to
    /// steer *other* sessions away; the backend's own probe still goes
    /// through [`Breaker::allows`].
    fn is_open(&self) -> bool {
        self.opened_at_ms.load(Ordering::Acquire) != 0
    }

    /// A call succeeded: close fully.
    fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Release);
        self.opened_at_ms.store(0, Ordering::Release);
        self.half_open_probe.store(false, Ordering::Release);
    }

    /// A call failed.  Returns whether this failure just opened the
    /// breaker (the closed → open edge).
    fn record_failure(&self, now_ms: u64) -> bool {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if self.is_open() {
            // A failed half-open probe re-arms the cooldown.
            self.opened_at_ms.store(now_ms + 1, Ordering::Release);
            self.half_open_probe.store(false, Ordering::Release);
            return false;
        }
        if failures >= BREAKER_FAILURE_THRESHOLD {
            self.half_open_probe.store(false, Ordering::Release);
            self.opened_at_ms.store(now_ms + 1, Ordering::Release);
            return true;
        }
        false
    }
}

/// One upstream simulation server.
struct Backend {
    addr: SocketAddr,
    /// Idle keep-alive connections; a checked-out client that errors is
    /// dropped instead of returned, so the pool never caches a dead socket.
    pool: Mutex<Vec<TcpApiClient>>,
    alive: AtomicBool,
    draining: AtomicBool,
    /// Consecutive failed health probes (reset by any success).
    probe_failures: AtomicU32,
    breaker: Breaker,
    /// Latency of this upstream hop (connect + call + read), including
    /// failed calls — the cost the router paid waiting on this backend.
    latency: Histogram,
}

/// The two membership views: where requests *route* and where sessions
/// *place* (they differ only while a drain is in flight).
#[derive(Default)]
struct Rings {
    route: HashRing,
    place: HashRing,
}

/// Router counters surfaced on `/metrics`.
#[derive(Default)]
struct RouterStats {
    forwarded: AtomicU64,
    upstream_errors: AtomicU64,
    retries: AtomicU64,
    sessions_migrated: AtomicU64,
    drains: AtomicU64,
    /// Requests rejected without touching the wire because the target's
    /// breaker was open.
    breaker_fast_fails: AtomicU64,
    /// Closed → open breaker transitions.
    breakers_opened: AtomicU64,
    /// Session requests rerouted to a surviving ring owner because their
    /// primary was dead or breaker-open.
    failovers: AtomicU64,
    /// Sessions re-owned from checkpoints after a backend death.
    sessions_recovered: AtomicU64,
}

/// One session re-owned by a surviving backend after a failover.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RecoveredSession {
    /// The session id.
    pub session: u64,
    /// Surviving backend index that now serves it.
    pub backend: usize,
    /// Cycle the session is serving at post-recovery.
    pub cycle: u64,
    /// Age of the checkpoint the recovery replayed — the progress window
    /// the crash could have lost, bounded by the checkpoint interval.
    pub staleness_ms: u64,
    /// The survivor already had the session live (nothing was replayed).
    pub already_live: bool,
}

/// Outcome of the recovery pass the router runs when backends die,
/// served on `POST /admin/failover` and surfaced in the durability bench.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct FailoverReport {
    /// Backend indices declared dead in this membership change.
    pub dead: Vec<usize>,
    /// Sessions now live on survivors (restored or confirmed live).
    pub recovered: Vec<RecoveredSession>,
    /// Sessions whose recovery failed, with the reason.
    pub failed: Vec<(u64, String)>,
}

/// Outcome of one `/admin/drain` call, serialized as its JSON response.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct DrainReport {
    /// Backend index that was drained.
    pub backend: usize,
    /// Sessions found on the backend when the drain started.
    pub sessions: usize,
    /// Sessions successfully migrated.
    pub migrated: usize,
    /// Sessions that failed to move, with the reason.
    pub failed: Vec<(u64, String)>,
}

/// A consistent-hash proxy over N backend simulation servers.  Plug into
/// the front end with
/// [`NetServer::start_with_handler`](crate::server::NetServer::start_with_handler).
pub struct Router {
    backends: Vec<Backend>,
    rings: RwLock<Rings>,
    /// Session → backend pins that survive until the route ring catches up
    /// with a migration.
    overrides: RwLock<HashMap<u64, usize>>,
    /// Sessions currently mid-migration; requests for them park on
    /// `migration_done` instead of racing the move.
    migrating: Mutex<HashSet<u64>>,
    migration_done: Condvar,
    next_session: AtomicU64,
    next_compile: AtomicU64,
    stats: RouterStats,
    /// Cached `rvsim_upstream_*` aggregate, refreshed by housekeeping so
    /// `/metrics` never blocks on upstream probes.
    upstream_metrics: Mutex<String>,
    /// Serializes drains (and keeps ring edits coherent with them).
    drain_lock: Mutex<()>,
    /// Router-tier observability: the journal the front end shares (breaker
    /// transitions, failover re-owns and forwarded-hop events land next to
    /// connection events), phase histograms and the request-id mint.
    obs: Arc<Observer>,
    /// Monotonic epoch for the breaker clocks.
    started: Instant,
    /// The most recent failover recovery report (`POST /admin/failover`).
    last_failover: Mutex<Option<FailoverReport>>,
}

impl Router {
    /// A router over the given backends, all presumed alive until the first
    /// health probe says otherwise.
    pub fn new(backends: Vec<SocketAddr>) -> Router {
        let members: Vec<usize> = (0..backends.len()).collect();
        let ring = HashRing::new(&members);
        Router {
            backends: backends
                .into_iter()
                .map(|addr| Backend {
                    addr,
                    pool: Mutex::new(Vec::new()),
                    alive: AtomicBool::new(true),
                    draining: AtomicBool::new(false),
                    probe_failures: AtomicU32::new(0),
                    breaker: Breaker::default(),
                    latency: Histogram::new(),
                })
                .collect(),
            rings: RwLock::new(Rings { route: ring.clone(), place: ring }),
            overrides: RwLock::new(HashMap::new()),
            migrating: Mutex::new(HashSet::new()),
            migration_done: Condvar::new(),
            next_session: AtomicU64::new(ROUTER_SESSION_BASE),
            next_compile: AtomicU64::new(0),
            stats: RouterStats::default(),
            upstream_metrics: Mutex::new(String::new()),
            drain_lock: Mutex::new(()),
            obs: Arc::new(Observer::default()),
            started: Instant::now(),
            last_failover: Mutex::new(None),
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The most recent failover recovery report, if any backend has died.
    pub fn last_failover(&self) -> Option<FailoverReport> {
        lock(&self.last_failover).clone()
    }

    /// Sessions re-owned from checkpoints after backend deaths.
    pub fn recovered_session_count(&self) -> u64 {
        self.stats.sessions_recovered.load(Ordering::Relaxed)
    }

    /// Requests fast-failed by an open circuit breaker.
    pub fn breaker_fast_fail_count(&self) -> u64 {
        self.stats.breaker_fast_fails.load(Ordering::Relaxed)
    }

    /// Backend addresses, in index order.
    pub fn backend_addrs(&self) -> Vec<SocketAddr> {
        self.backends.iter().map(|b| b.addr).collect()
    }

    /// Where the place ring would put `session` right now.  Benchmarks and
    /// tests use this to pick explicit session ids with a known, balanced
    /// placement.
    pub fn placement(&self, session: u64) -> Option<usize> {
        read_rings(&self.rings).place.owner(session)
    }

    /// Backends currently routable (alive and not draining).
    fn routable(&self) -> Vec<usize> {
        self.backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.alive.load(Ordering::Acquire) && !b.draining.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Forward a raw protocol payload to backend `index` over a pooled
    /// keep-alive connection, gated by the backend's circuit breaker: an
    /// open breaker fails fast instead of burning a connect timeout, and
    /// every outcome feeds the breaker's state machine.  The hop is timed
    /// into the backend's latency histogram; slow or failed hops (and every
    /// breaker transition) are journaled with the request id.
    fn call_backend(&self, index: usize, body: &[u8], request_id: u64) -> Result<Vec<u8>, String> {
        let backend = &self.backends[index];
        if !backend.alive.load(Ordering::Acquire) {
            return Err(format!("backend {index} ({}) is down", backend.addr));
        }
        if !backend.breaker.allows(self.now_ms()) {
            self.stats.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
            return Err(format!("backend {index} ({}) breaker is open", backend.addr));
        }
        let pooled = lock(&backend.pool).pop();
        let mut client = pooled.unwrap_or_else(|| TcpApiClient::new(backend.addr));
        self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        let hop_started = Instant::now();
        match client.call_raw_traced(body, request_id) {
            Ok(payload) => {
                let upstream_us = elapsed_us(hop_started);
                backend.latency.record(upstream_us);
                let was_open = backend.breaker.is_open();
                backend.breaker.record_success();
                if was_open {
                    self.journal(
                        Event::new(EventKind::BreakerClose, self.obs.journal.now_us())
                            .fields(index as u64, 0),
                    );
                }
                if upstream_us >= self.obs.slow_request_us() {
                    self.journal(
                        Event::new(EventKind::RouterForward, self.obs.journal.now_us())
                            .request(request_id)
                            .fields(index as u64, upstream_us),
                    );
                }
                lock(&backend.pool).push(client);
                Ok(payload)
            }
            Err(e) => {
                let upstream_us = elapsed_us(hop_started);
                backend.latency.record(upstream_us);
                // A failed hop is always journal-worthy, whatever it took.
                self.journal(
                    Event::new(EventKind::RouterForward, self.obs.journal.now_us())
                        .request(request_id)
                        .fields(index as u64, upstream_us),
                );
                self.stats.upstream_errors.fetch_add(1, Ordering::Relaxed);
                if backend.breaker.record_failure(self.now_ms()) {
                    self.stats.breakers_opened.fetch_add(1, Ordering::Relaxed);
                    self.journal(
                        Event::new(EventKind::BreakerOpen, self.obs.journal.now_us())
                            .request(request_id)
                            .fields(index as u64, 0),
                    );
                    // Whatever the pool holds points at a broken backend.
                    lock(&backend.pool).clear();
                }
                Err(e)
            }
        }
    }

    /// Record one event in the router's journal.
    fn journal(&self, event: Event) {
        self.obs.journal.record(event);
    }

    /// A backend requests may be routed to: alive and not breaker-open.
    fn is_callable(&self, index: usize) -> bool {
        let backend = &self.backends[index];
        backend.alive.load(Ordering::Acquire) && !backend.breaker.is_open()
    }

    /// The consistent-hash owner of `session` among callable, non-draining
    /// backends other than `exclude` — where the session's traffic fails
    /// over while its primary is broken.  Hash-based (not round-robin) so
    /// every request for one session lands on the *same* survivor, which
    /// then restores it from the shared checkpoint directory exactly once.
    fn fallback_for(&self, session: u64, exclude: usize) -> Option<usize> {
        let members: Vec<usize> = self
            .backends
            .iter()
            .enumerate()
            .filter(|&(i, b)| {
                i != exclude
                    && b.alive.load(Ordering::Acquire)
                    && !b.draining.load(Ordering::Acquire)
                    && !b.breaker.is_open()
            })
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            return None;
        }
        HashRing::new(&members).owner(session)
    }

    /// Forward a typed request and decode the typed response (control-plane
    /// calls: no client request id to propagate).
    fn call_backend_typed(&self, index: usize, request: &Request) -> Result<Response, String> {
        let body = serde_json::to_vec(request).map_err(|e| e.to_string())?;
        let payload = self.call_backend(index, &body, 0)?;
        rvsim_server::SimulationServer::decode_response(&payload)
    }

    /// Where a request for `session` goes right now: a migration override
    /// if one exists, the route ring otherwise.
    fn target_for(&self, session: u64) -> Option<usize> {
        if let Some(&pinned) = read(&self.overrides).get(&session) {
            return Some(pinned);
        }
        read_rings(&self.rings).route.owner(session)
    }

    /// Park until `session` is not mid-migration (bounded wait).
    fn wait_not_migrating(&self, session: u64) {
        let mut migrating = lock(&self.migrating);
        let deadline = std::time::Instant::now() + MIGRATION_WAIT;
        while migrating.contains(&session) {
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero() {
                return;
            }
            migrating = self
                .migration_done
                .wait_timeout(migrating, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Forward a session-bearing request.  If the target answers "unknown
    /// session" and the routing decision has changed since (a drain or a
    /// health flip landed mid-flight), the request is retried once on the
    /// new target — this is what makes a drain invisible to clients.
    ///
    /// A primary that is dead or breaker-open is skipped *before* the call:
    /// the request fails over to the surviving ring owner, which (with a
    /// shared `--state-dir`) restores the session from its last checkpoint
    /// on first touch.  Client-visible errors therefore stop as soon as the
    /// breaker opens — at most [`BREAKER_FAILURE_THRESHOLD`] requests per
    /// session-owning backend observe the crash window itself.
    fn forward_session(&self, session: u64, body: &[u8], request_id: u64) -> Bytes {
        self.wait_not_migrating(session);
        let Some(primary) = self.target_for(session) else {
            return encode_error("no live backend to route to");
        };
        let target = if self.is_callable(primary) {
            primary
        } else {
            match self.fallback_for(session, primary) {
                Some(fallback) => {
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    fallback
                }
                // Nothing to fail over to: let the call produce its error.
                None => primary,
            }
        };
        match self.call_backend(target, body, request_id) {
            Ok(payload) => {
                if is_unknown_session(&payload) {
                    self.wait_not_migrating(session);
                    if let Some(moved) = self.target_for(session) {
                        if moved != target {
                            self.stats.retries.fetch_add(1, Ordering::Relaxed);
                            if let Ok(payload) = self.call_backend(moved, body, request_id) {
                                return Bytes::from(payload);
                            }
                        }
                    }
                }
                Bytes::from(payload)
            }
            Err(e) => {
                // The call itself failed — possibly the failure that just
                // opened the breaker.  If the target is no longer callable,
                // fail over once instead of bouncing the error to the
                // client; the survivor restores from the checkpoint.
                if !self.is_callable(target) {
                    if let Some(fallback) = self.fallback_for(session, target) {
                        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        if let Ok(payload) = self.call_backend(fallback, body, request_id) {
                            return Bytes::from(payload);
                        }
                    }
                }
                encode_error(format!("upstream error: {e}"))
            }
        }
    }

    /// Create a session: pick (or honor) the id, pin it to the place-ring
    /// owner, and forward with the id made explicit so the backend installs
    /// it under the router's numbering.
    fn create_session(&self, request: Request, request_id: u64) -> Bytes {
        let Request::CreateSession { program, architecture, entry, session } = request else {
            return encode_error("create_session routed a non-create request");
        };
        let session = session.unwrap_or_else(|| self.next_session.fetch_add(1, Ordering::Relaxed));
        let Some(owner) = read_rings(&self.rings).place.owner(session) else {
            return encode_error("no live backend to place the session on");
        };
        // A placement owner that is dead or breaker-open would reject the
        // create; place on the surviving owner instead.
        let target = if self.is_callable(owner) {
            owner
        } else {
            match self.fallback_for(session, owner) {
                Some(fallback) => {
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    fallback
                }
                None => owner,
            }
        };
        let request =
            Request::CreateSession { program, architecture, entry, session: Some(session) };
        let body = match serde_json::to_vec(&request) {
            Ok(body) => body,
            Err(e) => return encode_error(format!("unencodable request: {e}")),
        };
        match self.call_backend(target, &body, request_id) {
            Ok(payload) => Bytes::from(payload),
            Err(e) => encode_error(format!("upstream error: {e}")),
        }
    }

    /// Union of every routable backend's session list.
    fn list_sessions(&self) -> Bytes {
        let mut sessions = Vec::new();
        for index in self.routable() {
            match self.call_backend_typed(index, &Request::ListSessions) {
                Ok(Response::SessionList { sessions: mut part }) => sessions.append(&mut part),
                Ok(other) => {
                    return encode_error(format!("backend {index} answered {other:?} to a list"))
                }
                Err(e) => return encode_error(format!("upstream error: {e}")),
            }
        }
        sessions.sort_unstable();
        sessions.dedup();
        encode_response(&Response::SessionList { sessions })
    }

    /// Move every session off backend `index` (serialize on the old node,
    /// restore on the ring target, flip the route ring when done).
    pub fn drain(&self, index: usize) -> Result<DrainReport, (u16, String)> {
        let _serialized_drains = lock(&self.drain_lock);
        if index >= self.backends.len() {
            return Err((400, format!("no backend {index}")));
        }
        if self.backends[index].draining.swap(true, Ordering::AcqRel) {
            return Err((409, format!("backend {index} is already draining")));
        }
        let remaining = self.routable();
        if remaining.is_empty() {
            self.backends[index].draining.store(false, Ordering::Release);
            return Err((409, "no other live backend to drain into".to_string()));
        }
        // New and migrated sessions stop landing on the draining node now;
        // requests for existing sessions still route to it.
        write_rings(&self.rings).place = HashRing::new(&remaining);

        let sessions = match self.call_backend_typed(index, &Request::ListSessions) {
            Ok(Response::SessionList { sessions }) => sessions,
            Ok(other) => {
                self.backends[index].draining.store(false, Ordering::Release);
                return Err((502, format!("backend {index} answered {other:?} to a list")));
            }
            Err(e) => {
                self.backends[index].draining.store(false, Ordering::Release);
                return Err((502, format!("cannot enumerate backend {index}: {e}")));
            }
        };

        let mut migrated = Vec::new();
        let mut failed = Vec::new();
        for &session in &sessions {
            lock(&self.migrating).insert(session);
            let result = self.migrate_session(session, index);
            match result {
                Ok(target) => {
                    write(&self.overrides).insert(session, target);
                    self.journal(
                        Event::new(EventKind::SessionMigrated, self.obs.journal.now_us())
                            .session(session)
                            .fields(index as u64, target as u64),
                    );
                    migrated.push(session);
                }
                Err(e) => failed.push((session, e)),
            }
            lock(&self.migrating).remove(&session);
            self.migration_done.notify_all();
        }

        // Flip: requests now follow the post-drain ring, which agrees with
        // every override recorded above — so those pins can go.
        {
            let mut rings = write_rings(&self.rings);
            rings.route = rings.place.clone();
        }
        {
            let mut overrides = write(&self.overrides);
            for session in &migrated {
                overrides.remove(session);
            }
        }
        self.stats.sessions_migrated.fetch_add(migrated.len() as u64, Ordering::Relaxed);
        self.stats.drains.fetch_add(1, Ordering::Relaxed);
        self.journal(
            Event::new(EventKind::Drain, self.obs.journal.now_us())
                .fields(index as u64, migrated.len() as u64),
        );
        Ok(DrainReport {
            backend: index,
            sessions: sessions.len(),
            migrated: migrated.len(),
            failed,
        })
    }

    /// Serialize-destroy on `from`, restore on the place-ring target.
    /// Returns the target index.
    fn migrate_session(&self, session: u64, from: usize) -> Result<usize, String> {
        let target = read_rings(&self.rings)
            .place
            .owner(session)
            .ok_or_else(|| "no live backend to migrate to".to_string())?;
        let envelope = match self
            .call_backend_typed(from, &Request::SerializeSession { session, destroy: true })?
        {
            Response::Serialized(envelope) => envelope,
            Response::Error { message } => return Err(format!("serialize failed: {message}")),
            other => return Err(format!("serialize answered {other:?}")),
        };
        match self
            .call_backend_typed(target, &Request::RestoreSession { envelope, replace: false })?
        {
            Response::SessionCreated { .. } => Ok(target),
            Response::Error { message } => Err(format!("restore failed: {message}")),
            other => Err(format!("restore answered {other:?}")),
        }
    }

    /// Probe every backend's `/healthz` concurrently (one hung backend must
    /// not delay detection of the others by its timeout).  A backend flips
    /// dead only after [`PROBE_FAILURE_THRESHOLD`] consecutive misses — one
    /// dropped probe never flaps the ring — and any success revives it
    /// immediately.  On a membership change both rings are rebuilt from the
    /// survivors, and deaths trigger the checkpoint-recovery pass.
    fn probe_backends(&self) {
        let results: Vec<bool> = std::thread::scope(|scope| {
            let probes: Vec<_> = self
                .backends
                .iter()
                .map(|backend| {
                    let addr = backend.addr;
                    scope.spawn(move || {
                        matches!(http_get(addr, "/healthz", PROBE_TIMEOUT), Ok((200, _)))
                    })
                })
                .collect();
            probes.into_iter().map(|probe| probe.join().unwrap_or(false)).collect()
        });
        let mut changed = false;
        let mut died = Vec::new();
        for (index, (backend, ok)) in self.backends.iter().zip(results).enumerate() {
            if ok {
                backend.probe_failures.store(0, Ordering::Release);
                if !backend.alive.swap(true, Ordering::AcqRel) {
                    changed = true;
                    backend.breaker.record_success();
                    self.journal(
                        Event::new(EventKind::BackendRevived, self.obs.journal.now_us())
                            .fields(index as u64, 0),
                    );
                }
            } else {
                let misses = backend.probe_failures.fetch_add(1, Ordering::AcqRel) + 1;
                if misses >= PROBE_FAILURE_THRESHOLD && backend.alive.swap(false, Ordering::AcqRel)
                {
                    changed = true;
                    // Whatever connections were pooled are dead with it.
                    lock(&backend.pool).clear();
                    self.journal(
                        Event::new(EventKind::BackendDead, self.obs.journal.now_us())
                            .fields(index as u64, 0),
                    );
                    died.push(index);
                }
            }
        }
        if changed {
            let members = self.routable();
            let ring = HashRing::new(&members);
            {
                let mut rings = write_rings(&self.rings);
                rings.route = ring.clone();
                rings.place = ring;
            }
            if !died.is_empty() {
                self.recover_after_failover(&died);
            }
        }
    }

    /// Re-own a dead backend's sessions on the survivors.  Each surviving
    /// backend is asked for the checkpoints its state directory holds
    /// (`/admin/checkpoints`); the sessions the post-failover route ring
    /// assigns to that survivor are then recovered *on* it
    /// (`/admin/recover` → restore-from-checkpoint, replay-verified).  The
    /// per-session staleness each restore inherited is recorded in the
    /// failover report, bounded by the checkpoint interval.
    ///
    /// Backends that do not share a state directory simply report no
    /// foreign checkpoints and the pass degrades to the old behaviour
    /// (those sessions are gone).
    fn recover_after_failover(&self, died: &[usize]) {
        #[derive(serde::Serialize)]
        struct RecoverArgs {
            sessions: Vec<u64>,
        }
        let reown_started = Instant::now();
        let mut report =
            FailoverReport { dead: died.to_vec(), recovered: Vec::new(), failed: Vec::new() };
        for index in self.routable() {
            let addr = self.backends[index].addr;
            let entries = match http_post(addr, "/admin/checkpoints", b"", PROBE_TIMEOUT) {
                Ok((200, body)) => match serde_json::from_slice::<Vec<CheckpointEntry>>(&body) {
                    Ok(entries) => entries,
                    Err(_) => continue,
                },
                // Checkpointing disabled (404) or the survivor is sick too.
                _ => continue,
            };
            let mine: Vec<u64> = entries
                .iter()
                .map(|entry| entry.session)
                .filter(|&session| read_rings(&self.rings).route.owner(session) == Some(index))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let args = serde_json::to_vec(&RecoverArgs { sessions: mine.clone() })
                .expect("recover args serialize");
            match http_post(addr, "/admin/recover", &args, RECOVER_TIMEOUT) {
                Ok((200, body)) => {
                    let Ok(outcomes) = serde_json::from_slice::<Vec<RecoverOutcome>>(&body) else {
                        report.failed.extend(
                            mine.iter().map(|&s| (s, "unparseable recover response".to_string())),
                        );
                        continue;
                    };
                    for outcome in outcomes {
                        if outcome.ok {
                            report.recovered.push(RecoveredSession {
                                session: outcome.session,
                                backend: index,
                                cycle: outcome.cycle,
                                staleness_ms: outcome.staleness_ms,
                                already_live: outcome.already_live,
                            });
                        } else {
                            report.failed.push((
                                outcome.session,
                                outcome.error.unwrap_or_else(|| "recover failed".to_string()),
                            ));
                        }
                    }
                }
                Ok((status, _)) => report
                    .failed
                    .extend(mine.iter().map(|&s| (s, format!("recover answered {status}")))),
                Err(e) => report.failed.extend(mine.iter().map(|&s| (s, e.clone()))),
            }
        }
        let freshly_restored = report.recovered.iter().filter(|r| !r.already_live).count() as u64;
        self.stats.sessions_recovered.fetch_add(freshly_restored, Ordering::Relaxed);
        // Journal the re-own as a whole, then each recovered session, so a
        // chaos run is reconstructable from the trace alone.
        self.journal(
            Event::new(EventKind::FailoverReown, self.obs.journal.now_us())
                .fields(report.recovered.len() as u64, elapsed_us(reown_started)),
        );
        for recovered in &report.recovered {
            self.journal(
                Event::new(EventKind::SessionRestore, self.obs.journal.now_us())
                    .session(recovered.session)
                    .fields(recovered.backend as u64, recovered.staleness_ms),
            );
        }
        *lock(&self.last_failover) = Some(report);
    }

    /// Aggregate upstream `/metrics` into `rvsim_upstream_*` families
    /// (cached; served by `append_metrics`).  The documents are parsed and
    /// merged structurally — counters and gauges sum per `(name, labels)`,
    /// histogram buckets merge per `le` bound (which preserves cumulative
    /// invariants) — then re-rendered with every `rvsim_` family renamed to
    /// `rvsim_upstream_`.  Per-instance uptime is dropped: a summed uptime
    /// means nothing.
    fn refresh_upstream_metrics(&self) {
        let documents: Vec<String> = self
            .backends
            .iter()
            .filter(|b| b.alive.load(Ordering::Acquire))
            .filter_map(|b| match http_get(b.addr, "/metrics", PROBE_TIMEOUT) {
                Ok((200, body)) => Some(String::from_utf8_lossy(&body).into_owned()),
                _ => None,
            })
            .collect();
        let rendered = expo::merge_and_rename(&documents, |name| {
            if name == "rvsim_uptime_seconds" {
                return None;
            }
            name.strip_prefix("rvsim_").map(|suffix| format!("rvsim_upstream_{suffix}"))
        });
        *lock(&self.upstream_metrics) = rendered;
    }
}

impl ApiHandler for Router {
    fn handle_api(&self, body: &[u8], request_id: u64) -> Bytes {
        let request: Request = match serde_json::from_slice(body) {
            Ok(request) => request,
            Err(e) => return encode_error(format!("malformed request: {e}")),
        };
        match request {
            request @ Request::CreateSession { .. } => self.create_session(request, request_id),
            Request::Compile { .. } => {
                // Compilation is stateless: spread it round-robin.
                let members = self.routable();
                if members.is_empty() {
                    return encode_error("no live backend to compile on");
                }
                let pick = self.next_compile.fetch_add(1, Ordering::Relaxed) as usize;
                match self.call_backend(members[pick % members.len()], body, request_id) {
                    Ok(payload) => Bytes::from(payload),
                    Err(e) => encode_error(format!("upstream error: {e}")),
                }
            }
            Request::ListSessions => self.list_sessions(),
            Request::RestoreSession { ref envelope, .. } => {
                let session = envelope.session;
                match read_rings(&self.rings).place.owner(session) {
                    Some(target) => match self.call_backend(target, body, request_id) {
                        Ok(payload) => Bytes::from(payload),
                        Err(e) => encode_error(format!("upstream error: {e}")),
                    },
                    None => encode_error("no live backend to restore onto"),
                }
            }
            Request::Step { session, .. }
            | Request::StepBack { session, .. }
            | Request::Run { session, .. }
            | Request::GetState { session }
            | Request::GetStateDelta { session, .. }
            | Request::GetStats { session }
            | Request::DestroySession { session }
            | Request::SerializeSession { session, .. } => {
                self.forward_session(session, body, request_id)
            }
        }
    }

    fn handle_control(&self, target: &str, body: &[u8]) -> Option<ControlResponse> {
        match target {
            "/admin/drain" => {
                #[derive(serde::Deserialize)]
                struct DrainArgs {
                    backend: usize,
                }
                let args: DrainArgs = match serde_json::from_slice(body) {
                    Ok(args) => args,
                    Err(e) => {
                        return Some(control(400, "Bad Request", &format!("{{\"error\":\"{e}\"}}")))
                    }
                };
                Some(match self.drain(args.backend) {
                    Ok(report) => ControlResponse {
                        status: 200,
                        reason: "OK",
                        body: serde_json::to_vec(&report).expect("reports serialize"),
                    },
                    Err((status, message)) => {
                        let reason = if status == 409 { "Conflict" } else { "Bad Request" };
                        control(status, reason, &format!("{{\"error\":{}}}", json_string(&message)))
                    }
                })
            }
            "/admin/failover" => {
                let body =
                    serde_json::to_vec(&self.last_failover()).expect("failover reports serialize");
                Some(ControlResponse { status: 200, reason: "OK", body })
            }
            _ => None,
        }
    }

    fn append_metrics(&self, out: &mut Exposition) {
        let alive = self.backends.iter().filter(|b| b.alive.load(Ordering::Acquire)).count();
        out.gauge("rvsim_router_backends", "Configured backends.", self.backends.len() as u64);
        out.gauge("rvsim_router_backends_alive", "Backends passing health probes.", alive as u64);
        out.counter(
            "rvsim_router_forwarded_total",
            "Requests forwarded upstream.",
            self.stats.forwarded.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_upstream_errors_total",
            "Upstream calls that failed.",
            self.stats.upstream_errors.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_retries_total",
            "Requests retried after a routing change.",
            self.stats.retries.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_sessions_migrated_total",
            "Sessions moved by drains.",
            self.stats.sessions_migrated.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_drains_total",
            "Completed drains.",
            self.stats.drains.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_breaker_fast_fails_total",
            "Requests rejected by an open circuit breaker.",
            self.stats.breaker_fast_fails.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_breakers_opened_total",
            "Closed-to-open breaker transitions.",
            self.stats.breakers_opened.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_failovers_total",
            "Session requests rerouted to a surviving owner.",
            self.stats.failovers.load(Ordering::Relaxed),
        );
        out.counter(
            "rvsim_router_sessions_recovered_total",
            "Sessions re-owned from checkpoints after a backend death.",
            self.stats.sessions_recovered.load(Ordering::Relaxed),
        );
        out.family("rvsim_router_backend_up", "gauge", "Backend liveness by index.");
        for (index, backend) in self.backends.iter().enumerate() {
            let index = index.to_string();
            out.sample_u64(
                "rvsim_router_backend_up",
                &[("backend", &index)],
                u64::from(backend.alive.load(Ordering::Acquire)),
            );
        }
        out.family(
            "rvsim_router_backend_breaker_open",
            "gauge",
            "Circuit-breaker state by backend index (1 = open).",
        );
        for (index, backend) in self.backends.iter().enumerate() {
            let index = index.to_string();
            out.sample_u64(
                "rvsim_router_backend_breaker_open",
                &[("backend", &index)],
                u64::from(backend.breaker.is_open()),
            );
        }
        out.family(
            "rvsim_router_upstream_seconds",
            "histogram",
            "Upstream hop latency by backend (connect + call + read).",
        );
        for (index, backend) in self.backends.iter().enumerate() {
            let index = index.to_string();
            out.histogram_series(
                "rvsim_router_upstream_seconds",
                &[("backend", &index)],
                &backend.latency.snapshot(),
            );
        }
        out.raw(&lock(&self.upstream_metrics));
    }

    fn observer(&self) -> Option<Arc<Observer>> {
        Some(Arc::clone(&self.obs))
    }

    fn housekeeping(&self) {
        self.probe_backends();
        self.refresh_upstream_metrics();
    }
}

fn control(status: u16, reason: &'static str, body: &str) -> ControlResponse {
    ControlResponse { status, reason, body: body.as_bytes().to_vec() }
}

/// Encode a router-originated error in the wire format (flag byte 0 = plain
/// JSON), indistinguishable on the client from a backend error.
fn encode_error(message: impl Into<String>) -> Bytes {
    encode_response(&Response::error(message))
}

fn encode_response(response: &Response) -> Bytes {
    let json = serde_json::to_vec(response).expect("responses serialize");
    let mut out = Vec::with_capacity(json.len() + 1);
    out.push(0u8);
    out.extend_from_slice(&json);
    Bytes::from(out)
}

/// Cheap wire-level test for an (uncompressed) "unknown session" error —
/// the signal that a session moved out from under an in-flight request.
fn is_unknown_session(payload: &[u8]) -> bool {
    payload.first() == Some(&0)
        && payload[1..].starts_with(br#"{"type":"error","message":"unknown session"#)
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros() as u64
}

fn json_string(s: &str) -> String {
    serde_json::to_string(s).unwrap_or_else(|_| "\"error\"".to_string())
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read<K, V>(map: &RwLock<HashMap<K, V>>) -> std::sync::RwLockReadGuard<'_, HashMap<K, V>> {
    map.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<K, V>(map: &RwLock<HashMap<K, V>>) -> std::sync::RwLockWriteGuard<'_, HashMap<K, V>> {
    map.write().unwrap_or_else(PoisonError::into_inner)
}

fn read_rings(rings: &RwLock<Rings>) -> std::sync::RwLockReadGuard<'_, Rings> {
    rings.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_rings(rings: &RwLock<Rings>) -> std::sync::RwLockWriteGuard<'_, Rings> {
    rings.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_ownership_is_stable_under_membership_growth() {
        let four = HashRing::new(&[0, 1, 2, 3]);
        let five = HashRing::new(&[0, 1, 2, 3, 4]);
        let total = 10_000u64;
        let moved = (0..total)
            .filter(|&s| four.owner(ROUTER_SESSION_BASE + s) != five.owner(ROUTER_SESSION_BASE + s))
            .count();
        // Adding one node to four should move about 1/5 of the keys; allow
        // generous slack for hash noise but catch "everything rehashed".
        assert!(moved > 0, "some keys must move");
        assert!(
            moved < (total as usize) * 2 / 5,
            "only ~1/5 of keys should move, moved {moved}/{total}"
        );
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(&[0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for s in 0..10_000u64 {
            counts[ring.owner(ROUTER_SESSION_BASE + s).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                (1_000..5_000).contains(&count),
                "backend {i} owns {count} of 10000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        assert_eq!(HashRing::new(&[]).owner(7), None);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_half_opens_after_cooldown() {
        let breaker = Breaker::default();
        let cooldown = BREAKER_COOLDOWN.as_millis() as u64;
        assert!(breaker.allows(0), "a fresh breaker is closed");

        // Failures below the threshold keep it closed.
        assert!(!breaker.record_failure(10));
        assert!(!breaker.record_failure(20));
        assert!(breaker.allows(25));
        // The threshold failure opens it — exactly once.
        assert!(breaker.record_failure(30), "third consecutive failure must open");
        assert!(breaker.is_open());

        // Open: everything fast-fails through the cooldown.
        assert!(!breaker.allows(31));
        assert!(!breaker.allows(30 + cooldown - 1));

        // Cooldown elapsed: exactly one half-open probe is admitted.
        let probe_time = 30 + cooldown + 1;
        assert!(breaker.allows(probe_time), "first caller is the half-open probe");
        assert!(!breaker.allows(probe_time), "second caller must still fast-fail");

        // The probe fails: re-open with a fresh cooldown (not a new "open").
        assert!(!breaker.record_failure(probe_time + 5));
        assert!(!breaker.allows(probe_time + 10));

        // The next probe succeeds: fully closed again.
        let retry_time = probe_time + 5 + cooldown + 1;
        assert!(breaker.allows(retry_time));
        breaker.record_success();
        assert!(!breaker.is_open());
        assert!(breaker.allows(retry_time + 1));
        // And the failure count restarted: one new failure does not open.
        assert!(!breaker.record_failure(retry_time + 2));
        assert!(breaker.allows(retry_time + 3));
    }

    #[test]
    fn breaker_success_interrupts_the_failure_streak() {
        let breaker = Breaker::default();
        assert!(!breaker.record_failure(1));
        assert!(!breaker.record_failure(2));
        breaker.record_success();
        assert!(!breaker.record_failure(3));
        assert!(!breaker.record_failure(4), "streak restarted: still below threshold");
        assert!(breaker.record_failure(5));
        assert!(breaker.is_open());
    }

    #[test]
    fn wire_error_probe_matches_encoded_unknown_session() {
        let payload = encode_error("unknown session 41");
        assert!(is_unknown_session(&payload));
        let payload = encode_error("something else");
        assert!(!is_unknown_session(&payload));
        assert!(!is_unknown_session(&[]));
        assert!(!is_unknown_session(&[1, 2, 3]));
    }
}
