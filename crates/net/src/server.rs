//! The TCP/HTTP front end: bounded acceptor + connection worker pool around
//! a [`SimulationServer`].
//!
//! Architecture (the Rust stand-in for the paper's Undertow deployment,
//! §III/§IV-A, now over real sockets):
//!
//! * an **acceptor thread** owns the listener and hands accepted
//!   connections to a *bounded* queue — when every worker is busy and the
//!   queue is full the connection is answered `503` and closed instead of
//!   queueing unboundedly;
//! * **connection workers** each drive one connection at a time with
//!   blocking I/O: incremental request framing ([`RequestParser`]),
//!   keep-alive and pipelining, `POST /api` dispatched into
//!   [`SimulationServer::handle_raw`] — the response body is the server's
//!   shared [`bytes::Bytes`] payload written straight to the socket, so a
//!   cached `GetState` is served with zero copies end to end;
//! * a **housekeeping thread** ticks periodically and runs the
//!   idle-session sweep ([`SimulationServer::evict_idle`]);
//! * `GET /metrics` exposes front-end counters and session-store gauges,
//!   `GET /healthz` answers `ok`.
//!
//! Shutdown is graceful: in-flight requests finish, idle keep-alive
//! connections are closed at the next read-timeout tick, and every thread is
//! joined before [`NetServer::shutdown`] returns.

use crate::http::{write_response_head, HttpError, HttpRequest, RequestParser};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rvsim_server::SimulationServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// Connection workers: each owns one live connection at a time, so this
    /// bounds concurrent connections (keep-alive clients hold a worker).
    pub connection_workers: usize,
    /// Accepted connections that may wait for a worker before the acceptor
    /// starts answering `503 Service Unavailable`.
    pub pending_connections: usize,
    /// Housekeeping tick period (idle-session eviction).
    pub housekeeping_interval: Duration,
    /// Socket read timeout: bounds how long a worker sleeps in `read`
    /// before re-checking the shutdown flag.
    pub read_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            connection_workers: 64,
            pending_connections: 128,
            housekeeping_interval: Duration::from_secs(1),
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// Monotonic front-end counters served by `GET /metrics`.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted and queued for a worker.
    pub connections_accepted: AtomicU64,
    /// Connections answered `503` because the pool and queue were full.
    pub connections_rejected: AtomicU64,
    /// Requests answered (any status).
    pub requests_served: AtomicU64,
    /// Requests rejected at the HTTP layer (4xx/5xx framing errors).
    pub http_errors: AtomicU64,
}

/// A running network front end.  Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the acceptor, the workers and the
/// housekeeper and joins their threads.
pub struct NetServer {
    server: Arc<SimulationServer>,
    stats: Arc<NetStats>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `config.addr` and start the front end around `server`.
    pub fn start(server: SimulationServer, config: NetConfig) -> std::io::Result<NetServer> {
        Self::start_shared(Arc::new(server), config)
    }

    /// [`start`](Self::start) with an externally shared server.
    pub fn start_shared(
        server: Arc<SimulationServer>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(NetStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let (tx, rx) = bounded::<TcpStream>(config.pending_connections.max(1));

        let mut threads = Vec::new();
        threads.push(spawn_acceptor(listener, tx, Arc::clone(&stats), Arc::clone(&shutdown)));
        for _ in 0..config.connection_workers.max(1) {
            threads.push(spawn_worker(
                rx.clone(),
                Arc::clone(&server),
                Arc::clone(&stats),
                Arc::clone(&shutdown),
                config.read_timeout,
                started,
            ));
        }
        drop(rx);
        threads.push(spawn_housekeeper(
            Arc::clone(&server),
            Arc::clone(&shutdown),
            config.housekeeping_interval,
        ));

        Ok(NetServer { server, stats, addr, shutdown, threads })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The simulation server behind the front end.
    pub fn server(&self) -> &Arc<SimulationServer> {
        &self.server
    }

    /// Front-end counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stop accepting, finish in-flight requests, close connections and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => match tx.try_send(stream) {
                    Ok(()) => {
                        stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(stream)) => {
                        stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        reject_overloaded(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    // Transient accept errors (aborted handshakes etc.):
                    // keep accepting.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    })
}

/// Best-effort `503` on a connection there is no worker capacity for.
fn reject_overloaded(mut stream: TcpStream) {
    let body = b"server overloaded, retry\n";
    let mut out = Vec::with_capacity(128);
    write_response_head(&mut out, 503, "Service Unavailable", "text/plain", body.len(), false);
    out.extend_from_slice(body);
    let _ = stream.write_all(&out);
}

fn spawn_worker(
    rx: Receiver<TcpStream>,
    server: Arc<SimulationServer>,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
    started: Instant,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(stream) => {
                handle_connection(stream, &server, &stats, &shutdown, read_timeout, started);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    })
}

fn spawn_housekeeper(
    server: Arc<SimulationServer>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut last_sweep = Instant::now();
        while !shutdown.load(Ordering::Acquire) {
            // Sleep in short slices so shutdown is prompt even with a long
            // housekeeping interval.
            std::thread::sleep(Duration::from_millis(10).min(interval));
            if last_sweep.elapsed() >= interval {
                server.evict_idle();
                last_sweep = Instant::now();
            }
        }
    })
}

/// Drive one connection to completion: read, frame, dispatch, write, repeat
/// while keep-alive holds.
fn handle_connection(
    mut stream: TcpStream,
    server: &SimulationServer,
    stats: &NetStats,
    shutdown: &AtomicBool,
    read_timeout: Duration,
    started: Instant,
) {
    // On BSD-family kernels an accepted socket inherits the listener's
    // O_NONBLOCK; this loop is written for blocking reads paced by the
    // read timeout, so restore blocking mode explicitly.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut parser = RequestParser::new();
    let mut read_buf = vec![0u8; 16 * 1024];
    let mut head_buf = Vec::with_capacity(256);

    loop {
        // Drain every request already buffered (pipelining) before reading.
        loop {
            match parser.next_request() {
                Ok(Some(request)) => {
                    stats.requests_served.fetch_add(1, Ordering::Relaxed);
                    let keep_alive =
                        respond(&mut stream, &request, server, stats, started, &mut head_buf);
                    if !(keep_alive && request.keep_alive) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    stats.http_errors.fetch_add(1, Ordering::Relaxed);
                    respond_error(&mut stream, &error, &mut head_buf);
                    return;
                }
            }
        }
        match stream.read(&mut read_buf) {
            Ok(0) => return, // peer closed
            Ok(n) => parser.feed(&read_buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return; // close idle keep-alive connections on shutdown
                }
            }
            Err(_) => return,
        }
    }
}

/// Answer one request.  Returns whether the connection may stay open.
fn respond(
    stream: &mut TcpStream,
    request: &HttpRequest,
    server: &SimulationServer,
    stats: &NetStats,
    started: Instant,
    head: &mut Vec<u8>,
) -> bool {
    head.clear();
    let keep_alive = request.keep_alive;
    let ok = match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/api") => {
            // The protocol hot path: the response body is the server's
            // shared payload handle, written to the socket without copying.
            let payload = server.handle_raw(&request.body);
            write_response_head(
                head,
                200,
                "OK",
                "application/x-rvsim-payload",
                payload.len(),
                keep_alive,
            );
            stream.write_all(head).and_then(|()| stream.write_all(&payload))
        }
        ("GET", "/healthz") => {
            let body = b"ok\n";
            write_response_head(head, 200, "OK", "text/plain", body.len(), keep_alive);
            stream.write_all(head).and_then(|()| stream.write_all(body))
        }
        ("GET", "/metrics") => {
            let body = render_metrics(server, stats, started);
            write_response_head(head, 200, "OK", "text/plain", body.len(), keep_alive);
            stream.write_all(head).and_then(|()| stream.write_all(body.as_bytes()))
        }
        ("POST", _) | ("GET", _) => {
            let body = format!("no such endpoint: {}\n", request.target);
            write_response_head(head, 404, "Not Found", "text/plain", body.len(), keep_alive);
            stream.write_all(head).and_then(|()| stream.write_all(body.as_bytes()))
        }
        (method, _) => {
            let body = format!("method {method} not allowed\n");
            write_response_head(
                head,
                405,
                "Method Not Allowed",
                "text/plain",
                body.len(),
                keep_alive,
            );
            stream.write_all(head).and_then(|()| stream.write_all(body.as_bytes()))
        }
    };
    ok.is_ok()
}

fn respond_error(stream: &mut TcpStream, error: &HttpError, head: &mut Vec<u8>) {
    head.clear();
    let body = format!("{}\n", error.detail);
    write_response_head(head, error.status, error.reason, "text/plain", body.len(), false);
    let _ = stream.write_all(head).and_then(|()| stream.write_all(body.as_bytes()));
}

/// Plain-text metrics: front-end counters plus session-store gauges.
fn render_metrics(server: &SimulationServer, stats: &NetStats, started: Instant) -> String {
    format!(
        "rvsim_uptime_seconds {}\n\
         rvsim_connections_accepted_total {}\n\
         rvsim_connections_rejected_total {}\n\
         rvsim_http_requests_total {}\n\
         rvsim_http_errors_total {}\n\
         rvsim_sessions_live {}\n\
         rvsim_sessions_evicted_total {}\n",
        started.elapsed().as_secs(),
        stats.connections_accepted.load(Ordering::Relaxed),
        stats.connections_rejected.load(Ordering::Relaxed),
        stats.requests_served.load(Ordering::Relaxed),
        stats.http_errors.load(Ordering::Relaxed),
        server.session_count(),
        server.evicted_session_count(),
    )
}
