//! The TCP/HTTP front end: a nonblocking readiness event loop around a
//! [`SimulationServer`].
//!
//! Architecture (the Rust stand-in for the paper's Undertow deployment,
//! §III/§IV-A, scaled past the thread-per-connection ceiling):
//!
//! * an **acceptor thread** owns the listener, enforces the
//!   `max_connections` cap (`503` + close above it) and hands accepted
//!   sockets round-robin to the event loops;
//! * **event-loop threads** (epoll via the vendored `polling` wrapper) each
//!   drive thousands of connections through a per-connection state machine —
//!   *reading* (incremental framing over [`RequestParser`], which was
//!   property-tested against arbitrary partial reads precisely so it can run
//!   this way) → *dispatching* (protocol work runs on the worker pool, the
//!   loop keeps serving other connections) → *writing* (buffered partial
//!   writes, `EPOLLOUT`-driven).  A keep-alive connection between requests
//!   costs one registered fd, not a parked thread;
//! * **dispatch workers** execute `POST /api` payloads in
//!   [`SimulationServer::handle_raw`] (where per-session request coalescing
//!   lives) and post the shared [`bytes::Bytes`] response back to the
//!   owning loop through its waker — a cached `GetState` is served with
//!   zero payload copies end to end;
//! * every connection carries a **deadline**: a partially received request
//!   must complete within `header_deadline`, a response must make write
//!   progress within `write_deadline`, and an idle keep-alive connection is
//!   closed after `idle_deadline` — a client that sends half a head or
//!   stops reading mid-response is reclaimed instead of pinning resources
//!   forever (the slow-client bug family of the worker-pool design);
//! * a **housekeeping thread** ticks periodically and runs the idle-session
//!   sweep ([`SimulationServer::evict_idle`]);
//! * `GET /metrics` exposes front-end counters, connection-state gauges and
//!   session-store gauges, `GET /healthz` answers `ok`.
//!
//! Shutdown is graceful: the loops finish their current event batch, close
//! every connection, and every thread is joined before
//! [`NetServer::shutdown`] returns.

use crate::http::{
    write_response_head, HttpError, HttpRequest, RequestParser, ResponseHead, Version,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use polling::{Events, Interest, Poller, Waker};
use rvsim_obs::journal::NO_SESSION;
use rvsim_obs::{expo, Event, EventKind, Exposition, Observer};
use rvsim_server::SimulationServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// Event-loop threads.  Each owns one epoll instance and a share of the
    /// connections; two saturate the protocol path on small hosts.
    pub event_loops: usize,
    /// Dispatch workers executing protocol requests (`POST /api`).  These
    /// bound concurrent *simulation* work, not concurrent connections.
    pub dispatch_workers: usize,
    /// Live-connection cap across all loops; connections above it are
    /// answered `503 Service Unavailable` and closed by the acceptor.
    pub max_connections: usize,
    /// Parsed requests that may queue for a dispatch worker before the
    /// front end answers `503` (the request is parsed, the connection
    /// stays open).
    pub pending_dispatch: usize,
    /// Housekeeping tick period (idle-session eviction).
    pub housekeeping_interval: Duration,
    /// A connection with a partially received request (head or body) must
    /// complete it within this deadline or be closed.
    pub header_deadline: Duration,
    /// An idle keep-alive connection (no partial request buffered) is
    /// closed after this long without a request.
    pub idle_deadline: Duration,
    /// A connection with a partially written response must accept more
    /// bytes within this deadline (reset on progress) or be closed.
    pub write_deadline: Duration,
    /// Requests whose phase timings sum past this many microseconds are
    /// force-journaled with their full breakdown (`0` journals every
    /// request — useful for tracing, noisy under load).
    pub slow_request_us: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            event_loops: 2,
            dispatch_workers: 4,
            max_connections: 16 * 1024,
            pending_dispatch: 1024,
            housekeeping_interval: Duration::from_secs(1),
            header_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(60),
            write_deadline: Duration::from_secs(10),
            slow_request_us: rvsim_obs::DEFAULT_SLOW_REQUEST_US,
        }
    }
}

/// Front-end counters and gauges served by `GET /metrics`.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted and handed to an event loop.
    pub connections_accepted: AtomicU64,
    /// Connections answered `503` at the accept gate (`max_connections`).
    pub connections_rejected: AtomicU64,
    /// Currently open connections across all event loops (gauge).
    pub connections_open: AtomicU64,
    /// Connections closed by a deadline while a request or response was in
    /// flight (the slow-client reclamation path).
    pub connections_stalled_closed: AtomicU64,
    /// Idle keep-alive connections closed by the idle deadline.
    pub connections_idle_closed: AtomicU64,
    /// Requests answered (any status).
    pub requests_served: AtomicU64,
    /// Requests rejected at the HTTP layer (4xx/5xx framing errors).
    pub http_errors: AtomicU64,
    /// Requests answered `503` because the dispatch queue was full.
    pub dispatch_rejected: AtomicU64,
}

/// What the front end serves: the event loops handle HTTP framing and the
/// fixed endpoints (`/healthz`, `/metrics`), and everything protocol-shaped
/// is delegated here.  [`SimulationServer`] is the canonical implementation;
/// the router tier implements it to proxy instead of simulate.
pub trait ApiHandler: Send + Sync + 'static {
    /// Execute one `POST /api` payload and produce the encoded response
    /// bytes (runs on a dispatch worker, never on an event loop).
    /// `request_id` is the edge-minted (or propagated) id of the request,
    /// for journal attribution and upstream-hop propagation.
    fn handle_api(&self, body: &[u8], request_id: u64) -> Bytes;

    /// Execute a `POST /admin/...` control request (drain, rebalance).
    /// `None` means the endpoint does not exist.  Runs on a dispatch
    /// worker: control work may block on upstream calls.
    fn handle_control(&self, target: &str, body: &[u8]) -> Option<ControlResponse> {
        let _ = (target, body);
        None
    }

    /// Append handler-specific metric families to the `/metrics` document.
    fn append_metrics(&self, out: &mut Exposition) {
        let _ = out;
    }

    /// Periodic housekeeping (idle eviction, upstream health checks).
    fn housekeeping(&self) {}

    /// The handler's observability handle.  When present, the front end
    /// shares it (phase histograms, journal, request-id mint), so handler
    /// events and connection events land in one per-process journal;
    /// handlers without one get a private front-end observer.
    fn observer(&self) -> Option<Arc<Observer>> {
        None
    }
}

/// Response of an [`ApiHandler::handle_control`] endpoint.
pub struct ControlResponse {
    /// HTTP status code.
    pub status: u16,
    /// Status reason phrase.
    pub reason: &'static str,
    /// Response body (served as `application/json`).
    pub body: Vec<u8>,
}

impl ApiHandler for SimulationServer {
    fn handle_api(&self, body: &[u8], request_id: u64) -> Bytes {
        self.handle_raw_traced(body, request_id)
    }

    fn handle_control(&self, target: &str, body: &[u8]) -> Option<ControlResponse> {
        // Both endpoints exist only when the server runs with a state dir;
        // without one they 404 so a router probing a non-durable backend
        // can tell the difference from an empty checkpoint set.
        match target {
            "/admin/checkpoints" => {
                self.checkpoint_store()?;
                let entries = self.checkpoint_entries();
                Some(ControlResponse {
                    status: 200,
                    reason: "OK",
                    body: serde_json::to_vec(&entries).expect("entries serialize"),
                })
            }
            "/admin/recover" => {
                self.checkpoint_store()?;
                #[derive(serde::Deserialize)]
                struct RecoverArgs {
                    sessions: Vec<u64>,
                }
                let args: RecoverArgs = match serde_json::from_slice(body) {
                    Ok(args) => args,
                    Err(e) => {
                        return Some(ControlResponse {
                            status: 400,
                            reason: "Bad Request",
                            body: format!("bad recover body: {e}\n").into_bytes(),
                        })
                    }
                };
                let outcomes = self.recover_sessions(&args.sessions);
                Some(ControlResponse {
                    status: 200,
                    reason: "OK",
                    body: serde_json::to_vec(&outcomes).expect("outcomes serialize"),
                })
            }
            _ => None,
        }
    }

    fn append_metrics(&self, out: &mut Exposition) {
        out.counter(
            "rvsim_steps_coalesced_total",
            "Step requests that joined an in-flight coalesced batch.",
            self.coalesced_step_count(),
        );
        out.counter(
            "rvsim_getstate_shared_total",
            "GetState responses served from the shared render cache.",
            self.shared_state_serve_count(),
        );
        out.gauge(
            "rvsim_sessions_live",
            "Live sessions in the store.",
            self.session_count() as u64,
        );
        out.counter(
            "rvsim_sessions_evicted_total",
            "Sessions evicted by the idle sweep.",
            self.evicted_session_count(),
        );
        out.family("rvsim_endpoint_seconds", "histogram", "Handler latency per protocol endpoint.");
        for (endpoint, snapshot) in self.endpoint_latency() {
            out.histogram_series("rvsim_endpoint_seconds", &[("endpoint", endpoint)], &snapshot);
        }
        if let Some(store) = self.checkpoint_store() {
            out.counter(
                "rvsim_checkpoints_written_total",
                "Session checkpoints written to disk.",
                store.write_count(),
            );
            out.counter(
                "rvsim_checkpoint_failures_total",
                "Checkpoint writes that failed.",
                store.write_failure_count(),
            );
            out.counter(
                "rvsim_sessions_spilled_total",
                "Evicted sessions spilled to disk instead of dropped.",
                self.spilled_session_count(),
            );
            out.counter(
                "rvsim_sessions_restored_total",
                "Sessions restored from checkpoints.",
                self.restored_session_count(),
            );
            out.gauge(
                "rvsim_restore_staleness_max_ms",
                "Largest checkpoint staleness observed on restore.",
                self.max_restore_staleness_ms(),
            );
        }
    }

    fn housekeeping(&self) {
        self.evict_idle();
        self.checkpoint_tick();
    }

    fn observer(&self) -> Option<Arc<Observer>> {
        Some(Arc::clone(self.observability()))
    }
}

/// A running network front end.  Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the acceptor, the event loops, the
/// dispatch workers and the housekeeper and joins their threads.
pub struct NetServer {
    handler: Arc<dyn ApiHandler>,
    /// Set when the handler is a [`SimulationServer`] (the
    /// [`server`](Self::server) accessor; `None` in router mode).
    sim: Option<Arc<SimulationServer>>,
    stats: Arc<NetStats>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `config.addr` and start the front end around `server`.
    pub fn start(server: SimulationServer, config: NetConfig) -> std::io::Result<NetServer> {
        Self::start_shared(Arc::new(server), config)
    }

    /// [`start`](Self::start) with an externally shared server.
    pub fn start_shared(
        server: Arc<SimulationServer>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        Self::start_inner(Arc::clone(&server) as Arc<dyn ApiHandler>, Some(server), config)
    }

    /// Start the front end around any [`ApiHandler`] (router mode).  The
    /// [`server`](Self::server) accessor is unavailable on the result.
    pub fn start_with_handler(
        handler: Arc<dyn ApiHandler>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        Self::start_inner(handler, None, config)
    }

    fn start_inner(
        handler: Arc<dyn ApiHandler>,
        sim: Option<Arc<SimulationServer>>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(NetStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        // Share the handler's observer (so handler events and connection
        // events interleave in one journal), or run a private one.
        let observer = handler
            .observer()
            .unwrap_or_else(|| Arc::new(Observer::new(rvsim_obs::DEFAULT_JOURNAL_CAPACITY)));
        observer.slow_request_us.store(config.slow_request_us, Ordering::Relaxed);

        let (job_tx, job_rx) = bounded::<Job>(config.pending_dispatch.max(1));
        let mut threads = Vec::new();
        let mut wakers = Vec::new();
        let mut loop_handles = Vec::new();
        for _ in 0..config.event_loops.max(1) {
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN)?);
            let (inject_tx, inject_rx) = unbounded::<TcpStream>();
            let (done_tx, done_rx) = unbounded::<Completion>();
            loop_handles.push(LoopHandle { inject: inject_tx, waker: Arc::clone(&waker) });
            let worker = EventLoop {
                poller,
                waker: Arc::clone(&waker),
                inject: inject_rx,
                completions: done_rx,
                completions_tx: done_tx,
                jobs: job_tx.clone(),
                handler: Arc::clone(&handler),
                stats: Arc::clone(&stats),
                shutdown: Arc::clone(&shutdown),
                config: config.clone(),
                started,
                observer: Arc::clone(&observer),
            };
            wakers.push(waker);
            threads.push(std::thread::spawn(move || worker.run()));
        }
        drop(job_tx);

        for _ in 0..config.dispatch_workers.max(1) {
            threads.push(spawn_dispatch_worker(
                job_rx.clone(),
                Arc::clone(&handler),
                Arc::clone(&shutdown),
            ));
        }
        drop(job_rx);

        threads.push(spawn_acceptor(
            listener,
            loop_handles,
            config.max_connections.max(1),
            Arc::clone(&stats),
            Arc::clone(&shutdown),
        ));
        threads.push(spawn_housekeeper(
            Arc::clone(&handler),
            Arc::clone(&shutdown),
            config.housekeeping_interval,
        ));

        Ok(NetServer { handler, sim, stats, addr, shutdown, wakers, threads })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The simulation server behind the front end.
    ///
    /// # Panics
    ///
    /// Panics when the front end was started with
    /// [`start_with_handler`](Self::start_with_handler) (router mode), where
    /// no simulation server exists.
    pub fn server(&self) -> &Arc<SimulationServer> {
        self.sim.as_ref().expect("front end was started without a SimulationServer")
    }

    /// The handler behind the front end ([`SimulationServer`] or a router).
    pub fn handler(&self) -> &Arc<dyn ApiHandler> {
        &self.handler
    }

    /// Front-end counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stop accepting, close connections and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for waker in &self.wakers {
            let _ = waker.wake();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Token the loop's waker is registered under (never a valid slab index).
const WAKER_TOKEN: usize = usize::MAX;

/// Acceptor-side handle to one event loop.
struct LoopHandle {
    inject: Sender<TcpStream>,
    waker: Arc<Waker>,
}

/// One protocol request on its way to a dispatch worker.
struct Job {
    /// The loop to post the completion to.
    reply: Sender<Completion>,
    waker: Arc<Waker>,
    token: usize,
    generation: u64,
    /// `None` routes to [`ApiHandler::handle_api`] (`POST /api`); a target
    /// routes to [`ApiHandler::handle_control`] (`POST /admin/...`).
    target: Option<String>,
    body: Vec<u8>,
    keep_alive: bool,
    version: Version,
    /// Edge-minted (or header-propagated) request id.
    request_id: u64,
    /// Header-read phase duration measured by the event loop.
    read_us: u32,
    /// When the job entered the dispatch queue (queue-wait phase start).
    enqueued: Instant,
}

/// A finished protocol request on its way back to its event loop.
struct Completion {
    token: usize,
    generation: u64,
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    payload: Bytes,
    keep_alive: bool,
    version: Version,
    request_id: u64,
    read_us: u32,
    queue_us: u32,
    handler_us: u32,
}

fn spawn_acceptor(
    listener: TcpListener,
    loops: Vec<LoopHandle>,
    max_connections: usize,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut next_loop = 0usize;
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stats.connections_open.load(Ordering::Relaxed) >= max_connections as u64 {
                        stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        reject_overloaded(stream);
                        continue;
                    }
                    let target = &loops[next_loop % loops.len()];
                    next_loop = next_loop.wrapping_add(1);
                    if target.inject.send(stream).is_err() {
                        break; // loops are gone: shutting down
                    }
                    // The gauge is incremented here (not in the loop) so the
                    // cap cannot be overshot by a burst sitting in the
                    // injection queues.
                    stats.connections_open.fetch_add(1, Ordering::Relaxed);
                    stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    let _ = target.waker.wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    // Transient accept errors (aborted handshakes etc.):
                    // keep accepting.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    })
}

/// Best-effort `503` on a connection over the connection cap.  The accepted
/// socket inherited the listener's `O_NONBLOCK` (Linux resets it, the BSD
/// family does not), so blocking mode is restored explicitly before the
/// write — otherwise the 503 could fail `WouldBlock` and the overloaded
/// client would see a bare close instead of a status.  A short write
/// timeout keeps a malicious zero-window peer from pinning the acceptor.
fn reject_overloaded(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let body = b"server overloaded, retry\n";
    let mut out = Vec::with_capacity(160);
    write_response_head(
        &mut out,
        &ResponseHead {
            version: Version::Http11,
            status: 503,
            reason: "Service Unavailable",
            content_type: "text/plain",
            content_length: body.len(),
            keep_alive: false,
            extra: &[],
        },
    );
    out.extend_from_slice(body);
    let _ = stream.write_all(&out);
}

fn spawn_dispatch_worker(
    jobs: Receiver<Job>,
    handler: Arc<dyn ApiHandler>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match jobs.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => {
                let queue_us = elapsed_us(job.enqueued);
                let handler_started = Instant::now();
                let (status, reason, content_type, payload) = match &job.target {
                    None => (
                        200,
                        "OK",
                        "application/x-rvsim-payload",
                        handler.handle_api(&job.body, job.request_id),
                    ),
                    Some(target) => match handler.handle_control(target, &job.body) {
                        Some(control) => (
                            control.status,
                            control.reason,
                            "application/json",
                            Bytes::from(control.body),
                        ),
                        None => (
                            404,
                            "Not Found",
                            "text/plain",
                            Bytes::from(format!("no such endpoint: {target}\n").into_bytes()),
                        ),
                    },
                };
                let completion = Completion {
                    token: job.token,
                    generation: job.generation,
                    status,
                    reason,
                    content_type,
                    payload,
                    keep_alive: job.keep_alive,
                    version: job.version,
                    request_id: job.request_id,
                    read_us: job.read_us,
                    queue_us,
                    handler_us: elapsed_us(handler_started),
                };
                if job.reply.send(completion).is_ok() {
                    let _ = job.waker.wake();
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    })
}

fn spawn_housekeeper(
    handler: Arc<dyn ApiHandler>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut last_sweep = Instant::now();
        while !shutdown.load(Ordering::Acquire) {
            // Sleep in short slices so shutdown is prompt even with a long
            // housekeeping interval.
            std::thread::sleep(Duration::from_millis(10).min(interval));
            if last_sweep.elapsed() >= interval {
                handler.housekeeping();
                last_sweep = Instant::now();
            }
        }
    })
}

/// Connection lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// A parsed request is executing on the dispatch pool.
    Dispatching,
    /// A response is (partially) buffered and being flushed.
    Writing,
}

/// One connection owned by an event loop.
struct Conn {
    stream: TcpStream,
    generation: u64,
    parser: RequestParser,
    state: ConnState,
    /// Response head (plus inline bodies); flushed before `payload`.
    head: Vec<u8>,
    head_pos: usize,
    /// Shared protocol payload, written after the head without copying.
    payload: Bytes,
    payload_pos: usize,
    close_after_write: bool,
    /// Connection-fate deadline for the current phase (`None` while a
    /// dispatch is in flight — simulation time is not the client's fault).
    deadline: Option<Instant>,
    interest: Interest,
    /// First-byte instant of the request currently being received (start
    /// of the header-read phase); `None` between requests.
    read_started: Option<Instant>,
    /// Phase timings of the dispatched response currently being written,
    /// recorded when the write drains.
    inflight: Option<Inflight>,
    /// Requests served on this connection (attributed on close).
    served: u64,
}

/// Phase timings of a dispatched request carried across the write phase.
struct Inflight {
    request_id: u64,
    status: u16,
    read_us: u32,
    queue_us: u32,
    handler_us: u32,
    /// When the completion was applied (start of the write-drain phase).
    write_started: Instant,
}

/// Outcome of a write attempt.
enum WriteProgress {
    Complete,
    Pending { progressed: bool },
    Broken,
}

/// One event-loop thread: an epoll instance driving a slab of connections.
struct EventLoop {
    poller: Poller,
    waker: Arc<Waker>,
    inject: Receiver<TcpStream>,
    completions: Receiver<Completion>,
    completions_tx: Sender<Completion>,
    jobs: Sender<Job>,
    handler: Arc<dyn ApiHandler>,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
    config: NetConfig,
    started: Instant,
    observer: Arc<Observer>,
}

impl EventLoop {
    fn run(self) {
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut next_generation: u64 = 0;
        let mut events = Events::with_capacity(1024);
        let mut scratch: Vec<polling::Event> = Vec::with_capacity(1024);
        let mut read_buf = vec![0u8; 64 * 1024];

        // Deadlines are enforced by a periodic sweep; sweeping at half the
        // shortest configured deadline keeps the enforcement error within
        // 50% without scanning the slab on every event batch.
        let sweep = self
            .config
            .header_deadline
            .min(self.config.idle_deadline)
            .min(self.config.write_deadline)
            .mul_f64(0.5)
            .clamp(Duration::from_millis(10), Duration::from_millis(250));
        let mut next_sweep = Instant::now() + sweep;

        while !self.shutdown.load(Ordering::Acquire) {
            let timeout = next_sweep.saturating_duration_since(Instant::now());
            let _ = self.poller.wait(&mut events, Some(timeout));
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }

            scratch.clear();
            scratch.extend(events.iter().copied());
            for event in &scratch {
                if event.token == WAKER_TOKEN {
                    self.waker.drain();
                    continue;
                }
                self.handle_event(&mut conns, &mut free, event, &mut read_buf);
            }

            // Adopt connections the acceptor handed over.
            while let Some(stream) = self.inject.try_recv() {
                self.add_conn(&mut conns, &mut free, &mut next_generation, stream);
            }

            // Flush finished dispatches back onto their connections.
            while let Some(completion) = self.completions.try_recv() {
                self.handle_completion(&mut conns, &mut free, completion);
            }

            let now = Instant::now();
            if now >= next_sweep {
                next_sweep = now + sweep;
                self.sweep_deadlines(&mut conns, &mut free, now);
            }
        }

        // Shutdown: close every connection (deregistration happens via fd
        // close; the explicit call keeps the poll(2) fallback's table clean).
        for token in 0..conns.len() {
            if conns[token].is_some() {
                self.close(&mut conns, &mut free, token, CloseKind::Shutdown);
            }
        }
    }

    fn add_conn(
        &self,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        next_generation: &mut u64,
        stream: TcpStream,
    ) {
        // The acceptor's listener is nonblocking; make the inherited mode
        // explicit (BSD kernels inherit, Linux resets) — the loop is written
        // for nonblocking I/O.
        if stream.set_nonblocking(true).is_err() {
            self.stats.connections_open.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        *next_generation += 1;
        let conn = Conn {
            stream,
            generation: *next_generation,
            parser: RequestParser::new(),
            state: ConnState::Reading,
            head: Vec::with_capacity(256),
            head_pos: 0,
            payload: Bytes::new(),
            payload_pos: 0,
            close_after_write: false,
            deadline: Some(Instant::now() + self.config.idle_deadline),
            interest: Interest::READABLE,
            read_started: None,
            inflight: None,
            served: 0,
        };
        self.observer.journal.record(
            Event::new(EventKind::ConnOpen, self.observer.journal.now_us())
                .fields(self.stats.connections_open.load(Ordering::Relaxed), 0),
        );
        let token = match free.pop() {
            Some(token) => {
                conns[token] = Some(conn);
                token
            }
            None => {
                conns.push(Some(conn));
                conns.len() - 1
            }
        };
        let conn = conns[token].as_ref().expect("just inserted");
        if self.poller.register(conn.stream.as_raw_fd(), token, Interest::READABLE).is_err() {
            conns[token] = None;
            free.push(token);
            self.stats.connections_open.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn handle_event(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        event: &polling::Event,
        read_buf: &mut [u8],
    ) {
        let Some(conn) = conns.get_mut(event.token).and_then(Option::as_mut) else {
            return; // closed earlier in this batch
        };
        if event.error {
            self.close(conns, free, event.token, CloseKind::Peer);
            return;
        }
        match conn.state {
            ConnState::Reading if event.readable => match conn.stream.read(read_buf) {
                Ok(0) => {
                    self.close(conns, free, event.token, CloseKind::Peer);
                }
                Ok(n) => {
                    if conn.read_started.is_none() {
                        conn.read_started = Some(Instant::now());
                    }
                    conn.parser.feed(&read_buf[..n]);
                    self.advance(conns, free, event.token);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(conns, free, event.token, CloseKind::Peer);
                }
            },
            ConnState::Writing if event.writable => {
                self.continue_write(conns, free, event.token);
            }
            // Spurious wakeups (e.g. readable while dispatching: the data
            // stays in the socket buffer until this response is done).
            _ => {}
        }
    }

    /// Parse-and-route loop: serve every complete buffered request until the
    /// connection blocks on reading, writing, or an in-flight dispatch.
    fn advance(&self, conns: &mut [Option<Conn>], free: &mut Vec<usize>, token: usize) {
        loop {
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            match conn.parser.next_request() {
                Ok(Some(request)) => {
                    self.stats.requests_served.fetch_add(1, Ordering::Relaxed);
                    conn.served += 1;
                    // Header-read phase: first byte of this request to parse
                    // complete.  Pipelined follow-ups parse out of the buffer
                    // with no further reads, so their read phase is ~0.
                    let read_us = conn.read_started.take().map(elapsed_us).unwrap_or(0);
                    if !self.route(conns, free, token, request, read_us) {
                        return;
                    }
                }
                Ok(None) => {
                    // Need more bytes: a partial request races its header
                    // deadline, an idle keep-alive its (longer) idle one.
                    let partial = conn.parser.buffered() > 0;
                    conn.state = ConnState::Reading;
                    conn.deadline = Some(
                        Instant::now()
                            + if partial {
                                self.config.header_deadline
                            } else {
                                self.config.idle_deadline
                            },
                    );
                    self.set_interest(conn, token, Interest::READABLE);
                    return;
                }
                Err(error) => {
                    self.stats.http_errors.fetch_add(1, Ordering::Relaxed);
                    self.respond_framing_error(conns, free, token, &error);
                    return;
                }
            }
        }
    }

    /// Serve one parsed request.  Returns whether the caller may continue
    /// parsing pipelined requests on this connection.
    fn route(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        token: usize,
        request: HttpRequest,
        read_us: u32,
    ) -> bool {
        let version = request.version;
        let keep_alive = request.keep_alive;
        // Propagate the caller's request id or mint one at the edge; every
        // response echoes it in `x-rvsim-request-id`.
        let request_id = if request.request_id != 0 {
            request.request_id
        } else {
            self.observer.mint_request_id()
        };
        match (request.method.as_str(), request.target.as_str()) {
            ("POST", "/api") => self.dispatch(
                conns,
                free,
                token,
                None,
                request.body,
                keep_alive,
                version,
                request_id,
                read_us,
            ),
            ("POST", target) if target.starts_with("/admin/") => {
                let target = target.to_string();
                self.dispatch(
                    conns,
                    free,
                    token,
                    Some(target),
                    request.body,
                    keep_alive,
                    version,
                    request_id,
                    read_us,
                )
            }
            ("GET", "/healthz") => self.inline_response(
                conns,
                free,
                token,
                InlineResponse {
                    status: 200,
                    reason: "OK",
                    content_type: "text/plain",
                    body: b"ok\n",
                    keep_alive,
                    version,
                    extra: &[],
                    request_id,
                },
            ),
            ("GET", "/metrics") => {
                let body = render_metrics(
                    self.handler.as_ref(),
                    &self.stats,
                    &self.observer,
                    self.started,
                );
                self.inline_response(
                    conns,
                    free,
                    token,
                    InlineResponse {
                        status: 200,
                        reason: "OK",
                        content_type: expo::CONTENT_TYPE,
                        body: body.as_bytes(),
                        keep_alive,
                        version,
                        extra: &[],
                        request_id,
                    },
                )
            }
            ("GET", target) if target == "/admin/trace" || target.starts_with("/admin/trace?") => {
                let (n, min_us) = parse_trace_query(target);
                let body = self.observer.journal.render_trace(n, min_us);
                self.inline_response(
                    conns,
                    free,
                    token,
                    InlineResponse {
                        status: 200,
                        reason: "OK",
                        content_type: "application/x-ndjson",
                        body: body.as_bytes(),
                        keep_alive,
                        version,
                        extra: &[],
                        request_id,
                    },
                )
            }
            ("POST", _) | ("GET", _) => {
                let body = format!("no such endpoint: {}\n", request.target);
                self.inline_response(
                    conns,
                    free,
                    token,
                    InlineResponse {
                        status: 404,
                        reason: "Not Found",
                        content_type: "text/plain",
                        body: body.as_bytes(),
                        keep_alive,
                        version,
                        extra: &[],
                        request_id,
                    },
                )
            }
            (method, _) => {
                let body = format!("method {method} not allowed\n");
                self.inline_response(
                    conns,
                    free,
                    token,
                    InlineResponse {
                        status: 405,
                        reason: "Method Not Allowed",
                        content_type: "text/plain",
                        body: body.as_bytes(),
                        keep_alive,
                        version,
                        // A 405 must name the methods the resource supports.
                        extra: &[("allow", "GET, POST")],
                        request_id,
                    },
                )
            }
        }
    }

    /// Hand a request to the dispatch pool (`/api` protocol work or an
    /// `/admin/...` control endpoint).  Returns whether the caller may
    /// continue parsing pipelined requests on this connection.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        token: usize,
        target: Option<String>,
        body: Vec<u8>,
        keep_alive: bool,
        version: Version,
        request_id: u64,
        read_us: u32,
    ) -> bool {
        let conn = conns[token].as_mut().expect("dispatched conn is live");
        let job = Job {
            reply: self.completions_sender(),
            waker: Arc::clone(&self.waker),
            token,
            generation: conn.generation,
            target,
            body,
            keep_alive,
            version,
            request_id,
            read_us,
            enqueued: Instant::now(),
        };
        match self.jobs.try_send(job) {
            Ok(()) => {
                conn.state = ConnState::Dispatching;
                conn.deadline = None;
                self.set_interest(conn, token, Interest::NONE);
                false
            }
            Err(TrySendError::Full(_)) => {
                self.stats.dispatch_rejected.fetch_add(1, Ordering::Relaxed);
                let body = b"dispatch queue full, retry\n";
                self.inline_response(
                    conns,
                    free,
                    token,
                    InlineResponse {
                        status: 503,
                        reason: "Service Unavailable",
                        content_type: "text/plain",
                        body,
                        keep_alive,
                        version,
                        extra: &[],
                        request_id,
                    },
                )
            }
            Err(TrySendError::Disconnected(_)) => {
                self.close(conns, free, token, CloseKind::Shutdown);
                false
            }
        }
    }

    fn completions_sender(&self) -> Sender<Completion> {
        // The loop's own completion sender: dispatch workers post back here.
        self.completions_tx.clone()
    }

    fn handle_completion(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        completion: Completion,
    ) {
        let Some(conn) = conns.get_mut(completion.token).and_then(Option::as_mut) else {
            return; // connection died while the request executed
        };
        if conn.generation != completion.generation || conn.state != ConnState::Dispatching {
            return; // slot was reused: the payload belongs to a dead conn
        }
        conn.head.clear();
        conn.head_pos = 0;
        let mut rid_buf = [0u8; 16];
        let rid = rvsim_obs::write_request_id(completion.request_id, &mut rid_buf);
        write_response_head(
            &mut conn.head,
            &ResponseHead {
                version: completion.version,
                status: completion.status,
                reason: completion.reason,
                content_type: completion.content_type,
                content_length: completion.payload.len(),
                keep_alive: completion.keep_alive,
                extra: &[("x-rvsim-request-id", rid)],
            },
        );
        conn.payload = completion.payload;
        conn.payload_pos = 0;
        conn.close_after_write = !completion.keep_alive;
        conn.state = ConnState::Writing;
        conn.deadline = Some(Instant::now() + self.config.write_deadline);
        conn.inflight = Some(Inflight {
            request_id: completion.request_id,
            status: completion.status,
            read_us: completion.read_us,
            queue_us: completion.queue_us,
            handler_us: completion.handler_us,
            write_started: Instant::now(),
        });
        self.continue_write(conns, free, completion.token);
    }

    /// Queue an inline (loop-built) response and start flushing it.  Returns
    /// whether the caller may continue parsing pipelined requests.
    fn inline_response(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        token: usize,
        response: InlineResponse<'_>,
    ) -> bool {
        let conn = conns[token].as_mut().expect("inline response on live conn");
        conn.head.clear();
        conn.head_pos = 0;
        let mut rid_buf = [0u8; 16];
        let mut extra: Vec<(&str, &str)> = response.extra.to_vec();
        if response.request_id != 0 {
            extra.push((
                "x-rvsim-request-id",
                rvsim_obs::write_request_id(response.request_id, &mut rid_buf),
            ));
        }
        write_response_head(
            &mut conn.head,
            &ResponseHead {
                version: response.version,
                status: response.status,
                reason: response.reason,
                content_type: response.content_type,
                content_length: response.body.len(),
                keep_alive: response.keep_alive,
                extra: &extra,
            },
        );
        conn.head.extend_from_slice(response.body);
        conn.payload = Bytes::new();
        conn.payload_pos = 0;
        conn.close_after_write = !response.keep_alive;
        conn.state = ConnState::Writing;
        conn.deadline = Some(Instant::now() + self.config.write_deadline);
        self.flush_write(conns, free, token)
    }

    fn respond_framing_error(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        token: usize,
        error: &HttpError,
    ) {
        let body = format!("{}\n", error.detail);
        self.inline_response(
            conns,
            free,
            token,
            InlineResponse {
                status: error.status,
                reason: error.reason,
                content_type: "text/plain",
                body: body.as_bytes(),
                // Framing errors are fatal: byte positions are lost.
                keep_alive: false,
                version: Version::Http11,
                extra: &[],
                request_id: 0,
            },
        );
    }

    /// Writing-state readiness: flush, then resume parsing if done.
    fn continue_write(&self, conns: &mut [Option<Conn>], free: &mut Vec<usize>, token: usize) {
        if self.flush_write(conns, free, token) {
            self.advance(conns, free, token);
        }
    }

    /// Push buffered response bytes to the socket.  Returns true when the
    /// response is fully flushed and the connection stays open (i.e. the
    /// caller may parse the next pipelined request).
    fn flush_write(&self, conns: &mut [Option<Conn>], free: &mut Vec<usize>, token: usize) -> bool {
        let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
            return false;
        };
        match try_write(conn) {
            WriteProgress::Complete => {
                // The response drained: the dispatched request's phase story
                // is complete — record it (histograms always, journal when
                // slow or errored).
                if let Some(inflight) = conn.inflight.take() {
                    self.observer.record_request(
                        inflight.request_id,
                        NO_SESSION,
                        u64::from(inflight.status),
                        [
                            inflight.read_us,
                            inflight.queue_us,
                            inflight.handler_us,
                            elapsed_us(inflight.write_started),
                        ],
                    );
                }
                if conn.close_after_write {
                    self.close(conns, free, token, CloseKind::Served);
                    return false;
                }
                conn.state = ConnState::Reading;
                conn.deadline = Some(Instant::now() + self.config.idle_deadline);
                self.set_interest(conn, token, Interest::READABLE);
                true
            }
            WriteProgress::Pending { progressed } => {
                if progressed {
                    conn.deadline = Some(Instant::now() + self.config.write_deadline);
                }
                conn.state = ConnState::Writing;
                self.set_interest(conn, token, Interest::WRITABLE);
                false
            }
            WriteProgress::Broken => {
                self.close(conns, free, token, CloseKind::Peer);
                false
            }
        }
    }

    fn set_interest(&self, conn: &mut Conn, token: usize, interest: Interest) {
        if conn.interest != interest {
            let _ = self.poller.reregister(conn.stream.as_raw_fd(), token, interest);
            conn.interest = interest;
        }
    }

    fn sweep_deadlines(&self, conns: &mut [Option<Conn>], free: &mut Vec<usize>, now: Instant) {
        for token in 0..conns.len() {
            let Some(conn) = conns[token].as_ref() else { continue };
            let Some(deadline) = conn.deadline else { continue };
            if now < deadline {
                continue;
            }
            let kind = match conn.state {
                ConnState::Reading if conn.parser.buffered() == 0 => CloseKind::Idle,
                // Mid-head, mid-body or mid-response: the slow-client family.
                _ => CloseKind::Stalled,
            };
            self.close(conns, free, token, kind);
        }
    }

    fn close(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        token: usize,
        kind: CloseKind,
    ) {
        let Some(conn) = conns[token].take() else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.observer.journal.record(
            Event::new(EventKind::ConnClose, self.observer.journal.now_us())
                .fields(kind.code(), conn.served),
        );
        drop(conn);
        free.push(token);
        self.stats.connections_open.fetch_sub(1, Ordering::Relaxed);
        match kind {
            CloseKind::Stalled => {
                self.stats.connections_stalled_closed.fetch_add(1, Ordering::Relaxed);
            }
            CloseKind::Idle => {
                self.stats.connections_idle_closed.fetch_add(1, Ordering::Relaxed);
            }
            CloseKind::Peer | CloseKind::Served | CloseKind::Shutdown => {}
        }
    }
}

/// Why a connection was closed (metrics attribution).
#[derive(Debug, Clone, Copy)]
enum CloseKind {
    /// Peer closed or the socket errored.
    Peer,
    /// Response complete on a `connection: close` exchange.
    Served,
    /// Deadline fired with a request or response in flight.
    Stalled,
    /// Idle keep-alive deadline fired.
    Idle,
    /// Front end is shutting down.
    Shutdown,
}

impl CloseKind {
    /// Stable numeric code used in the journal's `conn_close` events.
    fn code(self) -> u64 {
        match self {
            CloseKind::Peer => 0,
            CloseKind::Served => 1,
            CloseKind::Stalled => 2,
            CloseKind::Idle => 3,
            CloseKind::Shutdown => 4,
        }
    }
}

/// Response parameters for loop-built (non-dispatched) answers.
struct InlineResponse<'a> {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: &'a [u8],
    keep_alive: bool,
    version: Version,
    extra: &'a [(&'a str, &'a str)],
    /// Echoed as `x-rvsim-request-id` (0 emits no header).
    request_id: u64,
}

/// Write as much buffered response as the socket accepts.
fn try_write(conn: &mut Conn) -> WriteProgress {
    let mut progressed = false;
    loop {
        let (source, pos): (&[u8], &mut usize) = if conn.head_pos < conn.head.len() {
            (&conn.head, &mut conn.head_pos)
        } else if conn.payload_pos < conn.payload.len() {
            (&conn.payload, &mut conn.payload_pos)
        } else {
            return WriteProgress::Complete;
        };
        match conn.stream.write(&source[*pos..]) {
            Ok(0) => return WriteProgress::Broken,
            Ok(n) => {
                *pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return WriteProgress::Pending { progressed };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return WriteProgress::Broken,
        }
    }
}

/// Saturating microseconds since `since`, clamped into the u32 phase
/// timings (71 minutes; anything longer saturates).
fn elapsed_us(since: Instant) -> u32 {
    since.elapsed().as_micros().min(u128::from(u32::MAX)) as u32
}

/// Parse `/admin/trace?n=&min_us=` query parameters (defaults: the 256 most
/// recent events, no duration floor).
fn parse_trace_query(target: &str) -> (usize, u64) {
    let mut n = 256usize;
    let mut min_us = 0u64;
    if let Some((_, query)) = target.split_once('?') {
        for pair in query.split('&') {
            match pair.split_once('=') {
                Some(("n", value)) => n = value.parse().unwrap_or(n),
                Some(("min_us", value)) => min_us = value.parse().unwrap_or(min_us),
                _ => {}
            }
        }
    }
    (n.min(100_000), min_us)
}

/// Prometheus text-exposition `/metrics` document: front-end counters,
/// connection gauges and per-phase latency histograms, followed by whatever
/// the handler appends (session gauges and endpoint histograms for a
/// [`SimulationServer`], ring/breaker gauges and merged upstream metrics
/// for a router).
fn render_metrics(
    handler: &dyn ApiHandler,
    stats: &NetStats,
    observer: &Observer,
    started: Instant,
) -> String {
    let mut out = Exposition::new();
    out.gauge(
        "rvsim_uptime_seconds",
        "Seconds since the front end started.",
        started.elapsed().as_secs(),
    );
    out.counter(
        "rvsim_connections_accepted_total",
        "Connections accepted and handed to an event loop.",
        stats.connections_accepted.load(Ordering::Relaxed),
    );
    out.counter(
        "rvsim_connections_rejected_total",
        "Connections answered 503 at the accept gate.",
        stats.connections_rejected.load(Ordering::Relaxed),
    );
    out.gauge(
        "rvsim_connections_open",
        "Currently open connections.",
        stats.connections_open.load(Ordering::Relaxed),
    );
    out.counter(
        "rvsim_connections_stalled_closed_total",
        "Connections closed by a deadline mid-request or mid-response.",
        stats.connections_stalled_closed.load(Ordering::Relaxed),
    );
    out.counter(
        "rvsim_connections_idle_closed_total",
        "Idle keep-alive connections closed by the idle deadline.",
        stats.connections_idle_closed.load(Ordering::Relaxed),
    );
    out.counter(
        "rvsim_http_requests_total",
        "Requests answered (any status).",
        stats.requests_served.load(Ordering::Relaxed),
    );
    out.counter(
        "rvsim_http_errors_total",
        "Requests rejected at the HTTP layer (framing errors).",
        stats.http_errors.load(Ordering::Relaxed),
    );
    out.counter(
        "rvsim_dispatch_rejected_total",
        "Requests answered 503 because the dispatch queue was full.",
        stats.dispatch_rejected.load(Ordering::Relaxed),
    );
    out.family(
        "rvsim_request_phase_seconds",
        "histogram",
        "Dispatched-request latency by connection phase.",
    );
    for (index, phase) in rvsim_obs::PHASES.iter().enumerate() {
        out.histogram_series(
            "rvsim_request_phase_seconds",
            &[("phase", phase)],
            &observer.phase[index].snapshot(),
        );
    }
    out.counter(
        "rvsim_journal_events_total",
        "Events recorded in the trace journal (ring keeps the newest).",
        observer.journal.recorded(),
    );
    handler.append_metrics(&mut out);
    out.finish()
}
