//! Minimal blocking HTTP/1.1 client for the `/api` endpoint.
//!
//! One [`TcpApiClient`] owns one keep-alive connection (opened lazily,
//! re-opened once per call if the server closed it) and speaks exactly the
//! framing the front end produces: a status line, headers with
//! `content-length`, and a sized body.  This is what `rvsim-loadgen`'s
//! `--tcp` transport and the benchmark harness drive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rvsim_server::{Request, Response, SimulationServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Total attempts `call_raw` makes on retryable (provably-unprocessed)
/// failures: the original send plus two backed-off reconnects.
const RETRY_ATTEMPTS: u32 = 3;

/// Base delay of the jittered exponential backoff between retries.
const RETRY_BASE_DELAY: Duration = Duration::from_millis(5);

/// Cap on any single backoff sleep.
const RETRY_MAX_DELAY: Duration = Duration::from_millis(40);

/// Blocking protocol client over a keep-alive TCP connection.
#[derive(Debug)]
pub struct TcpApiClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Unparsed bytes read past the previous response (pipelining slack).
    residue: Vec<u8>,
    /// Jitter source for the retry backoff, seeded per client so a fleet of
    /// clients hitting the same restarted server never retries in lockstep.
    jitter: StdRng,
}

impl TcpApiClient {
    /// Client for the front end at `addr`.  No connection is opened until
    /// the first call.
    pub fn new(addr: SocketAddr) -> Self {
        static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);
        let seed = 0x5eed_c11e_u64
            ^ (u64::from(addr.port()) << 32)
            ^ CLIENT_SEQ.fetch_add(1, Ordering::Relaxed);
        TcpApiClient {
            addr,
            stream: None,
            residue: Vec::new(),
            jitter: StdRng::seed_from_u64(seed),
        }
    }

    /// POST a raw protocol payload to `/api` and return the encoded
    /// response payload.  Reconnects and retries (with a small jittered
    /// exponential backoff, capped) — but only on failures that prove the
    /// server never read the request (stale keep-alive close, reset or
    /// broken pipe before any response byte), so a request the server may
    /// already have processed is never resent: most protocol requests
    /// (`Step`, `CreateSession`) are not idempotent.  A refused connection
    /// is *not* retried — a dead backend must fail fast so the caller's
    /// circuit breaker sees it.
    pub fn call_raw(&mut self, body: &[u8]) -> Result<Vec<u8>, String> {
        self.call_raw_traced(body, 0)
    }

    /// [`call_raw`](Self::call_raw) carrying a request id on the wire
    /// (`x-rvsim-request-id` header) so the hop can be followed across
    /// tiers.  `request_id == 0` sends no header.
    pub fn call_raw_traced(&mut self, body: &[u8], request_id: u64) -> Result<Vec<u8>, String> {
        let mut delay = RETRY_BASE_DELAY;
        for attempt in 1..=RETRY_ATTEMPTS {
            match self.try_call(body, request_id) {
                Ok(payload) => return Ok(payload),
                Err(e) => {
                    let unprocessed = matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::NotConnected
                            | std::io::ErrorKind::WriteZero
                    );
                    self.stream = None;
                    self.residue.clear();
                    if !unprocessed || attempt == RETRY_ATTEMPTS {
                        return Err(format!("tcp call failed: {e}"));
                    }
                    // Full jitter: sleep a uniform fraction of the doubling
                    // window so concurrent retriers spread out.
                    let ceiling = delay.min(RETRY_MAX_DELAY).as_micros() as u64;
                    let sleep_us = self.jitter.random_range(0..ceiling.max(1));
                    std::thread::sleep(Duration::from_micros(sleep_us));
                    delay = delay.saturating_mul(2);
                }
            }
        }
        unreachable!("the attempt loop always returns")
    }

    /// Send a typed request and decode the typed response.
    pub fn call(&mut self, request: &Request) -> Result<Response, String> {
        let json = serde_json::to_vec(request).map_err(|e| e.to_string())?;
        let payload = self.call_raw(&json)?;
        SimulationServer::decode_response(&payload)
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            // Generous timeout: a stuck server fails the call instead of
            // hanging the load-generator thread forever.
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn try_call(&mut self, body: &[u8], request_id: u64) -> std::io::Result<Vec<u8>> {
        let mut head = Vec::with_capacity(128);
        head.extend_from_slice(b"POST /api HTTP/1.1\r\ncontent-length: ");
        head.extend_from_slice(body.len().to_string().as_bytes());
        if request_id != 0 {
            head.extend_from_slice(b"\r\nx-rvsim-request-id: ");
            head.extend_from_slice(rvsim_obs::format_request_id(request_id).as_bytes());
        }
        head.extend_from_slice(b"\r\n\r\n");
        let residue = std::mem::take(&mut self.residue);
        let stream = self.connect()?;
        stream.write_all(&head)?;
        stream.write_all(body)?;

        let (status, payload, residue) = read_response(stream, residue)?;
        self.residue = residue;
        if status != 200 {
            return Err(bad_response(format!(
                "server answered {status}: {}",
                String::from_utf8_lossy(&payload).trim()
            )));
        }
        Ok(payload)
    }
}

/// One-shot HTTP exchange on a fresh connection: send `method target` with
/// `body` and return the status code and response body.  This is the
/// transport for the out-of-band endpoints (`/healthz`, `/metrics`,
/// `/admin/...`) where keep-alive pooling is not worth carrying state for.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let head = format!(
        "{method} {target} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("send {addr}{target}: {e}"))?;
    stream.write_all(body).map_err(|e| format!("send {addr}{target}: {e}"))?;
    let (status, payload, _residue) =
        read_response(&mut stream, Vec::new()).map_err(|e| format!("read {addr}{target}: {e}"))?;
    Ok((status, payload))
}

/// [`http_request`] with method `GET` and an empty body.
pub fn http_get(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    http_request(addr, "GET", target, b"", timeout)
}

/// [`http_request`] with method `POST`.
pub fn http_post(
    addr: SocketAddr,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    http_request(addr, "POST", target, body, timeout)
}

/// Read one HTTP response (status + headers + sized body) from `stream`,
/// starting from `buffered` leftover bytes.  Returns the status code, the
/// body and any bytes read past it.
fn read_response(
    stream: &mut TcpStream,
    mut buffered: Vec<u8>,
) -> std::io::Result<(u16, Vec<u8>, Vec<u8>)> {
    let mut chunk = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(end) = crate::http::find_head_end(&buffered) {
            break end;
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            // A reset before any response byte means the server closed the
            // idle keep-alive connection without seeing the request; map it
            // to the same retryable kind as a clean pre-response close.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset && buffered.is_empty() => {
                return Err(stale_connection())
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            if buffered.is_empty() {
                // Clean close with zero response bytes: the request was
                // never processed (stale keep-alive) — safe to retry.
                return Err(stale_connection());
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buffered.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buffered[..head_end]).into_owned();
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_response(format!("malformed status line in {head:?}")))?;
    let content_length = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse::<usize>())
        })
        .transpose()
        .map_err(|_| bad_response("bad content-length".into()))?
        .unwrap_or(0);

    let mut rest = buffered.split_off(head_end);
    while rest.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        rest.extend_from_slice(&chunk[..n]);
    }
    let residue = rest.split_off(content_length);
    Ok((status, rest, residue))
}

fn bad_response(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

fn stale_connection() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::ConnectionAborted,
        "keep-alive connection closed before the request was read",
    )
}
