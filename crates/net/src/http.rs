//! Incremental HTTP/1.1 request framing.
//!
//! [`RequestParser`] accumulates bytes as they arrive from a socket and
//! yields complete requests: it tolerates arbitrary partial reads (a request
//! split at any byte boundary parses identically to the unsplit stream —
//! property-tested), supports pipelining (several requests buffered in one
//! read) and keep-alive semantics, and rejects malformed or oversized input
//! with the appropriate 4xx/5xx status instead of panicking or hanging.
//!
//! The parser is deliberately small: request line + headers + a
//! `content-length` body.  Chunked transfer encoding is rejected with 501 —
//! every client of the simulation protocol sends sized bodies.

/// Maximum bytes of request line + headers before the parser rejects the
/// request with `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request body size before the parser rejects the request with
/// `413 Payload Too Large`.  Protocol requests are small JSON objects; the
/// generous cap only exists to bound memory per connection.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), upper-cased as received.
    pub method: String,
    /// Request target (`/api`, `/metrics`, …).
    pub target: String,
    /// Protocol version of the request line.  Responses echo it: an
    /// HTTP/1.0 client must not be answered with an `HTTP/1.1` status line.
    pub version: Version,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `connection: close`; HTTP/1.0 only with
    /// `connection: keep-alive`).
    pub keep_alive: bool,
    /// Request body (`content-length` bytes; empty when absent).
    pub body: Vec<u8>,
    /// Request id carried by the `x-rvsim-request-id` header (16 hex
    /// digits), or 0 when absent/unparseable — the front end then mints
    /// one at the edge.
    pub request_id: u64,
}

/// A framing-level rejection: the connection answers with `status` and
/// closes (framing errors are not recoverable — byte positions are lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to answer with (400/405/413/431/501/505).
    pub status: u16,
    /// Status reason phrase.
    pub reason: &'static str,
    /// Human-readable detail for the response body.
    pub detail: String,
}

impl HttpError {
    fn new(status: u16, reason: &'static str, detail: impl Into<String>) -> Self {
        HttpError { status, reason, detail: detail.into() }
    }
}

/// Incremental request parser over a byte stream.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by parsed requests.  The prefix is
    /// compacted away lazily, so pipelined parsing does not memmove per
    /// request.
    pos: usize,
    /// Bytes past `pos` already scanned for the head terminator without
    /// finding it.  Persisting this across `feed`s keeps the head scan
    /// linear in the stream length: byte-dribble input re-examines only the
    /// unscanned tail (plus the two trailing bytes a terminator could
    /// straddle), not the whole buffered head again — the old restart-at-0
    /// behaviour was O(n²) against a slow client.
    scanned: usize,
}

impl RequestParser {
    /// Fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        // Compact once the consumed prefix dominates, amortizing the move.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Try to parse the next complete request from the buffered bytes.
    ///
    /// * `Ok(Some(request))` — a complete request was consumed.
    /// * `Ok(None)` — more bytes are needed (partial head or body).
    /// * `Err(error)` — the stream is malformed or over limits; the caller
    ///   should answer with `error.status` and close the connection.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let data = &self.buf[self.pos..];
        // Resume the terminator scan where the last one stopped.  A
        // terminator can straddle a feed boundary (`…\n\r` + `\n`), and the
        // scan inspects up to two bytes past the candidate `\n`, so the last
        // two scanned bytes stay undecided and are re-examined.
        let resume = self.scanned.min(data.len());
        let found = find_head_end_from(data, resume);
        if found.is_none() {
            self.scanned = data.len().saturating_sub(2);
        }
        let Some(head_len) = found else {
            if data.len() > MAX_HEAD_BYTES {
                return Err(HttpError::new(
                    431,
                    "Request Header Fields Too Large",
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                "Request Header Fields Too Large",
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }

        // The head is complete: parse it (errors are fatal for the
        // connection, so consuming on the error path is unnecessary).
        let head = &data[..head_len];
        let (request_line, header_block) = split_first_line(head);
        let (method, target, version) = parse_request_line(request_line)?;
        let headers = parse_headers(header_block)?;

        let mut content_length = 0usize;
        let mut keep_alive = version == Version::Http11;
        let mut request_id = 0u64;
        for (name, value) in &headers {
            match name.as_str() {
                "content-length" => {
                    content_length = parse_content_length(value)?;
                }
                "x-rvsim-request-id" => {
                    request_id = rvsim_obs::parse_request_id(value).unwrap_or(0);
                }
                "transfer-encoding" => {
                    return Err(HttpError::new(
                        501,
                        "Not Implemented",
                        "transfer-encoding is not supported; send a sized body",
                    ));
                }
                "connection" => {
                    let value = value.to_ascii_lowercase();
                    if value.split(',').any(|t| t.trim() == "close") {
                        keep_alive = false;
                    } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
        }
        if data.len() < head_len + content_length {
            return Ok(None); // body still in flight
        }

        let body = data[head_len..head_len + content_length].to_vec();
        self.pos += head_len + content_length;
        self.scanned = 0;
        self.compact();
        Ok(Some(HttpRequest { method, target, version, keep_alive, body, request_id }))
    }
}

/// HTTP protocol version of a request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`.
    Http10,
    /// `HTTP/1.1`.
    Http11,
}

impl Version {
    /// The status-line prefix for a response in this version.
    fn status_prefix(self) -> &'static [u8] {
        match self {
            Version::Http10 => b"HTTP/1.0 ",
            Version::Http11 => b"HTTP/1.1 ",
        }
    }
}

/// Index one past the head terminator (`\r\n\r\n`, with lenient bare-`\n`
/// acceptance), or `None` while the head is still incomplete.  Shared with
/// the client-side response reader so both directions frame identically.
pub fn find_head_end(data: &[u8]) -> Option<usize> {
    find_head_end_from(data, 0)
}

/// [`find_head_end`] resuming at byte `start` (everything before `start` is
/// known not to begin a terminator).
fn find_head_end_from(data: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    while i < data.len() {
        if data[i] == b'\n' {
            match data.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if data.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

fn split_first_line(head: &[u8]) -> (&[u8], &[u8]) {
    match head.iter().position(|&b| b == b'\n') {
        Some(nl) => (trim_cr(&head[..nl]), &head[nl + 1..]),
        None => (trim_cr(head), &[]),
    }
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

fn parse_request_line(line: &[u8]) -> Result<(String, String, Version), HttpError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| HttpError::new(400, "Bad Request", "request line is not UTF-8"))?;
    let mut parts = text.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "Bad Request", format!("malformed request line `{text}`")));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::new(400, "Bad Request", format!("bad method `{method}`")));
    }
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        other => {
            return Err(HttpError::new(
                505,
                "HTTP Version Not Supported",
                format!("unsupported version `{other}`"),
            ));
        }
    };
    Ok((method.to_ascii_uppercase(), target.to_string(), version))
}

fn parse_headers(block: &[u8]) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for raw_line in block.split(|&b| b == b'\n') {
        let line = trim_cr(raw_line);
        if line.is_empty() {
            continue; // the blank terminator line (and any stray blanks)
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| HttpError::new(400, "Bad Request", "header line is not UTF-8"))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::new(
                400,
                "Bad Request",
                format!("header without colon `{text}`"),
            ));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, "Bad Request", format!("bad header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    // Conflicting duplicate content-lengths are a classic smuggling vector.
    let lengths: Vec<&str> =
        headers.iter().filter(|(n, _)| n == "content-length").map(|(_, v)| v.as_str()).collect();
    if lengths.len() > 1 && lengths.iter().any(|&v| v != lengths[0]) {
        return Err(HttpError::new(400, "Bad Request", "conflicting content-length headers"));
    }
    Ok(headers)
}

/// Strict `content-length` parse: ASCII digits only.  Sign prefixes (`+5`),
/// embedded whitespace and other forms `usize::from_str` would tolerate are
/// 400, while values past [`MAX_BODY_BYTES`] — including digit strings too
/// long to represent at all — are 413: a length the server refuses to
/// buffer, not a malformed one.
fn parse_content_length(value: &str) -> Result<usize, HttpError> {
    let digits = value.as_bytes();
    if digits.is_empty() || !digits.iter().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::new(400, "Bad Request", format!("bad content-length `{value}`")));
    }
    let mut length = 0usize;
    for &digit in digits {
        length = length
            .checked_mul(10)
            .and_then(|n| n.checked_add(usize::from(digit - b'0')))
            .filter(|&n| n <= MAX_BODY_BYTES)
            .ok_or_else(|| {
                HttpError::new(
                    413,
                    "Payload Too Large",
                    format!("request body of {value} bytes exceeds {MAX_BODY_BYTES}"),
                )
            })?;
    }
    Ok(length)
}

/// Everything a response head needs ([`write_response_head`]).
#[derive(Debug, Clone, Copy)]
pub struct ResponseHead<'a> {
    /// Protocol version to echo in the status line.
    pub version: Version,
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'a str,
    /// `content-type` header value.
    pub content_type: &'a str,
    /// `content-length` header value (the body is written separately).
    pub content_length: usize,
    /// Emit `connection: keep-alive` instead of `connection: close`.
    pub keep_alive: bool,
    /// Extra headers (e.g. the `allow` list a 405 requires), emitted
    /// verbatim before the blank line.
    pub extra: &'a [(&'a str, &'a str)],
}

/// Serialize a response head (status line + headers + blank line) into
/// `out`.  The body is written separately so a shared-buffer payload never
/// gets copied into the head buffer.  The status line echoes the *request's*
/// protocol version (an HTTP/1.0 client must not see `HTTP/1.1`).
pub fn write_response_head(out: &mut Vec<u8>, head: &ResponseHead<'_>) {
    out.extend_from_slice(head.version.status_prefix());
    out.extend_from_slice(head.status.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(head.reason.as_bytes());
    out.extend_from_slice(b"\r\ncontent-type: ");
    out.extend_from_slice(head.content_type.as_bytes());
    out.extend_from_slice(b"\r\ncontent-length: ");
    out.extend_from_slice(head.content_length.to_string().as_bytes());
    out.extend_from_slice(b"\r\nconnection: ");
    out.extend_from_slice(if head.keep_alive { b"keep-alive".as_ref() } else { b"close".as_ref() });
    for (name, value) in head.extra {
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
    }
    out.extend_from_slice(b"\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(stream: &[u8]) -> Result<Vec<HttpRequest>, HttpError> {
        let mut parser = RequestParser::new();
        parser.feed(stream);
        let mut requests = Vec::new();
        while let Some(r) = parser.next_request()? {
            requests.push(r);
        }
        Ok(requests)
    }

    #[test]
    fn parses_a_simple_post() {
        let reqs = parse_all(b"POST /api HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "POST");
        assert_eq!(reqs[0].target, "/api");
        assert_eq!(reqs[0].version, Version::Http11);
        assert!(reqs[0].keep_alive);
        assert_eq!(reqs[0].body, b"hello");
    }

    #[test]
    fn request_version_is_preserved_for_response_echo() {
        let reqs = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(reqs[0].version, Version::Http10);
        let reqs = parse_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(reqs[0].version, Version::Http11);
    }

    #[test]
    fn parses_pipelined_requests_and_byte_by_byte_feeding() {
        let stream: &[u8] = b"POST /api HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc\
                              GET /metrics HTTP/1.1\r\n\r\n\
                              POST /api HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\nhi";
        let whole = parse_all(stream).unwrap();
        assert_eq!(whole.len(), 3);
        assert_eq!(whole[0].body, b"abc");
        assert_eq!(whole[1].method, "GET");
        assert!(!whole[2].keep_alive);

        // One byte at a time must produce the identical request sequence.
        let mut parser = RequestParser::new();
        let mut split = Vec::new();
        for &b in stream {
            parser.feed(&[b]);
            while let Some(r) = parser.next_request().unwrap() {
                split.push(r);
            }
        }
        assert_eq!(split, whole);
    }

    #[test]
    fn request_id_header_is_parsed_and_defaults_to_zero() {
        let reqs = parse_all(
            b"POST /api HTTP/1.1\r\nx-rvsim-request-id: 00000000deadbeef\r\ncontent-length: 2\r\n\r\nok",
        )
        .unwrap();
        assert_eq!(reqs[0].request_id, 0xdead_beef);
        let reqs = parse_all(b"POST /api HTTP/1.1\r\ncontent-length: 2\r\n\r\nok").unwrap();
        assert_eq!(reqs[0].request_id, 0);
        // Junk ids are treated as absent, not a framing error.
        let reqs = parse_all(
            b"POST /api HTTP/1.1\r\nx-rvsim-request-id: zzz\r\ncontent-length: 2\r\n\r\nok",
        )
        .unwrap();
        assert_eq!(reqs[0].request_id, 0);
    }

    #[test]
    fn lenient_bare_newline_framing() {
        let reqs = parse_all(b"POST /api HTTP/1.1\ncontent-length: 2\n\nok").unwrap();
        assert_eq!(reqs[0].body, b"ok");
    }

    #[test]
    fn http10_defaults_to_close_and_keep_alive_header_overrides() {
        let reqs = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!reqs[0].keep_alive);
        let reqs = parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(reqs[0].keep_alive);
        let reqs = parse_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn incomplete_head_and_body_wait_for_more_bytes() {
        let mut parser = RequestParser::new();
        parser.feed(b"POST /api HTTP/1.1\r\ncontent-le");
        assert_eq!(parser.next_request().unwrap(), None);
        parser.feed(b"ngth: 4\r\n\r\nab");
        assert_eq!(parser.next_request().unwrap(), None); // body short
        parser.feed(b"cd");
        let r = parser.next_request().unwrap().unwrap();
        assert_eq!(r.body, b"abcd");
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            b"BOGUS\r\n\r\n".as_ref(),
            b"GET /\r\n\r\n".as_ref(),
            b"GET / HTTP/1.1 extra\r\n\r\n".as_ref(),
            b"G3T / HTTP/1.1\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\nheaderwithoutcolon\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: banana\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n".as_ref(),
            // Sign- or whitespace-padded lengths that `usize::from_str`
            // would happily accept (`+5` parses as 5) must be rejected.
            b"POST /api HTTP/1.1\r\ncontent-length: +5\r\n\r\nhello".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: -1\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: 5 5\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: 0x10\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length:\r\n\r\n".as_ref(),
        ] {
            let err = parse_all(bad).unwrap_err();
            assert_eq!(err.status, 400, "{:?} -> {err:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn unsupported_version_and_encoding_are_rejected() {
        assert_eq!(parse_all(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status, 505);
        let err =
            parse_all(b"POST /api HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 501);
    }

    #[test]
    fn oversized_head_is_431() {
        // Endless header bytes with no terminator: rejected once the buffer
        // passes the cap rather than buffering forever.
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 16];
        parser.feed(&filler);
        assert_eq!(parser.next_request().unwrap_err().status, 431);

        // A *terminated* head over the cap is also rejected.
        let mut huge = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
        huge.extend(std::iter::repeat_n(b'y', MAX_HEAD_BYTES));
        huge.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_all(&huge).unwrap_err().status, 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let head = format!("POST /api HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse_all(head.as_bytes()).unwrap_err().status, 413);
        // A length too large for usize must be 413, not a wrapped/panicked
        // parse.  (Regression: `value.parse::<usize>()` errored into a 400
        // and a u128-sized literal used to be indistinguishable from junk.)
        let huge = b"POST /api HTTP/1.1\r\ncontent-length: 99999999999999999999999999\r\n\r\n";
        assert_eq!(parse_all(huge).unwrap_err().status, 413);
    }

    #[test]
    fn surrounding_whitespace_in_content_length_is_trimmed_not_parsed() {
        // Header values are trimmed before parsing, so ordinary padding
        // stays valid; padding *inside* the digits is rejected above.
        let reqs = parse_all(b"POST /api HTTP/1.1\r\ncontent-length:   2  \r\n\r\nok").unwrap();
        assert_eq!(reqs[0].body, b"ok");
    }

    #[test]
    fn response_head_renders_the_usual_shape() {
        let mut out = Vec::new();
        write_response_head(
            &mut out,
            &ResponseHead {
                version: Version::Http11,
                status: 200,
                reason: "OK",
                content_type: "text/plain",
                content_length: 2,
                keep_alive: true,
                extra: &[],
            },
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn response_head_echoes_http10_and_renders_extra_headers() {
        let mut out = Vec::new();
        write_response_head(
            &mut out,
            &ResponseHead {
                version: Version::Http10,
                status: 405,
                reason: "Method Not Allowed",
                content_type: "text/plain",
                content_length: 0,
                keep_alive: false,
                extra: &[("allow", "GET, POST")],
            },
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"), "{text}");
        assert!(text.contains("\r\nallow: GET, POST\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn head_scan_resumes_instead_of_rescanning_on_every_feed() {
        // Semantic regression cover for the O(n²) head scan: a head dribbled
        // in one byte at a time — including a terminator straddling feed
        // boundaries — parses identically to the unsplit stream, and the
        // persisted scan offset tracks the buffered length (i.e. the parser
        // is not restarting from zero each feed).
        let stream = b"POST /api HTTP/1.1\r\nx-filler: abcdefghij\r\ncontent-length: 2\r\n\r\nok";
        let head_len = find_head_end(stream).unwrap();
        let mut parser = RequestParser::new();
        for (i, &b) in stream.iter().enumerate() {
            parser.feed(&[b]);
            let parsed = parser.next_request().unwrap();
            if i < stream.len() - 1 {
                assert!(parsed.is_none(), "complete request before byte {i}?");
                if i + 1 < head_len {
                    // While the head terminator is still missing, the scan
                    // cursor must trail the buffer end by at most the two
                    // undecided lookahead bytes: everything earlier is
                    // already known not to start a terminator.
                    assert!(
                        parser.scanned + 2 > i,
                        "scan restarted: scanned={} after {} bytes",
                        parser.scanned,
                        i + 1
                    );
                }
            } else {
                let request = parsed.expect("final byte completes the request");
                assert_eq!(request.body, b"ok");
                assert_eq!(parser.scanned, 0, "consume must reset the scan cursor");
            }
        }
    }
}
