//! Incremental HTTP/1.1 request framing.
//!
//! [`RequestParser`] accumulates bytes as they arrive from a socket and
//! yields complete requests: it tolerates arbitrary partial reads (a request
//! split at any byte boundary parses identically to the unsplit stream —
//! property-tested), supports pipelining (several requests buffered in one
//! read) and keep-alive semantics, and rejects malformed or oversized input
//! with the appropriate 4xx/5xx status instead of panicking or hanging.
//!
//! The parser is deliberately small: request line + headers + a
//! `content-length` body.  Chunked transfer encoding is rejected with 501 —
//! every client of the simulation protocol sends sized bodies.

/// Maximum bytes of request line + headers before the parser rejects the
/// request with `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request body size before the parser rejects the request with
/// `413 Payload Too Large`.  Protocol requests are small JSON objects; the
/// generous cap only exists to bound memory per connection.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), upper-cased as received.
    pub method: String,
    /// Request target (`/api`, `/metrics`, …).
    pub target: String,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `connection: close`; HTTP/1.0 only with
    /// `connection: keep-alive`).
    pub keep_alive: bool,
    /// Request body (`content-length` bytes; empty when absent).
    pub body: Vec<u8>,
}

/// A framing-level rejection: the connection answers with `status` and
/// closes (framing errors are not recoverable — byte positions are lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to answer with (400/405/413/431/501/505).
    pub status: u16,
    /// Status reason phrase.
    pub reason: &'static str,
    /// Human-readable detail for the response body.
    pub detail: String,
}

impl HttpError {
    fn new(status: u16, reason: &'static str, detail: impl Into<String>) -> Self {
        HttpError { status, reason, detail: detail.into() }
    }
}

/// Incremental request parser over a byte stream.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by parsed requests.  The prefix is
    /// compacted away lazily, so pipelined parsing does not memmove per
    /// request.
    pos: usize,
}

impl RequestParser {
    /// Fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        // Compact once the consumed prefix dominates, amortizing the move.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Try to parse the next complete request from the buffered bytes.
    ///
    /// * `Ok(Some(request))` — a complete request was consumed.
    /// * `Ok(None)` — more bytes are needed (partial head or body).
    /// * `Err(error)` — the stream is malformed or over limits; the caller
    ///   should answer with `error.status` and close the connection.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let data = &self.buf[self.pos..];
        let Some(head_len) = find_head_end(data) else {
            if data.len() > MAX_HEAD_BYTES {
                return Err(HttpError::new(
                    431,
                    "Request Header Fields Too Large",
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                "Request Header Fields Too Large",
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }

        // The head is complete: parse it (errors are fatal for the
        // connection, so consuming on the error path is unnecessary).
        let head = &data[..head_len];
        let (request_line, header_block) = split_first_line(head);
        let (method, target, version) = parse_request_line(request_line)?;
        let headers = parse_headers(header_block)?;

        let mut content_length = 0usize;
        let mut keep_alive = version == Version::Http11;
        for (name, value) in &headers {
            match name.as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| {
                        HttpError::new(400, "Bad Request", format!("bad content-length `{value}`"))
                    })?;
                }
                "transfer-encoding" => {
                    return Err(HttpError::new(
                        501,
                        "Not Implemented",
                        "transfer-encoding is not supported; send a sized body",
                    ));
                }
                "connection" => {
                    let value = value.to_ascii_lowercase();
                    if value.split(',').any(|t| t.trim() == "close") {
                        keep_alive = false;
                    } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::new(
                413,
                "Payload Too Large",
                format!("request body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
            ));
        }
        if data.len() < head_len + content_length {
            return Ok(None); // body still in flight
        }

        let body = data[head_len..head_len + content_length].to_vec();
        self.pos += head_len + content_length;
        self.compact();
        Ok(Some(HttpRequest { method, target, keep_alive, body }))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    Http10,
    Http11,
}

/// Index one past the head terminator (`\r\n\r\n`, with lenient bare-`\n`
/// acceptance), or `None` while the head is still incomplete.  Shared with
/// the client-side response reader so both directions frame identically.
pub(crate) fn find_head_end(data: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < data.len() {
        if data[i] == b'\n' {
            match data.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if data.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

fn split_first_line(head: &[u8]) -> (&[u8], &[u8]) {
    match head.iter().position(|&b| b == b'\n') {
        Some(nl) => (trim_cr(&head[..nl]), &head[nl + 1..]),
        None => (trim_cr(head), &[]),
    }
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

fn parse_request_line(line: &[u8]) -> Result<(String, String, Version), HttpError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| HttpError::new(400, "Bad Request", "request line is not UTF-8"))?;
    let mut parts = text.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "Bad Request", format!("malformed request line `{text}`")));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::new(400, "Bad Request", format!("bad method `{method}`")));
    }
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        other => {
            return Err(HttpError::new(
                505,
                "HTTP Version Not Supported",
                format!("unsupported version `{other}`"),
            ));
        }
    };
    Ok((method.to_ascii_uppercase(), target.to_string(), version))
}

fn parse_headers(block: &[u8]) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for raw_line in block.split(|&b| b == b'\n') {
        let line = trim_cr(raw_line);
        if line.is_empty() {
            continue; // the blank terminator line (and any stray blanks)
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| HttpError::new(400, "Bad Request", "header line is not UTF-8"))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::new(
                400,
                "Bad Request",
                format!("header without colon `{text}`"),
            ));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, "Bad Request", format!("bad header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    // Conflicting duplicate content-lengths are a classic smuggling vector.
    let lengths: Vec<&str> =
        headers.iter().filter(|(n, _)| n == "content-length").map(|(_, v)| v.as_str()).collect();
    if lengths.len() > 1 && lengths.iter().any(|&v| v != lengths[0]) {
        return Err(HttpError::new(400, "Bad Request", "conflicting content-length headers"));
    }
    Ok(headers)
}

/// Serialize a response head (status line + headers + blank line) into
/// `out`.  The body is written separately so a shared-buffer payload never
/// gets copied into the head buffer.
pub fn write_response_head(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\ncontent-type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\ncontent-length: ");
    out.extend_from_slice(content_length.to_string().as_bytes());
    out.extend_from_slice(b"\r\nconnection: ");
    out.extend_from_slice(if keep_alive { b"keep-alive".as_ref() } else { b"close".as_ref() });
    out.extend_from_slice(b"\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(stream: &[u8]) -> Result<Vec<HttpRequest>, HttpError> {
        let mut parser = RequestParser::new();
        parser.feed(stream);
        let mut requests = Vec::new();
        while let Some(r) = parser.next_request()? {
            requests.push(r);
        }
        Ok(requests)
    }

    #[test]
    fn parses_a_simple_post() {
        let reqs = parse_all(b"POST /api HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "POST");
        assert_eq!(reqs[0].target, "/api");
        assert!(reqs[0].keep_alive);
        assert_eq!(reqs[0].body, b"hello");
    }

    #[test]
    fn parses_pipelined_requests_and_byte_by_byte_feeding() {
        let stream: &[u8] = b"POST /api HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc\
                              GET /metrics HTTP/1.1\r\n\r\n\
                              POST /api HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\nhi";
        let whole = parse_all(stream).unwrap();
        assert_eq!(whole.len(), 3);
        assert_eq!(whole[0].body, b"abc");
        assert_eq!(whole[1].method, "GET");
        assert!(!whole[2].keep_alive);

        // One byte at a time must produce the identical request sequence.
        let mut parser = RequestParser::new();
        let mut split = Vec::new();
        for &b in stream {
            parser.feed(&[b]);
            while let Some(r) = parser.next_request().unwrap() {
                split.push(r);
            }
        }
        assert_eq!(split, whole);
    }

    #[test]
    fn lenient_bare_newline_framing() {
        let reqs = parse_all(b"POST /api HTTP/1.1\ncontent-length: 2\n\nok").unwrap();
        assert_eq!(reqs[0].body, b"ok");
    }

    #[test]
    fn http10_defaults_to_close_and_keep_alive_header_overrides() {
        let reqs = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!reqs[0].keep_alive);
        let reqs = parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(reqs[0].keep_alive);
        let reqs = parse_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn incomplete_head_and_body_wait_for_more_bytes() {
        let mut parser = RequestParser::new();
        parser.feed(b"POST /api HTTP/1.1\r\ncontent-le");
        assert_eq!(parser.next_request().unwrap(), None);
        parser.feed(b"ngth: 4\r\n\r\nab");
        assert_eq!(parser.next_request().unwrap(), None); // body short
        parser.feed(b"cd");
        let r = parser.next_request().unwrap().unwrap();
        assert_eq!(r.body, b"abcd");
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            b"BOGUS\r\n\r\n".as_ref(),
            b"GET /\r\n\r\n".as_ref(),
            b"GET / HTTP/1.1 extra\r\n\r\n".as_ref(),
            b"G3T / HTTP/1.1\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\nheaderwithoutcolon\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: banana\r\n\r\n".as_ref(),
            b"POST /api HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n".as_ref(),
        ] {
            let err = parse_all(bad).unwrap_err();
            assert_eq!(err.status, 400, "{:?} -> {err:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn unsupported_version_and_encoding_are_rejected() {
        assert_eq!(parse_all(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status, 505);
        let err =
            parse_all(b"POST /api HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 501);
    }

    #[test]
    fn oversized_head_is_431() {
        // Endless header bytes with no terminator: rejected once the buffer
        // passes the cap rather than buffering forever.
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 16];
        parser.feed(&filler);
        assert_eq!(parser.next_request().unwrap_err().status, 431);

        // A *terminated* head over the cap is also rejected.
        let mut huge = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
        huge.extend(std::iter::repeat_n(b'y', MAX_HEAD_BYTES));
        huge.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_all(&huge).unwrap_err().status, 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let head = format!("POST /api HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse_all(head.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn response_head_renders_the_usual_shape() {
        let mut out = Vec::new();
        write_response_head(&mut out, 200, "OK", "text/plain", 2, true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
