//! # rvsim-asm — two-pass RISC-V assembler
//!
//! Implements the assembly-processing pipeline of the paper (§III-C):
//!
//! 1. **First pass** — the program text is tokenized into language units and
//!    processed line by line: labels are recorded, memory directives
//!    (`.byte`, `.hword`, `.word`, `.align`, `.ascii`, `.asciiz`, `.string`,
//!    `.skip`, `.zero`) build the data segment, pseudo-instructions are
//!    expanded, and instruction records are created with still-symbolic
//!    operands.
//! 2. **Memory allocation** — data items are placed (respecting alignment)
//!    so every label has a concrete value.
//! 3. **Second pass** — operand expressions (including arithmetic such as
//!    `arr+64` and the `%hi(...)`/`%lo(...)` relocations emitted by `li`/`la`)
//!    are evaluated, branch offsets are made PC-relative, and operand kinds
//!    are checked against the instruction descriptors.
//!
//! The output is a [`Program`]: decoded instruction records, a symbol table,
//! the initialized data image and a source-line map (used to link C and
//! assembly lines in the editor).  A [`filter_assembly`] helper strips the
//! compiler noise (unneeded directives/labels) exactly like the paper's
//! output filter.

#![warn(missing_docs)]

pub mod assembler;
pub mod error;
pub mod expr;
pub mod program;

pub use assembler::{assemble, filter_assembly, AssemblerOptions};
pub use error::AsmError;
pub use program::{AsmInstruction, DataItem, Operand, Program};
