//! Assembled program representation: instruction records, symbol table, data
//! image and source mapping.

use rvsim_isa::{InstructionSet, RegisterId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fully resolved instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Register(RegisterId),
    /// An immediate operand (branch offsets are PC-relative byte offsets).
    Immediate(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn register(self) -> Option<RegisterId> {
        match self {
            Operand::Register(r) => Some(r),
            Operand::Immediate(_) => None,
        }
    }

    /// The immediate value, if this operand is one.
    pub fn immediate(self) -> Option<i64> {
        match self {
            Operand::Immediate(v) => Some(v),
            Operand::Register(_) => None,
        }
    }
}

/// One assembled instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsmInstruction {
    /// Mnemonic after pseudo-instruction expansion.
    pub mnemonic: String,
    /// Operands in descriptor order (e.g. `rd, rs1, rs2` / `rd, imm, rs1`).
    pub operands: Vec<Operand>,
    /// Byte address of the instruction in the code segment (index × 4).
    pub address: u64,
    /// 1-based source line the instruction came from.
    pub source_line: usize,
    /// The original source text (pre-expansion), for display.
    pub text: String,
}

impl AsmInstruction {
    /// Instruction index in the code array.
    pub fn index(&self) -> usize {
        (self.address / 4) as usize
    }

    /// Operand at position `i` as a register.
    pub fn reg(&self, i: usize) -> Option<RegisterId> {
        self.operands.get(i).and_then(|o| o.register())
    }

    /// Operand at position `i` as an immediate.
    pub fn imm(&self, i: usize) -> Option<i64> {
        self.operands.get(i).and_then(|o| o.immediate())
    }
}

/// A chunk of initialized data produced by memory directives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataItem {
    /// Label attached to the item, if any.
    pub label: Option<String>,
    /// Absolute byte address in main memory.
    pub address: u64,
    /// Initialized bytes (zero-filled for `.skip`/`.zero`).
    pub bytes: Vec<u8>,
    /// Source line of the directive.
    pub source_line: usize,
}

/// The assembled program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Instructions in code-segment order.
    pub instructions: Vec<AsmInstruction>,
    /// All labels: code labels map to instruction byte addresses, data labels
    /// to main-memory addresses.
    pub symbols: HashMap<String, i64>,
    /// Initialized data items (already placed at absolute addresses).
    pub data: Vec<DataItem>,
    /// Entry point (byte address into the code segment).
    pub entry_point: u64,
    /// First free data address after the assembled data (next allocation spot).
    pub data_end: u64,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Instruction at byte address `pc`, if it lies inside the code segment.
    pub fn at(&self, pc: u64) -> Option<&AsmInstruction> {
        if !pc.is_multiple_of(4) {
            return None;
        }
        self.instructions.get((pc / 4) as usize)
    }

    /// Look up a label.
    pub fn symbol(&self, name: &str) -> Option<i64> {
        self.symbols.get(name).copied()
    }

    /// Set the entry point to `label`; returns `false` when the label is
    /// unknown or does not point into the code segment.
    pub fn set_entry(&mut self, label: &str) -> bool {
        match self.symbol(label) {
            Some(addr) if addr >= 0 && (addr as u64) < self.instructions.len() as u64 * 4 => {
                self.entry_point = addr as u64;
                true
            }
            _ => false,
        }
    }

    /// Static instruction mix: mnemonic → occurrence count (Runtime Statistics
    /// window, "static instruction mix").
    pub fn static_mix(&self) -> HashMap<String, usize> {
        let mut mix = HashMap::new();
        for ins in &self.instructions {
            *mix.entry(ins.mnemonic.clone()).or_insert(0) += 1;
        }
        mix
    }

    /// Verify every mnemonic exists in `isa` (used by tests and the CLI).
    pub fn validate_against(&self, isa: &InstructionSet) -> Result<(), String> {
        for ins in &self.instructions {
            if !isa.contains(&ins.mnemonic) {
                return Err(format!(
                    "instruction `{}` at 0x{:x} not in the instruction set",
                    ins.mnemonic, ins.address
                ));
            }
        }
        Ok(())
    }

    /// Write all initialized data items into a memory image accessed through
    /// the closure (address, bytes).
    pub fn load_data(&self, mut write: impl FnMut(u64, &[u8])) {
        for item in &self.data {
            if !item.bytes.is_empty() {
                write(item.address, &item.bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let instructions = vec![
            AsmInstruction {
                mnemonic: "addi".into(),
                operands: vec![
                    Operand::Register(RegisterId::x(10)),
                    Operand::Register(RegisterId::x(0)),
                    Operand::Immediate(5),
                ],
                address: 0,
                source_line: 1,
                text: "li a0, 5".into(),
            },
            AsmInstruction {
                mnemonic: "add".into(),
                operands: vec![
                    Operand::Register(RegisterId::x(10)),
                    Operand::Register(RegisterId::x(10)),
                    Operand::Register(RegisterId::x(10)),
                ],
                address: 4,
                source_line: 2,
                text: "add a0, a0, a0".into(),
            },
        ];
        let mut p = Program { instructions, ..Default::default() };
        p.symbols.insert("main".into(), 0);
        p.symbols.insert("second".into(), 4);
        p.symbols.insert("arr".into(), 0x1000);
        p
    }

    #[test]
    fn operand_accessors() {
        let p = sample_program();
        let ins = &p.instructions[0];
        assert_eq!(ins.reg(0), Some(RegisterId::x(10)));
        assert_eq!(ins.imm(2), Some(5));
        assert_eq!(ins.imm(0), None);
        assert_eq!(ins.reg(2), None);
        assert_eq!(ins.index(), 0);
        assert_eq!(p.instructions[1].index(), 1);
    }

    #[test]
    fn program_lookup_by_pc() {
        let p = sample_program();
        assert_eq!(p.at(0).unwrap().mnemonic, "addi");
        assert_eq!(p.at(4).unwrap().mnemonic, "add");
        assert!(p.at(8).is_none());
        assert!(p.at(2).is_none(), "misaligned pc");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn entry_point_selection() {
        let mut p = sample_program();
        assert!(p.set_entry("second"));
        assert_eq!(p.entry_point, 4);
        assert!(!p.set_entry("arr"), "data labels are not valid entry points");
        assert!(!p.set_entry("nope"));
        assert_eq!(p.entry_point, 4, "failed set_entry leaves entry unchanged");
    }

    #[test]
    fn static_mix_counts_mnemonics() {
        let p = sample_program();
        let mix = p.static_mix();
        assert_eq!(mix["addi"], 1);
        assert_eq!(mix["add"], 1);
    }

    #[test]
    fn validate_against_isa() {
        let isa = InstructionSet::rv32imf();
        let mut p = sample_program();
        assert!(p.validate_against(&isa).is_ok());
        p.instructions[0].mnemonic = "bogus".into();
        assert!(p.validate_against(&isa).is_err());
    }

    #[test]
    fn load_data_writes_all_items() {
        let mut p = sample_program();
        p.data.push(DataItem {
            label: Some("arr".into()),
            address: 0x100,
            bytes: vec![1, 2, 3],
            source_line: 1,
        });
        p.data.push(DataItem { label: None, address: 0x200, bytes: vec![], source_line: 2 });
        let mut writes = Vec::new();
        p.load_data(|addr, bytes| writes.push((addr, bytes.to_vec())));
        assert_eq!(writes, vec![(0x100, vec![1, 2, 3])]);
    }
}
