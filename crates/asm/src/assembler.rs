//! The two-pass assembler (paper §III-C).

use crate::error::AsmError;
use crate::expr;
use crate::program::{AsmInstruction, DataItem, Operand, Program};
use rvsim_isa::{pseudo, ArgKind, InstructionDescriptor, InstructionSet, RegisterId};
use std::collections::HashMap;

/// Assembler options.
#[derive(Debug, Clone)]
pub struct AssemblerOptions {
    /// Base address of the data segment in main memory.  The stack normally
    /// occupies `[0, data_base)` (paper §III-C: the stack is allocated at the
    /// beginning of memory, user data after it).
    pub data_base: u64,
    /// Entry-point label.  Defaults to `main` when present, otherwise the
    /// first instruction.
    pub entry_label: Option<String>,
    /// Predefined symbols: labels of arrays allocated through the Memory
    /// Settings window (`extern` data in C programs) that the program may
    /// reference without defining.
    pub extra_symbols: HashMap<String, i64>,
}

impl Default for AssemblerOptions {
    fn default() -> Self {
        AssemblerOptions { data_base: 0x1000, entry_label: None, extra_symbols: HashMap::new() }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Instruction as collected by the first pass (operands still textual).
#[derive(Debug, Clone)]
struct RawInstruction {
    mnemonic: String,
    operands: Vec<String>,
    source_line: usize,
    text: String,
}

/// Pending data produced by the first pass, offsets relative to the data base.
#[derive(Debug, Clone)]
enum PendingData {
    /// Fully known bytes (strings, zero fill, alignment padding).
    Bytes { offset: u64, bytes: Vec<u8>, label: Option<String>, line: usize },
    /// Numeric elements whose values may reference labels.
    Numeric {
        offset: u64,
        elem_size: usize,
        exprs: Vec<String>,
        label: Option<String>,
        line: usize,
    },
}

impl PendingData {
    fn offset(&self) -> u64 {
        match self {
            PendingData::Bytes { offset, .. } | PendingData::Numeric { offset, .. } => *offset,
        }
    }
}

/// Strip `#` and `//` comments (outside string literals).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_escape = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            if c == '\\' && !prev_escape {
                prev_escape = true;
            } else {
                if c == '"' && !prev_escape {
                    in_string = false;
                }
                prev_escape = false;
            }
        } else if c == '"' {
            in_string = true;
        } else if c == '#' || (c == '/' && i + 1 < bytes.len() && bytes[i + 1] as char == '/') {
            // `#` and `//` both start a comment.
            return &line[..i];
        }
        i += 1;
    }
    line
}

/// Split an operand list on top-level commas (commas inside parentheses or
/// string literals do not split).
fn split_operands(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '(' if !in_string => {
                depth += 1;
                current.push(c);
            }
            ')' if !in_string => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if !in_string && depth == 0 => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts
}

/// Parse a `.ascii`/`.asciiz`/`.string` literal with C escapes.
fn parse_string_literal(text: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let text = text.trim();
    if !text.starts_with('"') || !text.ends_with('"') || text.len() < 2 {
        return Err(AsmError::new(line, format!("expected string literal, got `{text}`")));
    }
    let inner = &text[1..text.len() - 1];
    let mut out = Vec::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let esc =
                chars.next().ok_or_else(|| AsmError::new(line, "unterminated escape in string"))?;
            out.push(match esc {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '"' => b'"',
                other => {
                    return Err(AsmError::new(line, format!("unknown escape `\\{other}`")));
                }
            });
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

/// Directives that are recognized but carry no meaning for the simulator.
const IGNORED_DIRECTIVES: &[&str] = &[
    ".globl",
    ".global",
    ".type",
    ".size",
    ".file",
    ".ident",
    ".option",
    ".attribute",
    ".local",
    ".comm",
    ".weak",
    ".cfi_startproc",
    ".cfi_endproc",
    ".cfi_def_cfa_offset",
    ".cfi_offset",
    ".cfi_restore",
    ".addrsig",
    ".addrsig_sym",
];

/// Assemble `source` against the instruction set `isa`.
pub fn assemble(
    source: &str,
    isa: &InstructionSet,
    options: &AssemblerOptions,
) -> Result<Program, Vec<AsmError>> {
    let mut errors: Vec<AsmError> = Vec::new();
    let mut raw_instructions: Vec<RawInstruction> = Vec::new();
    let mut pending_data: Vec<PendingData> = Vec::new();
    let mut symbols: HashMap<String, i64> = options.extra_symbols.clone();
    // Data offsets are relative to the data base; label values become absolute
    // as soon as they are bound (the paper allocates memory between the two
    // passes — the base address is known up front here).
    let mut data_cursor: u64 = 0;
    let mut section = Section::Text;
    // Labels are bound lazily: a label binds to the next instruction (code
    // address) or the next data directive (data address), whichever comes
    // first.  This lets programs interleave data definitions and code without
    // explicit `.data`/`.text` directives, as in the paper's Listing 2.
    let mut pending_labels: Vec<(String, usize)> = Vec::new();

    fn bind_labels(
        pending: &mut Vec<(String, usize)>,
        value: i64,
        symbols: &mut HashMap<String, i64>,
        errors: &mut Vec<AsmError>,
    ) {
        for (label, line) in pending.drain(..) {
            if symbols.insert(label.clone(), value).is_some() {
                errors.push(AsmError::new(line, format!("duplicate label `{label}`")));
            }
        }
    }

    // ------------------------------------------------------------ first pass
    for (lineno0, raw_line) in source.lines().enumerate() {
        let lineno = lineno0 + 1;
        let mut line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }

        // Labels (possibly several, possibly followed by code on the same line).
        while let Some(colon) = find_label_colon(&line) {
            let label = line[..colon].trim().to_string();
            if label.is_empty() || !is_valid_label(&label) {
                errors.push(AsmError::new(lineno, format!("invalid label `{label}`")));
                break;
            }
            pending_labels.push((label, lineno));
            line = line[colon + 1..].trim().to_string();
        }
        if line.is_empty() {
            continue;
        }

        let (head, rest) = match line.find(char::is_whitespace) {
            Some(i) => (line[..i].to_string(), line[i..].trim().to_string()),
            None => (line.clone(), String::new()),
        };

        if head.starts_with('.') {
            handle_directive(
                &head,
                &rest,
                lineno,
                &mut section,
                &mut data_cursor,
                &mut pending_data,
                &mut pending_labels,
                &mut symbols,
                options,
                &mut errors,
            );
            continue;
        }

        // An instruction line.
        if section == Section::Data {
            errors.push(AsmError::new(lineno, "instruction in data section"));
            continue;
        }
        bind_labels(
            &mut pending_labels,
            (raw_instructions.len() as i64) * 4,
            &mut symbols,
            &mut errors,
        );
        let operand_texts = split_operands(&rest);
        let expanded = pseudo::expand(&head, &operand_texts)
            .unwrap_or_else(|| vec![(head.clone(), operand_texts.clone())]);
        for (mnemonic, ops) in expanded {
            raw_instructions.push(RawInstruction {
                mnemonic,
                operands: ops,
                source_line: lineno,
                text: line.clone(),
            });
        }
    }

    // Labels trailing the last instruction / data item bind to the current end
    // of the active section (commonly used as end markers).
    let trailing_value = match section {
        Section::Text => (raw_instructions.len() as i64) * 4,
        Section::Data => (options.data_base + data_cursor) as i64,
    };
    bind_labels(&mut pending_labels, trailing_value, &mut symbols, &mut errors);

    // ----------------------------------------------------------- second pass
    let mut program = Program { data_end: options.data_base + data_cursor, ..Program::default() };

    // Data items: evaluate numeric expressions now that all labels are known.
    for item in &pending_data {
        match item {
            PendingData::Bytes { offset, bytes, label, line } => {
                program.data.push(DataItem {
                    label: label.clone(),
                    address: options.data_base + offset,
                    bytes: bytes.clone(),
                    source_line: *line,
                });
            }
            PendingData::Numeric { offset, elem_size, exprs, label, line } => {
                let mut bytes = Vec::with_capacity(exprs.len() * elem_size);
                for e in exprs {
                    match evaluate_data_expr(e, &symbols) {
                        Ok(v) => bytes.extend_from_slice(&v.to_le_bytes()[..*elem_size]),
                        Err(msg) => {
                            errors.push(AsmError::new(*line, msg));
                            bytes.extend_from_slice(&vec![0u8; *elem_size]);
                        }
                    }
                }
                program.data.push(DataItem {
                    label: label.clone(),
                    address: options.data_base + offset,
                    bytes,
                    source_line: *line,
                });
            }
        }
    }
    // Keep the data items sorted by address for deterministic loading.
    program.data.sort_by_key(|d| d.address);
    let _ = pending_data.iter().map(PendingData::offset).count();

    // Instructions: resolve operands against descriptors.
    for (index, raw) in raw_instructions.iter().enumerate() {
        let address = (index as u64) * 4;
        let Some(descriptor) = isa.get(&raw.mnemonic) else {
            errors.push(AsmError::new(
                raw.source_line,
                format!("unknown instruction `{}`", raw.mnemonic),
            ));
            continue;
        };
        match resolve_operands(descriptor, &raw.operands, address, &symbols) {
            Ok(operands) => program.instructions.push(AsmInstruction {
                mnemonic: raw.mnemonic.clone(),
                operands,
                address,
                source_line: raw.source_line,
                text: raw.text.clone(),
            }),
            Err(msg) => errors.push(AsmError::new(raw.source_line, msg)),
        }
    }

    program.symbols = symbols;

    // Entry point.
    let entry = options.entry_label.clone().or_else(|| {
        if program.symbols.contains_key("main") {
            Some("main".to_string())
        } else {
            None
        }
    });
    if let Some(label) = entry {
        if !program.set_entry(&label) {
            errors.push(AsmError::global(format!("entry label `{label}` not found in code")));
        }
    }

    if program.instructions.is_empty() && errors.is_empty() {
        errors.push(AsmError::global("program contains no instructions"));
    }

    if errors.is_empty() {
        Ok(program)
    } else {
        Err(errors)
    }
}

fn find_label_colon(line: &str) -> Option<usize> {
    // A label is an identifier at the start of the line terminated by ':'.
    let mut end = 0;
    for (i, c) in line.char_indices() {
        if c == ':' {
            return if i == end && i > 0 { Some(i) } else { None };
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$' {
            end = i + 1;
        } else {
            return None;
        }
    }
    None
}

fn is_valid_label(label: &str) -> bool {
    !label.is_empty()
        && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
        && !label.chars().next().unwrap().is_ascii_digit()
}

#[allow(clippy::too_many_arguments)]
fn handle_directive(
    head: &str,
    rest: &str,
    lineno: usize,
    section: &mut Section,
    data_cursor: &mut u64,
    pending_data: &mut Vec<PendingData>,
    pending_labels: &mut Vec<(String, usize)>,
    symbols: &mut HashMap<String, i64>,
    options: &AssemblerOptions,
    errors: &mut Vec<AsmError>,
) {
    // Bind all pending labels to the current (already aligned) data cursor and
    // return the first one so the data item can carry it for display.
    let mut bind_data_labels = |cursor: u64,
                                symbols: &mut HashMap<String, i64>,
                                errors: &mut Vec<AsmError>|
     -> Option<String> {
        let first = pending_labels.first().map(|(l, _)| l.clone());
        for (label, line) in pending_labels.drain(..) {
            if symbols.insert(label.clone(), (options.data_base + cursor) as i64).is_some() {
                errors.push(AsmError::new(line, format!("duplicate label `{label}`")));
            }
        }
        first
    };

    // Pad the data segment up to `align` bytes.
    fn align_data(
        data_cursor: &mut u64,
        align: u64,
        pending_data: &mut Vec<PendingData>,
        lineno: usize,
    ) {
        let align = align.max(1);
        let aligned = data_cursor.div_ceil(align) * align;
        if aligned > *data_cursor {
            pending_data.push(PendingData::Bytes {
                offset: *data_cursor,
                bytes: vec![0u8; (aligned - *data_cursor) as usize],
                label: None,
                line: lineno,
            });
            *data_cursor = aligned;
        }
    }

    match head {
        ".text" => *section = Section::Text,
        ".data" | ".rodata" | ".bss" => *section = Section::Data,
        ".section" => {
            let name = rest.split([',', ' ']).next().unwrap_or("");
            *section = if name.contains("text") { Section::Text } else { Section::Data };
        }
        ".align" | ".p2align" => {
            // RISC-V GAS: .align N aligns to 2^N bytes.  Alignment only
            // affects the data segment; code is index-addressed.
            let n: u32 = rest.split(',').next().unwrap_or("0").trim().parse().unwrap_or(0);
            align_data(data_cursor, 1u64 << n.min(12), pending_data, lineno);
        }
        ".balign" => {
            let align: u64 = rest.split(',').next().unwrap_or("1").trim().parse().unwrap_or(1);
            align_data(data_cursor, align, pending_data, lineno);
        }
        ".byte" | ".hword" | ".half" | ".2byte" | ".word" | ".4byte" | ".dword" | ".8byte" => {
            let elem_size = match head {
                ".byte" => 1,
                ".hword" | ".half" | ".2byte" => 2,
                ".dword" | ".8byte" => 8,
                _ => 4,
            };
            // Natural alignment, as the hardware (and the paper's examples) expect.
            align_data(data_cursor, elem_size as u64, pending_data, lineno);
            let label = bind_data_labels(*data_cursor, symbols, errors);
            let exprs: Vec<String> = split_operands(rest).into_iter().collect();
            let count = exprs.len().max(1);
            pending_data.push(PendingData::Numeric {
                offset: *data_cursor,
                elem_size,
                exprs,
                label,
                line: lineno,
            });
            *data_cursor += (count * elem_size) as u64;
        }
        ".float" | ".double" => {
            let elem_size = if head == ".float" { 4 } else { 8 };
            align_data(data_cursor, elem_size as u64, pending_data, lineno);
            let label = bind_data_labels(*data_cursor, symbols, errors);
            let mut bytes = Vec::new();
            for part in split_operands(rest) {
                if head == ".float" {
                    match part.parse::<f32>() {
                        Ok(v) => bytes.extend_from_slice(&v.to_le_bytes()),
                        Err(_) => errors.push(AsmError::new(lineno, format!("bad float `{part}`"))),
                    }
                } else {
                    match part.parse::<f64>() {
                        Ok(v) => bytes.extend_from_slice(&v.to_le_bytes()),
                        Err(_) => {
                            errors.push(AsmError::new(lineno, format!("bad double `{part}`")))
                        }
                    }
                }
            }
            let len = bytes.len() as u64;
            pending_data.push(PendingData::Bytes {
                offset: *data_cursor,
                bytes,
                label,
                line: lineno,
            });
            *data_cursor += len;
        }
        ".ascii" | ".asciiz" | ".string" => {
            let label = bind_data_labels(*data_cursor, symbols, errors);
            match parse_string_literal(rest, lineno) {
                Ok(mut bytes) => {
                    if head != ".ascii" {
                        bytes.push(0); // null terminated
                    }
                    let len = bytes.len() as u64;
                    pending_data.push(PendingData::Bytes {
                        offset: *data_cursor,
                        bytes,
                        label,
                        line: lineno,
                    });
                    *data_cursor += len;
                }
                Err(e) => errors.push(e),
            }
        }
        ".skip" | ".zero" | ".space" => {
            let label = bind_data_labels(*data_cursor, symbols, errors);
            let n: u64 = rest.split(',').next().unwrap_or("0").trim().parse().unwrap_or(0);
            pending_data.push(PendingData::Bytes {
                offset: *data_cursor,
                bytes: vec![0u8; n as usize],
                label,
                line: lineno,
            });
            *data_cursor += n;
        }
        _ if IGNORED_DIRECTIVES.contains(&head) => {}
        _ => {
            errors.push(AsmError::new(lineno, format!("unknown directive `{head}`")));
        }
    }
}

fn evaluate_data_expr(text: &str, symbols: &HashMap<String, i64>) -> Result<i64, String> {
    expr::evaluate(text, symbols)
}

fn resolve_operands(
    descriptor: &InstructionDescriptor,
    operand_texts: &[String],
    address: u64,
    symbols: &HashMap<String, i64>,
) -> Result<Vec<Operand>, String> {
    // Memory instructions use the `value, offset(base)` syntax: two textual
    // operands map onto three descriptor arguments.
    let texts: Vec<String> = if descriptor.is_memory() && operand_texts.len() == 2 {
        let (offset, base) = split_memory_operand(&operand_texts[1])?;
        vec![operand_texts[0].clone(), offset, base]
    } else {
        operand_texts.to_vec()
    };

    if texts.len() != descriptor.arguments.len() {
        return Err(format!(
            "`{}` expects {} operands, got {}",
            descriptor.name,
            descriptor.arguments.len(),
            texts.len()
        ));
    }

    let pc_relative = descriptor.target.as_deref().map(|t| t.contains("\\pc")).unwrap_or(false);

    let mut operands = Vec::with_capacity(texts.len());
    for (arg, text) in descriptor.arguments.iter().zip(&texts) {
        match arg.kind {
            ArgKind::IntReg | ArgKind::FpReg => {
                let reg =
                    RegisterId::parse(text).ok_or_else(|| format!("`{text}` is not a register"))?;
                let expects_fp = arg.kind == ArgKind::FpReg;
                let is_fp = reg.kind == rvsim_isa::RegisterFileKind::Fp;
                if expects_fp != is_fp {
                    return Err(format!(
                        "operand `{text}` of `{}` must be a {} register",
                        descriptor.name,
                        if expects_fp { "floating-point" } else { "integer" }
                    ));
                }
                operands.push(Operand::Register(reg));
            }
            ArgKind::Imm | ArgKind::Label => {
                let value = expr::evaluate(text, symbols)
                    .map_err(|e| format!("in operand `{text}`: {e}"))?;
                let value = if arg.kind == ArgKind::Label && pc_relative {
                    // Symbolic targets become PC-relative offsets; numeric
                    // literals are taken as already-relative offsets.
                    if text.trim().parse::<i64>().is_ok() {
                        value
                    } else {
                        value - address as i64
                    }
                } else {
                    value
                };
                check_imm_range(descriptor, arg.name.as_str(), value)?;
                operands.push(Operand::Immediate(value));
            }
        }
    }
    Ok(operands)
}

fn split_memory_operand(text: &str) -> Result<(String, String), String> {
    let text = text.trim();
    let open = text
        .rfind('(')
        .ok_or_else(|| format!("memory operand `{text}` must look like `offset(base)`"))?;
    if !text.ends_with(')') {
        return Err(format!("memory operand `{text}` missing `)`"));
    }
    let offset = text[..open].trim();
    let base = text[open + 1..text.len() - 1].trim();
    let offset = if offset.is_empty() { "0" } else { offset };
    Ok((offset.to_string(), base.to_string()))
}

fn check_imm_range(
    descriptor: &InstructionDescriptor,
    arg: &str,
    value: i64,
) -> Result<(), String> {
    let name = descriptor.name.as_str();
    // U-type instructions take a 20-bit immediate.
    if (name == "lui" || name == "auipc") && arg == "imm" {
        if !(0..=0xfffff).contains(&value) {
            return Err(format!("`{name}` immediate {value} outside 0..0xFFFFF"));
        }
        return Ok(());
    }
    // I-type arithmetic and memory offsets are 12-bit signed.
    let is_itype_imm = arg == "imm"
        && (descriptor.is_memory()
            || matches!(name, "addi" | "andi" | "ori" | "xori" | "slti" | "sltiu" | "jalr"));
    if is_itype_imm && !(-2048..=2047).contains(&value) {
        return Err(format!("`{name}` immediate {value} outside -2048..2047"));
    }
    // Shift amounts are 5-bit.
    if matches!(name, "slli" | "srli" | "srai") && arg == "imm" && !(0..=31).contains(&value) {
        return Err(format!("`{name}` shift amount {value} outside 0..31"));
    }
    // Branch and jump ranges (generous; programs are index-addressed).
    if descriptor.is_conditional_branch() && arg == "imm" && !(-4096..=4095).contains(&value) {
        return Err(format!("branch offset {value} outside ±4 KiB"));
    }
    if name == "jal" && arg == "imm" && !(-(1 << 20)..=(1 << 20) - 1).contains(&value) {
        return Err(format!("jal offset {value} outside ±1 MiB"));
    }
    Ok(())
}

/// Remove compiler noise from generated assembly (the paper's output filter):
/// unneeded directives, empty lines and unreferenced local labels.
pub fn filter_assembly(text: &str) -> String {
    const NOISE: &[&str] = &[
        ".file",
        ".ident",
        ".option",
        ".attribute",
        ".type",
        ".size",
        ".globl",
        ".global",
        ".addrsig",
        ".addrsig_sym",
        ".cfi_startproc",
        ".cfi_endproc",
        ".cfi_def_cfa_offset",
        ".cfi_offset",
        ".cfi_restore",
        ".local",
        ".comm",
    ];
    let mut out: Vec<&str> = Vec::new();
    let mut last_blank = false;
    for raw in text.lines() {
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            if !last_blank && !out.is_empty() {
                out.push("");
                last_blank = true;
            }
            continue;
        }
        let head = trimmed.split_whitespace().next().unwrap_or("");
        if NOISE.contains(&head) {
            continue;
        }
        out.push(raw.trim_end());
        last_blank = false;
    }
    while out.last() == Some(&"") {
        out.pop();
    }
    let mut s = out.join("\n");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::RegisterFileKind;

    fn isa() -> InstructionSet {
        InstructionSet::rv32imf()
    }

    fn ok(source: &str) -> Program {
        assemble(source, &isa(), &AssemblerOptions::default()).expect("program assembles")
    }

    fn err(source: &str) -> Vec<AsmError> {
        assemble(source, &isa(), &AssemblerOptions::default())
            .expect_err("program must not assemble")
    }

    #[test]
    fn simple_program_assembles() {
        let p = ok("main:\n  li a0, 5\n  addi a0, a0, 1\n  ret\n");
        assert_eq!(p.len(), 3);
        assert_eq!(p.instructions[0].mnemonic, "addi"); // li expanded
        assert_eq!(p.instructions[0].imm(2), Some(5));
        assert_eq!(p.instructions[2].mnemonic, "jalr"); // ret expanded
        assert_eq!(p.entry_point, 0);
        assert_eq!(p.symbol("main"), Some(0));
    }

    #[test]
    fn labels_and_branches_become_relative() {
        let p = ok("main:\n  li t0, 0\nloop:\n  addi t0, t0, 1\n  blt t0, t1, loop\n  j end\nend:\n  ret\n");
        // Instruction 2 is `blt t0, t1, loop`; loop is instruction 1 (addr 4),
        // blt is at addr 8, so offset -4.
        let blt = &p.instructions[2];
        assert_eq!(blt.mnemonic, "blt");
        assert_eq!(blt.imm(2), Some(-4));
        // `j end` is jal x0, end: end at 16, j at 12 -> +4.
        let j = &p.instructions[3];
        assert_eq!(j.mnemonic, "jal");
        assert_eq!(j.imm(1), Some(4));
    }

    #[test]
    fn forward_references_resolve() {
        let p = ok("main:\n  beq x0, x0, done\n  addi a0, a0, 1\ndone:\n  ret\n");
        assert_eq!(p.instructions[0].imm(2), Some(8));
    }

    #[test]
    fn memory_operands_split_offset_and_base() {
        let p = ok("main:\n  lw a0, 8(sp)\n  sw a0, -4(s0)\n  flw fa0, 0(a1)\n  ret\n");
        let lw = &p.instructions[0];
        assert_eq!(lw.reg(0), Some(RegisterId::x(10)));
        assert_eq!(lw.imm(1), Some(8));
        assert_eq!(lw.reg(2), Some(RegisterId::sp()));
        let sw = &p.instructions[1];
        assert_eq!(sw.imm(1), Some(-4));
        assert_eq!(sw.reg(2), Some(RegisterId::x(8)));
        let flw = &p.instructions[2];
        assert_eq!(flw.reg(0).unwrap().kind, RegisterFileKind::Fp);
    }

    #[test]
    fn paper_listing2_memory_definitions() {
        // Listing 2 from the paper.
        let src = "
x:
    .word 5             # integer variable x

    .align 4
arr:
    .zero 64            # 64 bytes with 16B alignment

hello:
    .asciiz \"Hello World\"

main:
    la a0, arr
    lw a1, 0(a0)
    ret
";
        let p = ok(src);
        let base = AssemblerOptions::default().data_base;
        assert_eq!(p.symbol("x"), Some(base as i64));
        let arr = p.symbol("arr").unwrap() as u64;
        assert_eq!(arr % 16, 0, "arr must be 16-byte aligned");
        assert!(arr >= base + 4);
        let hello = p.symbol("hello").unwrap() as u64;
        assert_eq!(hello, arr + 64);
        // The hello string is null-terminated.
        let item = p.data.iter().find(|d| d.label.as_deref() == Some("hello")).unwrap();
        assert_eq!(item.bytes, b"Hello World\0");
        // la expands to lui+addi with %hi/%lo of arr.
        assert_eq!(p.instructions[0].mnemonic, "lui");
        assert_eq!(p.instructions[1].mnemonic, "addi");
        let hi = p.instructions[0].imm(1).unwrap();
        let lo = p.instructions[1].imm(2).unwrap();
        assert_eq!((hi << 12) + lo, arr as i64);
    }

    #[test]
    fn word_directive_accepts_label_arithmetic() {
        let src = "
arr:
    .word 1, 2, 3, 4
ptr:
    .word arr+8
main:
    ret
";
        let p = ok(src);
        let arr = p.symbol("arr").unwrap();
        let ptr_item = p.data.iter().find(|d| d.label.as_deref() == Some("ptr")).unwrap();
        let value = u32::from_le_bytes(ptr_item.bytes[0..4].try_into().unwrap()) as i64;
        assert_eq!(value, arr + 8);
    }

    #[test]
    fn byte_and_half_directives() {
        let p = ok("vals:\n .byte 1, 2, 255\nhalves:\n .hword 0x1234, -1\nmain:\n ret\n");
        let vals = p.data.iter().find(|d| d.label.as_deref() == Some("vals")).unwrap();
        assert_eq!(vals.bytes, vec![1, 2, 255]);
        let halves = p.data.iter().find(|d| d.label.as_deref() == Some("halves")).unwrap();
        assert_eq!(halves.bytes, vec![0x34, 0x12, 0xff, 0xff]);
        assert_eq!(halves.address % 2, 0);
    }

    #[test]
    fn float_directive() {
        let p = ok("f:\n .float 1.5, -2.0\nmain:\n ret\n");
        let f = p.data.iter().find(|d| d.label.as_deref() == Some("f")).unwrap();
        assert_eq!(&f.bytes[0..4], &1.5f32.to_le_bytes());
        assert_eq!(&f.bytes[4..8], &(-2.0f32).to_le_bytes());
    }

    #[test]
    fn entry_label_option_and_default() {
        let src = "start:\n  addi a0, x0, 1\nmain:\n  addi a0, x0, 2\n  ret\n";
        let p = ok(src);
        assert_eq!(p.entry_point, 4, "defaults to main");
        let opts = AssemblerOptions { entry_label: Some("start".into()), ..Default::default() };
        let p = assemble(src, &isa(), &opts).unwrap();
        assert_eq!(p.entry_point, 0);
        let opts = AssemblerOptions { entry_label: Some("nope".into()), ..Default::default() };
        assert!(assemble(src, &isa(), &opts).is_err());
    }

    #[test]
    fn unknown_instruction_reports_line() {
        let errors = err("main:\n  addx a0, a1, a2\n  ret\n");
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 2);
        assert!(errors[0].message.contains("addx"));
    }

    #[test]
    fn wrong_operand_kind_or_count() {
        let errors = err("main:\n  add a0, a1\n  ret\n");
        assert!(errors[0].message.contains("expects 3 operands"));
        let errors = err("main:\n  add a0, a1, fa0\n  ret\n");
        assert!(errors[0].message.contains("integer register"));
        let errors = err("main:\n  fadd.s fa0, fa1, a0\n  ret\n");
        assert!(errors[0].message.contains("floating-point"));
        let errors = err("main:\n  addi a0, a1, 5000\n  ret\n");
        assert!(errors[0].message.contains("outside -2048..2047"));
        let errors = err("main:\n  slli a0, a1, 33\n  ret\n");
        assert!(errors[0].message.contains("shift amount"));
    }

    #[test]
    fn duplicate_and_invalid_labels() {
        let errors = err("a:\n a:\n  ret\n");
        assert!(errors.iter().any(|e| e.message.contains("duplicate label")));
        let errors = err("main:\n  beq x0, x0, nowhere\n  ret\n");
        assert!(errors.iter().any(|e| e.message.contains("undefined symbol")));
    }

    #[test]
    fn instruction_in_data_section_rejected() {
        let errors = err(".data\n  addi a0, a0, 1\n");
        assert!(errors[0].message.contains("instruction in data section"));
    }

    #[test]
    fn empty_program_rejected() {
        let errors = err("# just a comment\n");
        assert!(errors[0].message.contains("no instructions"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = ok("# header\nmain: # entry\n  addi a0, x0, 1 // one\n\n  ret\n");
        assert_eq!(p.len(), 2);
        assert_eq!(p.instructions[0].source_line, 3);
    }

    #[test]
    fn gcc_noise_directives_are_ignored() {
        let src = "\t.file\t\"t.c\"\n\t.option nopic\n\t.attribute arch, \"rv32i\"\n\t.text\n\t.globl\tmain\n\t.type\tmain, @function\nmain:\n\taddi\ta0,x0,3\n\tret\n\t.size\tmain, .-main\n\t.ident\t\"GCC\"\n";
        let p = ok(src);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn source_lines_recorded_for_editor_links() {
        let p = ok("main:\n  li a0, 100000\n  ret\n");
        // li expands to two instructions, both attributed to line 2.
        assert_eq!(p.instructions[0].source_line, 2);
        assert_eq!(p.instructions[1].source_line, 2);
        assert_eq!(p.instructions[2].source_line, 3);
        assert_eq!(p.instructions[0].mnemonic, "lui");
    }

    #[test]
    fn data_end_reflects_allocation() {
        let p = ok("arr:\n .zero 64\nmain:\n ret\n");
        assert_eq!(p.data_end, AssemblerOptions::default().data_base + 64);
    }

    #[test]
    fn filter_removes_noise_and_keeps_code() {
        let src = "\t.file\t\"t.c\"\n\t.globl\tmain\nmain:\n\taddi a0,x0,1 # one\n\n\n\tret\n\t.size\tmain, .-main\n";
        let filtered = filter_assembly(src);
        assert!(!filtered.contains(".file"));
        assert!(!filtered.contains(".globl"));
        assert!(!filtered.contains(".size"));
        assert!(filtered.contains("main:"));
        assert!(filtered.contains("addi a0,x0,1"));
        assert!(!filtered.contains("\n\n\n"), "blank runs collapsed");
    }

    #[test]
    fn split_operands_respects_parens() {
        assert_eq!(split_operands("a0, 8(sp), 3"), vec!["a0", "8(sp)", "3"]);
        assert_eq!(split_operands("a0, %lo(arr+4)(a1)"), vec!["a0", "%lo(arr+4)(a1)"]);
        assert_eq!(split_operands(""), Vec::<String>::new());
    }

    #[test]
    fn memory_operand_with_relocation() {
        let p = ok("arr:\n .word 1,2,3\nmain:\n  lui a1, %hi(arr)\n  lw a0, %lo(arr)(a1)\n  ret\n");
        let lw = &p.instructions[1];
        let arr = p.symbol("arr").unwrap();
        let hi = p.instructions[0].imm(1).unwrap();
        assert_eq!((hi << 12) + lw.imm(1).unwrap(), arr);
    }
}
