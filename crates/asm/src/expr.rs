//! Operand expression evaluation (paper §III-C).
//!
//! The compiler frequently emits arithmetic in instruction arguments
//! (`lla x4, arr+64`), and pseudo-instruction expansion introduces
//! `%hi(...)` / `%lo(...)` relocations.  This module evaluates such
//! expressions once all label values are known (i.e. in the second pass,
//! after memory allocation).
//!
//! Grammar (additive expressions are all the compiler generates):
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := integer | symbol | '%hi' '(' expr ')' | '%lo' '(' expr ')'
//!         | '(' expr ')' | '-' term
//! ```

use std::collections::HashMap;

/// Evaluate an operand expression against a symbol table.
pub fn evaluate(expr: &str, symbols: &HashMap<String, i64>) -> Result<i64, String> {
    let mut parser = Parser { input: expr, pos: 0, symbols };
    let value = parser.parse_expr()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(format!("unexpected trailing input in `{expr}`"));
    }
    Ok(value)
}

/// `%hi(value)`: upper 20 bits, rounded so that `(hi << 12) + lo == value`
/// with a signed 12-bit `lo`.
pub fn hi20(value: i64) -> i64 {
    ((value + 0x800) >> 12) & 0xfffff
}

/// `%lo(value)`: signed low 12 bits.
pub fn lo12(value: i64) -> i64 {
    let lo = value & 0xfff;
    if lo >= 0x800 {
        lo - 0x1000
    } else {
        lo
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    symbols: &'a HashMap<String, i64>,
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, prefix: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn parse_expr(&mut self) -> Result<i64, String> {
        let mut value = self.parse_term()?;
        loop {
            if self.eat("+") {
                value += self.parse_term()?;
            } else if self.eat("-") {
                value -= self.parse_term()?;
            } else {
                break;
            }
        }
        Ok(value)
    }

    fn parse_term(&mut self) -> Result<i64, String> {
        self.skip_ws();
        if self.eat("%hi") {
            if !self.eat("(") {
                return Err("expected `(` after %hi".to_string());
            }
            let inner = self.parse_expr()?;
            if !self.eat(")") {
                return Err("missing `)` after %hi expression".to_string());
            }
            return Ok(hi20(inner));
        }
        if self.eat("%lo") {
            if !self.eat("(") {
                return Err("expected `(` after %lo".to_string());
            }
            let inner = self.parse_expr()?;
            if !self.eat(")") {
                return Err("missing `)` after %lo expression".to_string());
            }
            return Ok(lo12(inner));
        }
        if self.eat("(") {
            let inner = self.parse_expr()?;
            if !self.eat(")") {
                return Err("missing `)`".to_string());
            }
            return Ok(inner);
        }
        if self.eat("-") {
            return Ok(-self.parse_term()?);
        }
        self.skip_ws();
        let rest = self.rest();
        if rest.is_empty() {
            return Err("unexpected end of expression".to_string());
        }
        // Number literal (decimal, hex, binary) or character literal.
        let first = rest.chars().next().unwrap();
        if first == '\'' {
            // 'a' or '\n'
            let mut chars = rest.chars();
            chars.next();
            let (value, consumed) = match chars.next() {
                Some('\\') => {
                    let esc = chars.next().ok_or("unterminated character literal")?;
                    let v = match esc {
                        'n' => b'\n',
                        't' => b'\t',
                        '0' => 0,
                        '\\' => b'\\',
                        '\'' => b'\'',
                        other => return Err(format!("unknown escape `\\{other}`")),
                    };
                    (v as i64, 4)
                }
                Some(c) => (c as i64, 3),
                None => return Err("unterminated character literal".to_string()),
            };
            if !rest[consumed - 1..].starts_with('\'') {
                return Err("unterminated character literal".to_string());
            }
            self.pos += consumed;
            return Ok(value);
        }
        if first.is_ascii_digit() {
            let end = rest
                .char_indices()
                .find(|(_, c)| !c.is_ascii_alphanumeric() && *c != '_')
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let text = &rest[..end];
            let value = parse_number(text).ok_or_else(|| format!("bad number `{text}`"))?;
            self.pos += end;
            return Ok(value);
        }
        if first.is_ascii_alphabetic() || first == '_' || first == '.' {
            let end = rest
                .char_indices()
                .find(|(_, c)| !c.is_ascii_alphanumeric() && *c != '_' && *c != '.' && *c != '$')
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let name = &rest[..end];
            self.pos += end;
            return self
                .symbols
                .get(name)
                .copied()
                .ok_or_else(|| format!("undefined symbol `{name}`"));
        }
        Err(format!("unexpected character `{first}` in expression"))
    }
}

/// Parse a decimal / hex (`0x`) / binary (`0b`) unsigned literal.
fn parse_number(text: &str) -> Option<i64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = text.strip_prefix("0b").or_else(|| text.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()
    } else {
        text.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols() -> HashMap<String, i64> {
        let mut s = HashMap::new();
        s.insert("arr".to_string(), 0x1000);
        s.insert("x".to_string(), 20);
        s.insert(".L2".to_string(), 64);
        s
    }

    #[test]
    fn plain_numbers() {
        let s = HashMap::new();
        assert_eq!(evaluate("42", &s).unwrap(), 42);
        assert_eq!(evaluate("-42", &s).unwrap(), -42);
        assert_eq!(evaluate("0x10", &s).unwrap(), 16);
        assert_eq!(evaluate("0b1010", &s).unwrap(), 10);
        assert_eq!(evaluate("  7 ", &s).unwrap(), 7);
    }

    #[test]
    fn symbol_arithmetic() {
        let s = symbols();
        assert_eq!(evaluate("arr", &s).unwrap(), 0x1000);
        assert_eq!(evaluate("arr+64", &s).unwrap(), 0x1040);
        assert_eq!(evaluate("arr + 64", &s).unwrap(), 0x1040);
        assert_eq!(evaluate("arr-4", &s).unwrap(), 0xffc);
        assert_eq!(evaluate("arr+x-4", &s).unwrap(), 0x1010);
        assert_eq!(evaluate(".L2", &s).unwrap(), 64);
        assert_eq!(evaluate("(arr+4)-(x)", &s).unwrap(), 0x1004 - 20);
    }

    #[test]
    fn character_literals() {
        let s = HashMap::new();
        assert_eq!(evaluate("'a'", &s).unwrap(), 97);
        assert_eq!(evaluate("'\\n'", &s).unwrap(), 10);
        assert_eq!(evaluate("'0'", &s).unwrap(), 48);
    }

    #[test]
    fn hi_lo_relocations_compose() {
        let s = symbols();
        for value in [0i64, 4, 0x800, 0xfff, 0x1000, 0x12345678, 0x7ffff800, 0x7fffffff] {
            let hi = hi20(value);
            let lo = lo12(value);
            assert_eq!((hi << 12) + lo, value, "hi/lo must recompose 0x{value:x}");
            assert!((-2048..=2047).contains(&lo), "lo12 out of range for 0x{value:x}");
        }
        assert_eq!(evaluate("%hi(arr)", &s).unwrap(), 1);
        assert_eq!(evaluate("%lo(arr)", &s).unwrap(), 0);
        assert_eq!(evaluate("%lo(arr+8)", &s).unwrap(), 8);
    }

    #[test]
    fn undefined_symbol_is_error() {
        let s = symbols();
        let err = evaluate("missing+4", &s).unwrap_err();
        assert!(err.contains("missing"));
    }

    #[test]
    fn malformed_expressions_error() {
        let s = symbols();
        assert!(evaluate("", &s).is_err());
        assert!(evaluate("arr+", &s).is_err());
        assert!(evaluate("%hi arr", &s).is_err());
        assert!(evaluate("%hi(arr", &s).is_err());
        assert!(evaluate("(arr", &s).is_err());
        assert!(evaluate("arr 4", &s).is_err());
        assert!(evaluate("@", &s).is_err());
    }
}
