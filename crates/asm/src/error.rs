//! Assembler error type with source-line attribution (used for the editor's
//! error highlighting, Fig. 7).

use std::fmt;

/// An assembly error located at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number (0 when the error is not line-specific).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl AsmError {
    /// Create an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError { line, message: message.into() }
    }

    /// Create an error that is not attached to a specific line.
    pub fn global(message: impl Into<String>) -> Self {
        AsmError { line: 0, message: message.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(12, "unknown instruction `adx`");
        assert_eq!(e.to_string(), "line 12: unknown instruction `adx`");
        let g = AsmError::global("empty program");
        assert_eq!(g.to_string(), "assembly error: empty program");
    }
}
