//! Property-based tests of the assembler and its operand-expression
//! evaluator: arbitrary data values and label arithmetic must survive the
//! two-pass round trip intact.

use proptest::prelude::*;
use rvsim_asm::{assemble, AssemblerOptions};
use rvsim_isa::InstructionSet;
use std::collections::HashMap;

fn isa() -> InstructionSet {
    InstructionSet::rv32imf()
}

#[test]
fn extra_symbols_are_visible_to_programs() {
    let mut options = AssemblerOptions::default();
    options.extra_symbols.insert("external_buffer".to_string(), 0x2000);
    let program = assemble(
        "main:\n  lui a0, %hi(external_buffer)\n  addi a0, a0, %lo(external_buffer)\n  ret\n",
        &isa(),
        &options,
    )
    .unwrap();
    let hi = program.instructions[0].imm(1).unwrap();
    let lo = program.instructions[1].imm(2).unwrap();
    assert_eq!((hi << 12) + lo, 0x2000);
}

#[test]
fn listing2_alignment_is_stable_for_any_data_base() {
    for data_base in [0x1000u64, 0x2000, 0x4000, 0x10000 - 0x800] {
        let options = AssemblerOptions { data_base, ..Default::default() };
        let program = assemble(
            "x:\n .word 5\n .align 4\narr:\n .zero 64\nhello:\n .asciiz \"Hi\"\nmain:\n ret\n",
            &isa(),
            &options,
        )
        .unwrap();
        let arr = program.symbol("arr").unwrap() as u64;
        assert_eq!(arr % 16, 0, "arr must stay 16-byte aligned for base 0x{data_base:x}");
        assert_eq!(program.symbol("hello").unwrap() as u64, arr + 64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary word values written with `.word` must appear verbatim in the
    /// data image, in order, at the label's address.
    #[test]
    fn prop_word_directive_round_trips(values in proptest::collection::vec(any::<i32>(), 1..20)) {
        let list = values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let source = format!("table:\n    .word {list}\nmain:\n    ret\n");
        let program = assemble(&source, &isa(), &AssemblerOptions::default()).unwrap();
        let item = program.data.iter().find(|d| d.label.as_deref() == Some("table")).unwrap();
        prop_assert_eq!(item.bytes.len(), values.len() * 4);
        for (i, v) in values.iter().enumerate() {
            let got = i32::from_le_bytes(item.bytes[i * 4..i * 4 + 4].try_into().unwrap());
            prop_assert_eq!(got, *v);
        }
    }

    /// Immediate arithmetic in operands follows ordinary integer arithmetic.
    #[test]
    fn prop_operand_expressions_evaluate(a in -500i64..500, b in 0i64..500) {
        let mut symbols = HashMap::new();
        symbols.insert("sym".to_string(), a);
        let value = rvsim_asm::expr::evaluate(&format!("sym+{b}"), &symbols).unwrap();
        prop_assert_eq!(value, a + b);
        let value = rvsim_asm::expr::evaluate(&format!("sym-{b}"), &symbols).unwrap();
        prop_assert_eq!(value, a - b);
        let hi = rvsim_asm::expr::hi20(a + b);
        let lo = rvsim_asm::expr::lo12(a + b);
        prop_assert_eq!((hi << 12) + lo, a + b);
    }

    /// Branch offsets are always the label address minus the branch address.
    #[test]
    fn prop_branch_offsets_are_pc_relative(pad in 0usize..12) {
        let nops = "    nop\n".repeat(pad);
        let source = format!("main:\n{nops}    beq x0, x0, target\n    nop\ntarget:\n    ret\n");
        let program = assemble(&source, &isa(), &AssemblerOptions::default()).unwrap();
        let branch = program.instructions.iter().find(|i| i.mnemonic == "beq").unwrap();
        let target = program.symbol("target").unwrap();
        prop_assert_eq!(branch.imm(2).unwrap(), target - branch.address as i64);
    }

    /// The assembler never panics on arbitrary printable input: it either
    /// produces a program or a list of errors.
    #[test]
    fn prop_assembler_never_panics(source in "[ -~\n]{0,200}") {
        let _ = assemble(&source, &isa(), &AssemblerOptions::default());
    }
}
