//! # rvsim-loadgen — closed-loop load generator
//!
//! Reproduces the paper's Apache JMeter load test (§IV-A, Table I): a number
//! of simulated users, a ramp-up period, a fixed think time between requests,
//! and 40 interactive simulation steps per user over one of two programs.
//! The report contains the median and 90th-percentile request latency plus
//! the throughput in transactions per second — the exact columns of Table I.
//!
//! A `time_scale` factor shrinks the ramp-up and think times so the same
//! scenario can run as a Criterion benchmark or a CI test in seconds instead
//! of minutes; the *shape* of the results (queueing at high user counts,
//! Docker overhead, gzip benefit) is unaffected because those effects come
//! from the per-request work and the worker pool, not from the think time.
//!
//! Two transports run the same scenario: the in-process worker pool
//! ([`run_load_test`], the original stand-in) and the real TCP/HTTP front
//! end ([`run_load_test_tcp`], one keep-alive connection per user through
//! `rvsim-net` — the `--tcp` mode).

#![warn(missing_docs)]

use polling::{Events, Interest, Poller};
use rvsim_obs::Histogram;
use rvsim_server::{Request, Response, ServerClient, ThreadedServer};
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-test scenario definition (the JMeter test plan).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of concurrent simulated users.
    pub users: usize,
    /// Interactive simulation steps each user performs.
    pub steps_per_user: usize,
    /// Ramp-up time over which users start (seconds, before scaling).
    pub ramp_up_seconds: f64,
    /// Think time between a user's requests (seconds, before scaling).
    pub think_time_seconds: f64,
    /// Programs users load (each user picks one round-robin).
    pub programs: Vec<String>,
    /// Scale factor applied to ramp-up and think times (1.0 = paper timing).
    pub time_scale: f64,
    /// Fetch the full processor snapshot after every step (the interactive
    /// GUI behaviour; this is what makes JSON dominate request time).
    pub fetch_state_each_step: bool,
    /// Use the delta protocol for state fetches: after the first snapshot,
    /// ask for `GetStateDelta` against the last seen cycle instead of the
    /// full state (the bandwidth-saving client behaviour).
    #[serde(default)]
    pub delta_state: bool,
}

impl Scenario {
    /// The paper's scenario: `users` users, 40 steps each, 4 s ramp-up,
    /// 1 s think time, two sample programs.
    pub fn paper(users: usize) -> Self {
        Scenario {
            users,
            steps_per_user: 40,
            ramp_up_seconds: 4.0,
            think_time_seconds: 1.0,
            programs: vec![sample_program_loop(), sample_program_memory()],
            time_scale: 1.0,
            fetch_state_each_step: true,
            delta_state: false,
        }
    }

    /// The paper's scenario compressed in time by `scale` (e.g. `0.01`).
    pub fn paper_scaled(users: usize, scale: f64) -> Self {
        Scenario { time_scale: scale, ..Self::paper(users) }
    }

    fn ramp_up(&self) -> Duration {
        Duration::from_secs_f64((self.ramp_up_seconds * self.time_scale).max(0.0))
    }

    fn think_time(&self) -> Duration {
        Duration::from_secs_f64((self.think_time_seconds * self.time_scale).max(0.0))
    }
}

/// First sample program: a tight arithmetic loop.
pub fn sample_program_loop() -> String {
    "
main:
    li   t0, 0
    li   t1, 64
    li   a0, 0
loop:
    addi a0, a0, 3
    xor  t2, a0, t1
    add  t0, t0, t2
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
"
    .to_string()
}

/// Second sample program: strided memory accesses through the cache.
pub fn sample_program_memory() -> String {
    "
buf:
    .zero 512
main:
    la   t0, buf
    li   t1, 128
    li   a0, 0
loop:
    sw   t1, 0(t0)
    lw   t2, 0(t0)
    add  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
"
    .to_string()
}

/// Result of one load-test run (one row of Table I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadTestReport {
    /// Number of users.
    pub users: usize,
    /// Completed transactions (requests).
    pub transactions: u64,
    /// Failed requests.
    pub errors: u64,
    /// Median request latency in milliseconds.
    pub median_latency_ms: f64,
    /// 90th-percentile request latency in milliseconds.
    pub p90_latency_ms: f64,
    /// 99th-percentile request latency in milliseconds (histogram estimate).
    #[serde(default)]
    pub p99_latency_ms: f64,
    /// Maximum request latency in milliseconds.
    #[serde(default)]
    pub max_latency_ms: f64,
    /// Mean request latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Throughput in transactions per second.
    pub throughput_tps: f64,
    /// Wall-clock duration of the whole test in seconds.
    pub duration_seconds: f64,
}

impl LoadTestReport {
    /// Format the report as a Table-I-style row.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<10} {:>5} users  median {:>8.2} ms  p90 {:>8.2} ms  p99 {:>8.2} ms  max {:>8.2} ms  throughput {:>7.2} trans/s  ({} transactions, {} errors)",
            self.users, self.median_latency_ms, self.p90_latency_ms, self.p99_latency_ms, self.max_latency_ms, self.throughput_tps, self.transactions, self.errors
        )
    }
}

/// Exact rank-selection percentile over a sorted sample.  The Table-I
/// columns (median, p90) keep this exact form so the paper comparison and
/// the committed benchmark baselines stay method-stable; the tail columns
/// (p99, max) and the fan-out / high-connection paths come from the shared
/// `rvsim-obs` histogram instead.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run a scenario against a running [`ThreadedServer`] (the in-process
/// transport).
pub fn run_load_test(server: &ThreadedServer, scenario: &Scenario) -> LoadTestReport {
    run_load_test_with(scenario, |_user| {
        let client: ServerClient = server.client();
        move |request: &Request| client.call(request)
    })
}

/// Run a scenario against a TCP/HTTP front end (`rvsim-net`) at `addr`: the
/// `--tcp` transport.  Every user owns one keep-alive connection, exactly
/// like a browser tab talking to the paper's Undertow deployment.
pub fn run_load_test_tcp(addr: SocketAddr, scenario: &Scenario) -> LoadTestReport {
    run_load_test_with(scenario, move |_user| {
        let mut client = rvsim_net::TcpApiClient::new(addr);
        move |request: &Request| client.call(request)
    })
}

/// Transport-generic scenario driver: `make_client` builds one transport
/// closure per user (moved into the user's thread).
pub fn run_load_test_with<C>(
    scenario: &Scenario,
    make_client: impl Fn(usize) -> C,
) -> LoadTestReport
where
    C: FnMut(&Request) -> Result<Response, String> + Send + 'static,
{
    let started = Instant::now();
    let ramp_up = scenario.ramp_up();
    let think = scenario.think_time();
    let users = scenario.users.max(1);
    // Every user thread records into one lock-free histogram; its exact
    // count/sum/max back the report's transaction count, p99 and max.
    let hist = Arc::new(Histogram::new());

    let mut handles = Vec::with_capacity(users);
    for user in 0..users {
        let mut call = make_client(user);
        let hist = Arc::clone(&hist);
        let program = scenario.programs[user % scenario.programs.len().max(1)].clone();
        let steps = scenario.steps_per_user;
        let fetch_state = scenario.fetch_state_each_step;
        let delta_state = scenario.delta_state;
        let start_delay = if users > 1 {
            ramp_up.mul_f64(user as f64 / (users - 1) as f64)
        } else {
            Duration::ZERO
        };
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(steps * 2 + 1);
            let mut errors = 0u64;
            std::thread::sleep(start_delay);

            let mut timed_call = |request: &Request| -> Option<Response> {
                let t0 = Instant::now();
                let result = call(request);
                let elapsed = t0.elapsed();
                latencies.push(elapsed.as_secs_f64() * 1e3);
                hist.record(elapsed.as_micros() as u64);
                match result {
                    Ok(response) if !response.is_error() => Some(response),
                    _ => {
                        errors += 1;
                        None
                    }
                }
            };

            let session = match timed_call(&Request::CreateSession {
                program,
                architecture: None,
                entry: None,
                session: None,
            }) {
                Some(Response::SessionCreated { session }) => session,
                _ => return (latencies, errors),
            };
            let mut seen_cycle: Option<u64> = None;
            for _ in 0..steps {
                timed_call(&Request::Step { session, cycles: 1 });
                if fetch_state {
                    let request = match (delta_state, seen_cycle) {
                        (true, Some(since_cycle)) => {
                            Request::GetStateDelta { session, since_cycle }
                        }
                        // First fetch in delta mode: ask for a delta against
                        // a cycle the server cannot have, receiving the full
                        // snapshot fallback (which also seeds the base).
                        (true, None) => Request::GetStateDelta { session, since_cycle: u64::MAX },
                        (false, _) => Request::GetState { session },
                    };
                    match timed_call(&request) {
                        Some(Response::State(snapshot)) => seen_cycle = Some(snapshot.cycle),
                        Some(Response::StateDelta(delta)) => seen_cycle = Some(delta.cycle),
                        _ => seen_cycle = None,
                    }
                }
                if !think.is_zero() {
                    std::thread::sleep(think);
                }
            }
            timed_call(&Request::DestroySession { session });
            (latencies, errors)
        }));
    }

    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    for handle in handles {
        let (user_latencies, user_errors) = handle.join().expect("load-test user thread panicked");
        latencies.extend(user_latencies);
        errors += user_errors;
    }
    let duration = started.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let transactions = latencies.len() as u64;
    let snapshot = hist.snapshot();
    LoadTestReport {
        users: scenario.users,
        transactions,
        errors,
        median_latency_ms: percentile(&latencies, 0.5),
        p90_latency_ms: percentile(&latencies, 0.9),
        p99_latency_ms: snapshot.p99_us() / 1e3,
        max_latency_ms: snapshot.max_us() as f64 / 1e3,
        mean_latency_ms: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        throughput_tps: if duration > 0.0 { transactions as f64 / duration } else { 0.0 },
        duration_seconds: duration,
    }
}

// ---------------------------------------------------------------------------
// Cached-GetState fan-out: saturate one or many front ends from closed-loop
// client threads (the multi-node scaling measurement).
// ---------------------------------------------------------------------------

/// Result of a [`run_cached_state_fanout`] or [`run_step_load`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutReport {
    /// Completed requests across all targets and threads.
    pub requests: u64,
    /// Failed requests (transport failures or protocol errors).
    pub errors: u64,
    /// Errors bucketed by elapsed second since the run started.  Under a
    /// fault-injection run this is the shape that matters: a burst in one
    /// or two buckets followed by zeros means the breaker opened and
    /// failover took over; errors smeared across every bucket mean it
    /// did not.
    #[serde(default)]
    pub errors_by_second: Vec<u64>,
    /// Wall-clock duration of the measurement in seconds.
    pub wall_seconds: f64,
    /// Median latency of successful requests in milliseconds (histogram
    /// estimate).
    #[serde(default)]
    pub median_latency_ms: f64,
    /// 99th-percentile latency of successful requests in milliseconds
    /// (histogram estimate).
    #[serde(default)]
    pub p99_latency_ms: f64,
    /// Maximum latency of a successful request in milliseconds.
    #[serde(default)]
    pub max_latency_ms: f64,
}

impl FanoutReport {
    /// Aggregate throughput in requests per second.
    pub fn rps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Failed fraction of all attempted requests (`0.0` when nothing ran).
    /// This is what an error budget is checked against.
    pub fn error_ratio(&self) -> f64 {
        let attempts = self.requests + self.errors;
        if attempts > 0 {
            self.errors as f64 / attempts as f64
        } else {
            0.0
        }
    }
}

/// Record `count` errors in the per-second bucket for `elapsed`.
fn bucket_errors(buckets: &mut Vec<u64>, started: Instant, count: u64) {
    let second = started.elapsed().as_secs() as usize;
    if buckets.len() <= second {
        buckets.resize(second + 1, 0);
    }
    buckets[second] += count;
}

/// Merge per-thread second buckets into `total` element-wise.
fn merge_buckets(total: &mut Vec<u64>, partial: &[u64]) {
    if total.len() < partial.len() {
        total.resize(partial.len(), 0);
    }
    for (sum, value) in total.iter_mut().zip(partial) {
        *sum += value;
    }
}

/// Pad the merged buckets with explicit zeros out to the full run length,
/// so "the errors stopped" is visible in the data rather than implied by a
/// short vector.
fn pad_buckets(total: &mut Vec<u64>, started: Instant) {
    let covered = started.elapsed().as_secs() as usize + 1;
    if total.len() < covered {
        total.resize(covered, 0);
    }
}

/// Saturate the cached-`GetState` serve path across one or more front ends:
/// `threads_per_target` closed-loop client threads per `(addr, sessions)`
/// target, each looping `GetState` over the warmed session ids on its own
/// keep-alive connection for `duration`.  The aggregate request count is the
/// multi-node scaling metric: with sessions pinned per node, adding nodes
/// multiplies the serve capacity.
pub fn run_cached_state_fanout(
    targets: &[(SocketAddr, Vec<u64>)],
    threads_per_target: usize,
    duration: Duration,
) -> FanoutReport {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hist = Arc::new(Histogram::new());
    let started = Instant::now();
    let mut threads = Vec::new();
    for &(addr, ref sessions) in targets {
        for offset in 0..threads_per_target.max(1) {
            let sessions = sessions.clone();
            let stop = std::sync::Arc::clone(&stop);
            let hist = Arc::clone(&hist);
            threads.push(std::thread::spawn(move || -> (u64, u64, Vec<u64>) {
                let mut client = rvsim_net::TcpApiClient::new(addr);
                // Pre-encode one request body per session and stay on the
                // wire: decoding every payload (LZSS + full snapshot JSON)
                // would make the *client* the bottleneck on small hosts and
                // mask the fleet's capacity — the very thing this measures.
                let bodies: Vec<Vec<u8>> = sessions
                    .iter()
                    .map(|&session| {
                        serde_json::to_vec(&Request::GetState { session })
                            .expect("request serializes")
                    })
                    .collect();
                let mut requests = 0u64;
                let mut errors = 0u64;
                let mut buckets: Vec<u64> = Vec::new();
                let mut index = offset; // spread threads across the sessions
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let body = &bodies[index % bodies.len().max(1)];
                    index = index.wrapping_add(1);
                    // An in-band error is a plain payload (flag byte 0)
                    // whose JSON leads with the serde tag `"type":"error"`.
                    let t0 = Instant::now();
                    match client.call_raw(body) {
                        Ok(payload)
                            if !(payload.first() == Some(&0)
                                && payload[1..].starts_with(br#"{"type":"error""#)) =>
                        {
                            requests += 1;
                            hist.record(t0.elapsed().as_micros() as u64);
                        }
                        _ => {
                            errors += 1;
                            bucket_errors(&mut buckets, started, 1);
                        }
                    }
                }
                (requests, errors, buckets)
            }));
        }
    }
    std::thread::sleep(duration);
    stop.store(true, std::sync::atomic::Ordering::Release);
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut errors_by_second: Vec<u64> = Vec::new();
    for thread in threads {
        let (r, e, buckets) = thread.join().expect("fan-out client thread panicked");
        requests += r;
        errors += e;
        merge_buckets(&mut errors_by_second, &buckets);
    }
    pad_buckets(&mut errors_by_second, started);
    let snapshot = hist.snapshot();
    FanoutReport {
        requests,
        errors,
        errors_by_second,
        wall_seconds: started.elapsed().as_secs_f64(),
        median_latency_ms: snapshot.p50_us() / 1e3,
        p99_latency_ms: snapshot.p99_us() / 1e3,
        max_latency_ms: snapshot.max_us() as f64 / 1e3,
    }
}

/// Closed-loop *stepping* load: `threads` clients round-robin
/// `Step {{ cycles: 1 }}` over the warmed `sessions` at `addr` for
/// `duration`.  Unlike the cached-`GetState` fan-out this load keeps every
/// session's state advancing, which is what a durability run needs: a
/// checkpointed session that failed over to another backend must keep
/// serving *and progressing*, and an error burst in
/// [`FanoutReport::errors_by_second`] shows exactly when clients felt the
/// crash.
pub fn run_step_load(
    addr: SocketAddr,
    sessions: &[u64],
    threads: usize,
    duration: Duration,
) -> FanoutReport {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hist = Arc::new(Histogram::new());
    let started = Instant::now();
    let mut handles = Vec::new();
    for offset in 0..threads.max(1) {
        let sessions = sessions.to_vec();
        let stop = std::sync::Arc::clone(&stop);
        let hist = Arc::clone(&hist);
        handles.push(std::thread::spawn(move || -> (u64, u64, Vec<u64>) {
            let mut client = rvsim_net::TcpApiClient::new(addr);
            let mut requests = 0u64;
            let mut errors = 0u64;
            let mut buckets: Vec<u64> = Vec::new();
            let mut index = offset;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let session = sessions[index % sessions.len().max(1)];
                index = index.wrapping_add(1);
                let t0 = Instant::now();
                match client.call(&Request::Step { session, cycles: 1 }) {
                    Ok(response) if !response.is_error() => {
                        requests += 1;
                        hist.record(t0.elapsed().as_micros() as u64);
                    }
                    _ => {
                        errors += 1;
                        bucket_errors(&mut buckets, started, 1);
                    }
                }
            }
            (requests, errors, buckets)
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, std::sync::atomic::Ordering::Release);
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut errors_by_second: Vec<u64> = Vec::new();
    for handle in handles {
        let (r, e, buckets) = handle.join().expect("step-load client thread panicked");
        requests += r;
        errors += e;
        merge_buckets(&mut errors_by_second, &buckets);
    }
    pad_buckets(&mut errors_by_second, started);
    let snapshot = hist.snapshot();
    FanoutReport {
        requests,
        errors,
        errors_by_second,
        wall_seconds: started.elapsed().as_secs_f64(),
        median_latency_ms: snapshot.p50_us() / 1e3,
        p99_latency_ms: snapshot.p99_us() / 1e3,
        max_latency_ms: snapshot.max_us() as f64 / 1e3,
    }
}

// ---------------------------------------------------------------------------
// High-connection sweep: one event loop holding thousands of keep-alive
// connections.
// ---------------------------------------------------------------------------

/// Options of the high-connection sweep ([`run_high_connection_test`]).
#[derive(Debug, Clone)]
pub struct HighConnectionOptions {
    /// Keep-alive connections to hold open (clamped to the process's fd
    /// budget; the report records both requested and achieved).
    pub connections: usize,
    /// Aggregate request rate paced across all connections, in requests per
    /// second.  Held constant across sweep points so latency differences
    /// come from the connection count alone.
    pub target_rps: f64,
    /// Warm-up period whose latencies are discarded.
    pub warmup: Duration,
    /// Measurement window after warm-up.
    pub duration: Duration,
    /// Simulation sessions the connections share.  Small on purpose: most
    /// requests hit an unchanged cycle, exercising the server's shared
    /// cached-`GetState` path under connection pressure.
    pub sessions: usize,
}

impl Default for HighConnectionOptions {
    fn default() -> Self {
        HighConnectionOptions {
            connections: 10_000,
            target_rps: 2_000.0,
            warmup: Duration::from_millis(500),
            duration: Duration::from_secs(3),
            sessions: 8,
        }
    }
}

/// Result of one high-connection sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HighConnectionReport {
    /// Connections requested by the options.
    pub requested_connections: usize,
    /// Connections actually opened and held (fd budget and connect errors
    /// can clamp the requested count).
    pub connections: usize,
    /// Paced aggregate request rate (requests per second).
    pub target_rps: f64,
    /// Achieved request rate over the measurement window.
    pub achieved_rps: f64,
    /// Completed requests inside the measurement window.
    pub transactions: u64,
    /// Failed requests or connections over the whole run.
    pub errors: u64,
    /// Median request latency in milliseconds.
    pub median_latency_ms: f64,
    /// 90th-percentile request latency in milliseconds.
    pub p90_latency_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Maximum request latency in milliseconds.
    pub max_latency_ms: f64,
    /// Measurement-window duration in seconds.
    pub duration_seconds: f64,
}

impl HighConnectionReport {
    /// Format the report as a table row.
    pub fn table_row(&self) -> String {
        format!(
            "{:>6} conns  target {:>7.0} rps  achieved {:>7.0} rps  median {:>7.3} ms  p90 {:>7.3} ms  p99 {:>7.3} ms  ({} transactions, {} errors)",
            self.connections,
            self.target_rps,
            self.achieved_rps,
            self.median_latency_ms,
            self.p90_latency_ms,
            self.p99_latency_ms,
            self.transactions,
            self.errors
        )
    }
}

/// The process's open-file-descriptor budget (the `RLIMIT_NOFILE` soft
/// limit).  The sweep clamps its connection count to this; callers use it
/// to decide whether client *and* server sockets fit one process or the
/// server must run in a separate process.
pub fn fd_budget() -> usize {
    polling::open_file_limit().map(|l| l as usize).unwrap_or(1024)
}

/// One connection of the high-connection sweep.
struct SweepConn {
    stream: TcpStream,
    /// Prebuilt keep-alive request (head + body), reused verbatim.
    request: Vec<u8>,
    /// Unwritten tail of the current request.
    out_pos: usize,
    /// Request bytes are (partially) unsent.
    sending: bool,
    /// Response accumulation buffer.
    buf: Vec<u8>,
    /// Send timestamp of the in-flight request.
    in_flight_since: Option<Instant>,
    /// The connection is dead (error / closed by peer).
    dead: bool,
}

/// Parse `content-length` out of a response head (the sweep only talks to
/// rvsim-net, which always sends it).
fn response_content_length(head: &[u8]) -> Option<usize> {
    for line in head.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else { continue };
        if line[..colon].eq_ignore_ascii_case(b"content-length") {
            return std::str::from_utf8(&line[colon + 1..]).ok()?.trim().parse().ok();
        }
    }
    None
}

/// Whether `buf` holds one complete response; returns its total length.
fn complete_response_len(buf: &[u8]) -> Option<usize> {
    let head_end = rvsim_net::find_head_end(buf)?;
    let body = response_content_length(&buf[..head_end])?;
    (buf.len() >= head_end + body).then_some(head_end + body)
}

/// Hold `options.connections` keep-alive connections open against the front
/// end at `addr` while pacing `options.target_rps` aggregate `GetState`
/// requests across them from a single event-driven thread (mirroring the
/// server's own event loop, and costing one fd — not one thread — per
/// connection, which is what makes a 10k-user sweep possible at all).
///
/// Run the same options with different `connections` values to draw the
/// latency-vs-connections curve: on a healthy event-loop front end it is
/// flat, because idle keep-alive connections cost a slab slot and an epoll
/// registration rather than a parked worker thread.
pub fn run_high_connection_test(
    addr: SocketAddr,
    options: &HighConnectionOptions,
) -> Result<HighConnectionReport, String> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use std::io::{Read, Write};

    // Clamp to the fd budget: the process needs one fd per connection plus
    // slack for the poller, the session client and stdio.
    let budget = fd_budget();
    let target_connections = options.connections.clamp(1, budget.saturating_sub(64).max(1));

    // A few shared sessions, each stepped once so the served state is
    // non-trivial; every sweep request afterwards hits an unchanged cycle.
    let mut setup = rvsim_net::TcpApiClient::new(addr);
    let mut sessions = Vec::new();
    for _ in 0..options.sessions.max(1) {
        match setup
            .call(&Request::CreateSession {
                program: sample_program_loop(),
                architecture: None,
                entry: None,
                session: None,
            })
            .map_err(|e| format!("session setup failed: {e}"))?
        {
            Response::SessionCreated { session } => {
                setup
                    .call(&Request::Step { session, cycles: 8 })
                    .map_err(|e| format!("session warm-up failed: {e}"))?;
                sessions.push(session);
            }
            other => return Err(format!("unexpected setup response {other:?}")),
        }
    }

    let poller = Poller::new().map_err(|e| format!("poller: {e}"))?;
    let mut errors = 0u64;
    let mut conns: Vec<SweepConn> = Vec::with_capacity(target_connections);
    for i in 0..target_connections {
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(_) => {
                // The front end (or the fd budget) said no: hold what we got.
                errors += 1;
                break;
            }
        };
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            errors += 1;
            continue;
        }
        let body = serde_json::to_vec(&Request::GetState { session: sessions[i % sessions.len()] })
            .expect("requests serialize");
        let mut request =
            format!("POST /api HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len()).into_bytes();
        request.extend_from_slice(&body);
        poller
            .register(stream.as_raw_fd(), i, Interest::READABLE)
            .map_err(|e| format!("register: {e}"))?;
        conns.push(SweepConn {
            stream,
            request,
            out_pos: 0,
            sending: false,
            buf: Vec::new(),
            in_flight_since: None,
            dead: false,
        });
    }
    if conns.is_empty() {
        return Err("no connections could be opened".to_string());
    }
    let achieved_connections = conns.len();

    // Pace: each connection fires every `connections / target_rps` seconds,
    // phase-shifted so the aggregate arrival process is smooth.
    let period = Duration::from_secs_f64(achieved_connections as f64 / options.target_rps.max(1.0));
    let started = Instant::now();
    let warmup_end = started + options.warmup;
    let end = warmup_end + options.duration;
    let mut due: BinaryHeap<Reverse<(Instant, usize)>> = (0..achieved_connections)
        .map(|i| {
            Reverse((started + Duration::from_secs_f64(i as f64 / options.target_rps.max(1.0)), i))
        })
        .collect();

    let hist = Histogram::new();
    let mut events = Events::with_capacity(1024);
    let mut scratch: Vec<usize> = Vec::new();
    let mut read_chunk = [0u8; 16 * 1024];

    while Instant::now() < end {
        let now = Instant::now();
        let timeout = due
            .peek()
            .map(|Reverse((t, _))| t.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(10))
            .min(end.saturating_duration_since(now))
            .min(Duration::from_millis(50));
        let _ = poller.wait(&mut events, Some(timeout));

        scratch.clear();
        scratch.extend(events.iter().map(|e| e.token));
        for &token in &scratch {
            let conn = &mut conns[token];
            if conn.dead {
                continue;
            }
            // Flush a partially written request first.
            if conn.sending {
                match conn.stream.write(&conn.request[conn.out_pos..]) {
                    Ok(n) => {
                        conn.out_pos += n;
                        if conn.out_pos == conn.request.len() {
                            conn.sending = false;
                            let _ = poller.reregister(
                                conn.stream.as_raw_fd(),
                                token,
                                Interest::READABLE,
                            );
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        conn.dead = true;
                        errors += 1;
                        let _ = poller.deregister(conn.stream.as_raw_fd());
                        continue;
                    }
                }
            }
            // Drain whatever the server sent.
            loop {
                match conn.stream.read(&mut read_chunk) {
                    Ok(0) => {
                        conn.dead = true;
                        if conn.in_flight_since.is_some() {
                            errors += 1;
                        }
                        let _ = poller.deregister(conn.stream.as_raw_fd());
                        break;
                    }
                    Ok(n) => conn.buf.extend_from_slice(&read_chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        errors += 1;
                        let _ = poller.deregister(conn.stream.as_raw_fd());
                        break;
                    }
                }
            }
            if let Some(total) = complete_response_len(&conn.buf) {
                conn.buf.drain(..total);
                if let Some(sent_at) = conn.in_flight_since.take() {
                    let finished = Instant::now();
                    if sent_at >= warmup_end && finished <= end {
                        hist.record(finished.duration_since(sent_at).as_micros() as u64);
                    }
                }
            }
        }

        // Fire every connection whose pacing slot has arrived.
        let now = Instant::now();
        while let Some(&Reverse((when, token))) = due.peek() {
            if when > now {
                break;
            }
            due.pop();
            let conn = &mut conns[token];
            if conn.dead {
                continue; // dead connections leave the pacing wheel
            }
            if conn.in_flight_since.is_some() || conn.sending {
                // Previous request still outstanding: slip this slot rather
                // than pipelining (one in flight per connection keeps the
                // latency attribution clean).
                due.push(Reverse((now + period, token)));
                continue;
            }
            conn.in_flight_since = Some(now);
            conn.out_pos = 0;
            match conn.stream.write(&conn.request) {
                Ok(n) if n == conn.request.len() => {}
                Ok(n) => {
                    conn.out_pos = n;
                    conn.sending = true;
                    let _ = poller.reregister(conn.stream.as_raw_fd(), token, Interest::BOTH);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.sending = true;
                    let _ = poller.reregister(conn.stream.as_raw_fd(), token, Interest::BOTH);
                }
                Err(_) => {
                    conn.dead = true;
                    errors += 1;
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    continue;
                }
            }
            due.push(Reverse((when + period, token)));
        }
    }

    for session in sessions {
        let _ = setup.call(&Request::DestroySession { session });
    }

    let snapshot = hist.snapshot();
    let transactions = snapshot.count();
    let duration = options.duration.as_secs_f64();
    Ok(HighConnectionReport {
        requested_connections: options.connections,
        connections: achieved_connections,
        target_rps: options.target_rps,
        achieved_rps: if duration > 0.0 { transactions as f64 / duration } else { 0.0 },
        transactions,
        errors,
        median_latency_ms: snapshot.p50_us() / 1e3,
        p90_latency_ms: snapshot.p90_us() / 1e3,
        p99_latency_ms: snapshot.p99_us() / 1e3,
        max_latency_ms: snapshot.max_us() as f64 / 1e3,
        duration_seconds: duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_server::{DeploymentConfig, DeploymentMode, SimulationServer};

    fn server(compress: bool) -> ThreadedServer {
        ThreadedServer::start(SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: compress,
            worker_threads: 4,
            idle_session_ttl_seconds: None,
        }))
    }

    #[test]
    fn percentile_selection() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.5), 6.0);
        assert_eq!(percentile(&v, 0.9), 9.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn scenario_constructors_match_paper_parameters() {
        let s = Scenario::paper(30);
        assert_eq!(s.users, 30);
        assert_eq!(s.steps_per_user, 40);
        assert_eq!(s.ramp_up_seconds, 4.0);
        assert_eq!(s.think_time_seconds, 1.0);
        assert_eq!(s.programs.len(), 2);
        let scaled = Scenario::paper_scaled(100, 0.01);
        assert_eq!(scaled.users, 100);
        assert!(scaled.ramp_up() < Duration::from_millis(100));
    }

    #[test]
    fn small_load_test_produces_sane_report() {
        let server = server(true);
        let mut scenario = Scenario::paper_scaled(4, 0.0);
        scenario.steps_per_user = 5;
        let report = run_load_test(&server, &scenario);
        // 4 users × (1 create + 5 × (step + state) + 1 destroy) = 48 requests.
        assert_eq!(report.transactions, 48);
        assert_eq!(report.errors, 0);
        assert!(report.median_latency_ms >= 0.0);
        assert!(report.p90_latency_ms >= report.median_latency_ms);
        assert!(report.max_latency_ms >= report.p99_latency_ms, "p99 is clamped to the max");
        assert!(report.throughput_tps > 0.0);
        assert!(report.table_row("Direct").contains("4 users"));
        server.shutdown();
    }

    #[test]
    fn more_users_than_workers_still_completes_without_errors() {
        let server = server(false);
        let mut scenario = Scenario::paper_scaled(12, 0.0);
        scenario.steps_per_user = 3;
        scenario.fetch_state_each_step = false;
        let report = run_load_test(&server, &scenario);
        assert_eq!(report.errors, 0);
        assert_eq!(report.transactions, (12 * (3 + 2)) as u64);
        server.shutdown();
    }

    #[test]
    fn delta_mode_completes_with_no_errors() {
        let server = server(true);
        let mut scenario = Scenario::paper_scaled(3, 0.0);
        scenario.steps_per_user = 6;
        scenario.delta_state = true;
        let report = run_load_test(&server, &scenario);
        // Same request count as full mode: 3 × (create + 6 × (step + fetch) + destroy).
        assert_eq!(report.transactions, 42);
        assert_eq!(report.errors, 0, "delta fetches must all succeed");
        server.shutdown();
    }

    #[test]
    fn tcp_transport_runs_the_same_scenario_with_no_errors() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping TCP transport test: loopback unavailable");
            return;
        }
        let net = rvsim_net::NetServer::start(
            SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: true,
                worker_threads: 4,
                idle_session_ttl_seconds: None,
            }),
            rvsim_net::NetConfig::default(),
        )
        .expect("net server starts");
        for delta in [false, true] {
            let mut scenario = Scenario::paper_scaled(3, 0.0);
            scenario.steps_per_user = 4;
            scenario.delta_state = delta;
            let report = run_load_test_tcp(net.local_addr(), &scenario);
            // Same request count as the in-process transport:
            // 3 users × (create + 4 × (step + fetch) + destroy).
            assert_eq!(report.transactions, 30, "delta={delta}");
            assert_eq!(report.errors, 0, "delta={delta}");
            assert!(report.p90_latency_ms >= report.median_latency_ms);
        }
        net.shutdown();
    }

    #[test]
    fn high_connection_sweep_completes_with_no_errors() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping high-connection test: loopback unavailable");
            return;
        }
        let net = rvsim_net::NetServer::start(
            SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: true,
                worker_threads: 4,
                idle_session_ttl_seconds: None,
            }),
            rvsim_net::NetConfig::default(),
        )
        .expect("net server starts");
        let options = HighConnectionOptions {
            connections: 64,
            target_rps: 400.0,
            warmup: Duration::from_millis(100),
            duration: Duration::from_millis(600),
            sessions: 2,
        };
        let report = run_high_connection_test(net.local_addr(), &options).expect("sweep runs");
        assert_eq!(report.connections, 64, "all requested connections are held");
        assert_eq!(report.errors, 0, "no request may fail");
        assert!(report.transactions > 0, "paced requests must complete");
        assert!(report.p90_latency_ms >= report.median_latency_ms);
        assert!(report.table_row().contains("64 conns"));
        // The shared sessions mean nearly every request hit the cached
        // GetState payload.
        assert!(net.server().shared_state_serve_count() > 0);
        net.shutdown();
    }

    #[test]
    fn cached_state_fanout_counts_requests_without_errors() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping fan-out test: loopback unavailable");
            return;
        }
        let net = rvsim_net::NetServer::start(
            SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: true,
                worker_threads: 2,
                idle_session_ttl_seconds: None,
            }),
            rvsim_net::NetConfig::default(),
        )
        .expect("net server starts");
        let mut setup = rvsim_net::TcpApiClient::new(net.local_addr());
        let mut sessions = Vec::new();
        for _ in 0..2 {
            match setup
                .call(&Request::CreateSession {
                    program: sample_program_loop(),
                    architecture: None,
                    entry: None,
                    session: None,
                })
                .unwrap()
            {
                Response::SessionCreated { session } => {
                    setup.call(&Request::Step { session, cycles: 4 }).unwrap();
                    sessions.push(session);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let report =
            run_cached_state_fanout(&[(net.local_addr(), sessions)], 2, Duration::from_millis(300));
        assert_eq!(report.errors, 0);
        assert!(report.requests > 0);
        assert!(report.rps() > 0.0);
        assert!(report.max_latency_ms >= report.p99_latency_ms);
        assert!(report.p99_latency_ms >= report.median_latency_ms);
        net.shutdown();
    }

    #[test]
    fn step_load_advances_sessions_and_reports_a_clean_error_ratio() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping step-load test: loopback unavailable");
            return;
        }
        let net = rvsim_net::NetServer::start(
            SimulationServer::new(DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: true,
                worker_threads: 2,
                idle_session_ttl_seconds: None,
            }),
            rvsim_net::NetConfig::default(),
        )
        .expect("net server starts");
        let mut setup = rvsim_net::TcpApiClient::new(net.local_addr());
        let mut sessions = Vec::new();
        for _ in 0..3 {
            match setup
                .call(&Request::CreateSession {
                    program: sample_program_loop(),
                    architecture: None,
                    entry: None,
                    session: None,
                })
                .unwrap()
            {
                Response::SessionCreated { session } => sessions.push(session),
                other => panic!("unexpected {other:?}"),
            }
        }
        let report = run_step_load(net.local_addr(), &sessions, 2, Duration::from_millis(300));
        assert!(report.requests > 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.error_ratio(), 0.0);
        assert!(report.errors_by_second.iter().all(|&e| e == 0));
        // The load actually advanced state: every session left cycle 0.
        for &session in &sessions {
            match setup.call(&Request::GetState { session }).unwrap() {
                Response::State(snapshot) => assert!(snapshot.cycle > 0),
                other => panic!("unexpected {other:?}"),
            }
        }
        net.shutdown();
    }

    #[test]
    fn error_ratio_and_buckets_account_for_failures() {
        let report = FanoutReport {
            requests: 90,
            errors: 10,
            errors_by_second: vec![0, 10, 0],
            wall_seconds: 3.0,
            median_latency_ms: 0.5,
            p99_latency_ms: 2.0,
            max_latency_ms: 3.5,
        };
        assert!((report.error_ratio() - 0.1).abs() < 1e-12);
        let empty = FanoutReport {
            requests: 0,
            errors: 0,
            errors_by_second: Vec::new(),
            wall_seconds: 0.0,
            median_latency_ms: 0.0,
            p99_latency_ms: 0.0,
            max_latency_ms: 0.0,
        };
        assert_eq!(empty.error_ratio(), 0.0);

        let mut total = vec![1, 2];
        merge_buckets(&mut total, &[0, 1, 5]);
        assert_eq!(total, vec![1, 3, 5]);

        // Old serialized reports (no buckets, no latency columns) still
        // deserialize; the missing fields default to empty/zero.
        let legacy: FanoutReport =
            serde_json::from_str(r#"{"requests":5,"errors":1,"wall_seconds":1.0}"#).unwrap();
        assert!(legacy.errors_by_second.is_empty());
        assert_eq!(legacy.p99_latency_ms, 0.0);
        assert_eq!(legacy.max_latency_ms, 0.0);
    }

    #[test]
    fn response_scan_helpers_parse_heads() {
        let head = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 4\r\n\r\n";
        assert_eq!(response_content_length(head), Some(4));
        let mut full = head.to_vec();
        assert_eq!(complete_response_len(&full), None, "body missing");
        full.extend_from_slice(b"ok!\n");
        assert_eq!(complete_response_len(&full), Some(full.len()));
        assert_eq!(response_content_length(b"HTTP/1.1 200 OK\r\n\r\n"), None);
    }

    #[test]
    fn bad_program_counts_as_errors_but_does_not_panic() {
        let server = server(false);
        let scenario = Scenario {
            users: 2,
            steps_per_user: 2,
            ramp_up_seconds: 0.0,
            think_time_seconds: 0.0,
            programs: vec!["main:\n  bogus\n".to_string()],
            time_scale: 0.0,
            fetch_state_each_step: false,
            delta_state: false,
        };
        let report = run_load_test(&server, &scenario);
        assert_eq!(report.errors, 2, "each user fails once at session creation");
        server.shutdown();
    }
}
