//! Behavioural tests of individual pipeline mechanisms: these pin down the
//! cycle-level consequences of the configuration knobs the Architecture
//! Settings window exposes (flush penalty, commit width, functional-unit
//! latencies, buffer sizes), not just functional correctness.

use rvsim_core::{ArchitectureConfig, HaltReason, Simulator};

fn run(asm: &str, config: &ArchitectureConfig) -> Simulator {
    let mut sim = Simulator::from_assembly(asm, config).expect("assembles");
    let result = sim.run(1_000_000).expect("runs");
    assert!(!matches!(result.halt, HaltReason::MaxCyclesReached), "program hung");
    sim
}

/// A branchy kernel whose outcome alternates, guaranteeing mispredictions
/// with a plain two-bit counter and no history.
const MISPREDICT_KERNEL: &str = "
main:
    li   t0, 0
    li   t1, 64
    li   a0, 0
loop:
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 1
even:
    addi t0, t0, 1
    blt  t0, t1, loop
    ret
";

const DEPENDENT_MUL_KERNEL: &str = "
main:
    li   t0, 1
    li   t1, 16
loop:
    mul  t0, t0, t0
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
";

const INDEPENDENT_KERNEL: &str = "
main:
    li   t0, 0
    li   t1, 0
    li   t2, 0
    li   t3, 0
    li   t4, 100
loop:
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, 1
    addi t3, t3, 1
    addi t4, t4, -1
    bnez t4, loop
    add  a0, t0, t1
    ret
";

#[test]
fn flush_penalty_increases_cycles_on_mispredicting_code() {
    let mut history_free = ArchitectureConfig::default();
    history_free.predictor.history_bits = 0;

    let mut cheap = history_free.clone();
    cheap.buffers.flush_penalty = 0;
    let mut expensive = history_free.clone();
    expensive.buffers.flush_penalty = 12;

    let fast = run(MISPREDICT_KERNEL, &cheap);
    let slow = run(MISPREDICT_KERNEL, &expensive);
    assert_eq!(fast.int_register(10), slow.int_register(10));
    assert!(fast.statistics().rob_flushes > 0, "kernel must actually mispredict");
    assert!(
        slow.statistics().cycles > fast.statistics().cycles,
        "larger flush penalty must cost cycles ({} vs {})",
        slow.statistics().cycles,
        fast.statistics().cycles
    );
}

#[test]
fn commit_width_limits_retirement_rate() {
    let mut narrow = ArchitectureConfig::wide();
    narrow.buffers.commit_width = 1;
    let wide = ArchitectureConfig::wide();

    let one = run(INDEPENDENT_KERNEL, &narrow);
    let four = run(INDEPENDENT_KERNEL, &wide);
    assert_eq!(one.int_register(10), four.int_register(10));
    assert!(one.statistics().ipc() <= 1.0 + 1e-9, "IPC can never exceed the commit width");
    assert!(
        four.statistics().ipc() > one.statistics().ipc(),
        "wider commit must raise IPC ({:.3} vs {:.3})",
        four.statistics().ipc(),
        one.statistics().ipc()
    );
}

#[test]
fn functional_unit_latency_shows_up_in_dependent_chains() {
    let mut fast_mul = ArchitectureConfig::default();
    for fx in &mut fast_mul.units.fx_units {
        fx.mul_latency = 1;
    }
    let mut slow_mul = ArchitectureConfig::default();
    for fx in &mut slow_mul.units.fx_units {
        fx.mul_latency = 12;
    }
    let fast = run(DEPENDENT_MUL_KERNEL, &fast_mul);
    let slow = run(DEPENDENT_MUL_KERNEL, &slow_mul);
    assert_eq!(fast.int_register(10), slow.int_register(10));
    let delta = slow.statistics().cycles as i64 - fast.statistics().cycles as i64;
    assert!(
        delta > 100,
        "a 11-cycle multiplier latency difference over 16 dependent multiplies must cost \
         well over 100 cycles, measured {delta}"
    );
}

#[test]
fn issue_window_and_rob_pressure_stall_but_do_not_break() {
    let mut tiny = ArchitectureConfig::default();
    tiny.buffers.rob_size = 2;
    tiny.buffers.issue_window_size = 1;
    tiny.memory.load_buffer_size = 1;
    tiny.memory.store_buffer_size = 1;
    tiny.memory.rename_file_size = 2;

    let asm = "
buf:
    .zero 64
main:
    la   t0, buf
    li   t1, 8
    li   a0, 0
loop:
    sw   t1, 0(t0)
    lw   t2, 0(t0)
    add  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
";
    let constrained = run(asm, &tiny);
    let roomy = run(asm, &ArchitectureConfig::default());
    assert_eq!(constrained.int_register(10), roomy.int_register(10));
    assert_eq!(constrained.int_register(10), (1..=8).sum::<i64>());
    assert!(
        constrained.statistics().cycles > roomy.statistics().cycles,
        "starving the buffers must cost cycles"
    );
}

#[test]
fn branch_follow_limit_gates_fetch_redirects() {
    // A chain of unconditional jumps: with a follow limit of 1 the front end
    // needs a cycle per jump; with a higher limit it can chew through several.
    let asm = "
main:
    j    a
a:  j    b
b:  j    c
c:  j    d
d:  j    e
e:  li   a0, 9
    ret
";
    let mut limited = ArchitectureConfig::wide();
    limited.buffers.branch_follow_limit = 1;
    let mut generous = ArchitectureConfig::wide();
    generous.buffers.branch_follow_limit = 4;
    let slow = run(asm, &limited);
    let fast = run(asm, &generous);
    assert_eq!(slow.int_register(10), 9);
    assert_eq!(fast.int_register(10), 9);
    assert!(
        fast.statistics().cycles <= slow.statistics().cycles,
        "a higher jump-follow limit must never be slower ({} vs {})",
        fast.statistics().cycles,
        slow.statistics().cycles
    );
}

#[test]
fn load_latency_hidden_by_out_of_order_execution() {
    // Independent loads: an OoO core with a decent load buffer overlaps them,
    // so doubling the memory latency must NOT double the execution time.
    let asm = "
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
main:
    la   t0, data
    li   t1, 16
    li   a0, 0
loop:
    lw   t2, 0(t0)
    add  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
";
    let mut fast_mem = ArchitectureConfig::default();
    fast_mem.cache.enabled = false;
    fast_mem.memory.timings.load_latency = 4;
    let mut slow_mem = fast_mem.clone();
    slow_mem.memory.timings.load_latency = 8;

    let fast = run(asm, &fast_mem);
    let slow = run(asm, &slow_mem);
    assert_eq!(fast.int_register(10), 136);
    assert_eq!(slow.int_register(10), 136);
    let ratio = slow.statistics().cycles as f64 / fast.statistics().cycles as f64;
    assert!(ratio > 1.0, "higher latency must cost something");
    assert!(
        ratio < 2.0,
        "out-of-order overlap must hide part of the doubled latency (ratio {ratio:.2})"
    );
}

#[test]
fn statistics_expose_per_unit_utilization_and_mixes() {
    let sim = run(DEPENDENT_MUL_KERNEL, &ArchitectureConfig::default());
    let stats = sim.statistics();
    let total_busy: u64 = stats.unit_utilization.iter().map(|u| u.busy_cycles).sum();
    assert!(total_busy > 0);
    let names: Vec<&str> = stats.unit_utilization.iter().map(|u| u.name.as_str()).collect();
    assert!(names.iter().any(|n| n.starts_with("FX")));
    assert!(names.iter().any(|n| n.starts_with("BR")));
    assert!(names.iter().any(|n| n.starts_with("LS")));
    assert_eq!(stats.static_mix.get("mul"), Some(&1));
    assert!(stats.dynamic_mix["mul"] >= 16);
    // Committed counts are consistent with the dynamic mix.
    let mix_total: u64 = stats.dynamic_mix.values().sum();
    assert_eq!(mix_total, stats.committed);
}

#[test]
fn wall_time_and_clock_follow_the_configuration() {
    let config = ArchitectureConfig { core_clock_hz: 1_000_000, ..Default::default() }; // 1 MHz
    let sim = run(INDEPENDENT_KERNEL, &config);
    let stats = sim.statistics();
    let expected = stats.cycles as f64 / 1_000_000.0;
    assert!((stats.wall_time_seconds() - expected).abs() < 1e-12);
}
