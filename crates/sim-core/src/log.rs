//! Cycle-stamped debug log (the right-hand panel's log view, §II-A).

use serde::{Deserialize, Serialize};

/// One log message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Cycle the message was generated in.
    pub cycle: u64,
    /// Message text.
    pub message: String,
}

/// The debug log: every message is timestamped with the cycle in which it was
/// generated, so the GUI can navigate the simulation to that cycle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DebugLog {
    entries: Vec<LogEntry>,
    capacity: usize,
}

impl DebugLog {
    /// Default maximum number of retained messages.
    pub const DEFAULT_CAPACITY: usize = 10_000;

    /// Create a log retaining at most `capacity` messages (oldest dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        DebugLog { entries: Vec::new(), capacity: capacity.max(1) }
    }

    /// Create a log with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Append a message for `cycle`.
    pub fn push(&mut self, cycle: u64, message: impl Into<String>) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(LogEntry { cycle, message: message.into() });
    }

    /// All retained messages, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Messages generated during `cycle`.
    pub fn at_cycle(&self, cycle: u64) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.cycle == cycle)
    }

    /// Number of retained messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no messages are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all messages.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = DebugLog::new();
        log.push(1, "fetch main");
        log.push(2, "dispatch 0");
        log.push(2, "dispatch 1");
        assert_eq!(log.len(), 3);
        assert_eq!(log.at_cycle(2).count(), 2);
        assert_eq!(log.entries()[0].message, "fetch main");
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut log = DebugLog::with_capacity(2);
        log.push(1, "a");
        log.push(2, "b");
        log.push(3, "c");
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].message, "b");
        assert_eq!(log.entries()[1].message, "c");
    }
}
