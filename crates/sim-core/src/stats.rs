//! Runtime statistics (the Runtime Statistics window, §II-D).

use rvsim_mem::MemStats;
use rvsim_predictor::PredictorStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Busy-cycle accounting for one functional unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct UnitUtilization {
    /// Unit display name.
    pub name: String,
    /// Cycles the unit was busy.
    pub busy_cycles: u64,
    /// Instructions the unit executed.
    pub executed: u64,
}

impl UnitUtilization {
    /// Busy fraction of the given total cycle count, in `[0, 1]`.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total_cycles as f64
        }
    }
}

/// All statistics collected by the simulation step manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimulationStatistics {
    /// Total executed clock cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub committed: u64,
    /// Fetched instructions (including squashed wrong-path ones).
    pub fetched: u64,
    /// Squashed instructions.
    pub squashed: u64,
    /// Reorder-buffer flushes (branch mispredictions).
    pub rob_flushes: u64,
    /// Committed floating-point operations.
    pub flops: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Committed unconditional jumps.
    pub jumps: u64,
    /// Dynamic instruction mix: mnemonic → committed count.
    pub dynamic_mix: BTreeMap<String, u64>,
    /// Static instruction mix: mnemonic → occurrences in the program.
    pub static_mix: BTreeMap<String, u64>,
    /// Per-unit busy cycles.
    pub unit_utilization: Vec<UnitUtilization>,
    /// Branch predictor statistics.
    pub predictor: PredictorStats,
    /// Memory / cache statistics.
    pub memory: MemStats,
    /// Core clock in Hz, used to derive wall time.
    pub core_clock_hz: u64,
}

impl SimulationStatistics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }

    /// Simulated wall time in seconds (cycles / core clock).
    pub fn wall_time_seconds(&self) -> f64 {
        if self.core_clock_hz == 0 {
            0.0
        } else {
            self.cycles as f64 / self.core_clock_hz as f64
        }
    }

    /// Committed FLOPs per simulated second.
    pub fn flops_per_second(&self) -> f64 {
        let t = self.wall_time_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.flops as f64 / t
        }
    }

    /// Branch prediction accuracy in `[0, 1]`.
    pub fn branch_accuracy(&self) -> f64 {
        self.predictor.accuracy()
    }

    /// Cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        self.memory.hit_ratio()
    }

    /// Render the full statistics report as plain text (the CLI's default
    /// output and the content of the Runtime Statistics window).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Runtime statistics ===\n");
        out.push_str(&format!("cycles:                 {}\n", self.cycles));
        out.push_str(&format!("committed instructions: {}\n", self.committed));
        out.push_str(&format!("fetched instructions:   {}\n", self.fetched));
        out.push_str(&format!("squashed instructions:  {}\n", self.squashed));
        out.push_str(&format!("IPC:                    {:.3}\n", self.ipc()));
        out.push_str(&format!("CPI:                    {:.3}\n", self.cpi()));
        out.push_str(&format!("wall time:              {:.6} s\n", self.wall_time_seconds()));
        out.push_str(&format!("FLOPs:                  {}\n", self.flops));
        out.push_str(&format!("FLOP/s:                 {:.0}\n", self.flops_per_second()));
        out.push_str(&format!("ROB flushes:            {}\n", self.rob_flushes));
        out.push_str(&format!(
            "branch accuracy:        {:.2} % ({} / {})\n",
            self.branch_accuracy() * 100.0,
            self.predictor.correct,
            self.predictor.predictions
        ));
        out.push_str(&format!(
            "cache:                  {} accesses, {:.2} % hits, {} writebacks\n",
            self.memory.cache_accesses,
            self.cache_hit_rate() * 100.0,
            self.memory.cache_writebacks
        ));
        out.push_str(&format!(
            "memory traffic:         {} B read, {} B written\n",
            self.memory.bytes_read, self.memory.bytes_written
        ));
        out.push_str("--- unit utilization ---\n");
        for u in &self.unit_utilization {
            out.push_str(&format!(
                "{:<8} {:>8} busy cycles ({:>5.1} %), {:>8} instructions\n",
                u.name,
                u.busy_cycles,
                u.utilization(self.cycles) * 100.0,
                u.executed
            ));
        }
        out.push_str("--- dynamic instruction mix ---\n");
        let total = self.committed.max(1);
        for (mnemonic, count) in &self.dynamic_mix {
            out.push_str(&format!(
                "{:<10} {:>8} ({:>5.1} %)\n",
                mnemonic,
                count,
                *count as f64 / total as f64 * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimulationStatistics {
        let mut s = SimulationStatistics {
            cycles: 100,
            committed: 150,
            fetched: 180,
            squashed: 30,
            rob_flushes: 3,
            flops: 50,
            core_clock_hz: 1_000_000,
            ..Default::default()
        };
        s.dynamic_mix.insert("add".into(), 100);
        s.dynamic_mix.insert("fadd.s".into(), 50);
        s.unit_utilization.push(UnitUtilization {
            name: "FX1".into(),
            busy_cycles: 80,
            executed: 100,
        });
        s
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.cpi() - 100.0 / 150.0).abs() < 1e-12);
        assert!((s.wall_time_seconds() - 1e-4).abs() < 1e-12);
        assert!((s.flops_per_second() - 500_000.0).abs() < 1e-6);
        assert!((s.unit_utilization[0].utilization(s.cycles) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_division_safety() {
        let s = SimulationStatistics::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.wall_time_seconds(), 0.0);
        assert_eq!(s.flops_per_second(), 0.0);
        assert_eq!(s.branch_accuracy(), 0.0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(UnitUtilization::default().utilization(0), 0.0);
    }

    #[test]
    fn report_contains_key_sections() {
        let s = stats();
        let r = s.report();
        assert!(r.contains("IPC:"));
        assert!(r.contains("1.500"));
        assert!(r.contains("unit utilization"));
        assert!(r.contains("FX1"));
        assert!(r.contains("dynamic instruction mix"));
        assert!(r.contains("add"));
        assert!(r.contains("ROB flushes:            3"));
    }

    #[test]
    fn serializes_to_json() {
        let s = stats();
        let json = serde_json::to_string(&s).unwrap();
        let back: SimulationStatistics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
