//! In-flight instruction instances (`SimCode`).
//!
//! Every fetched instruction becomes a [`SimCode`]: a reference to its
//! predecoded static entry plus the dynamic pipeline state — renamed
//! source/destination registers, per-phase timestamps (displayed by the
//! instruction pop-up, Fig. 3), branch-prediction information, memory access
//! state and any exception raised during execution.
//!
//! Since the predecoded-µop refactor the struct is allocation-free: names are
//! interned [`Sym`]s, operand lists live in fixed [`InlineVec`]s, and static
//! facts (immediates, semantics, display text) stay in the shared
//! [`crate::predecode::PredecodedProgram`] instead of being cloned per fetch.

use crate::predecode::{LatencyClass, PredecodedInstr};
use crate::register_file::PhysRegTag;
use rvsim_isa::{DescriptorId, Exception, FunctionalClass, InlineVec, RegisterId, Sym, TypedValue};
use serde::{Deserialize, Serialize};

/// Unique, monotonically increasing instruction identifier (program order).
pub type InstrId = u64;

/// Lifecycle of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstructionState {
    /// Fetched, waiting in the fetch buffer for decode/rename.
    Fetched,
    /// Renamed and sitting in an issue window (and the ROB).
    Dispatched,
    /// Executing in a functional unit.
    Executing,
    /// Waiting for a memory transaction to complete (loads).
    WaitingMemory,
    /// Finished executing, waiting to commit.
    Done,
    /// Committed (retired).
    Committed,
    /// Squashed by a pipeline flush.
    Squashed,
}

/// Timestamps of the pipeline phases an instruction went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Timestamps {
    /// Cycle the instruction was fetched.
    pub fetch: Option<u64>,
    /// Cycle it was decoded/renamed/dispatched.
    pub dispatch: Option<u64>,
    /// Cycle it was issued to a functional unit.
    pub issue: Option<u64>,
    /// Cycle its functional-unit execution finished.
    pub execute: Option<u64>,
    /// Cycle its memory access completed (loads/stores).
    pub memory: Option<u64>,
    /// Cycle it committed.
    pub commit: Option<u64>,
}

/// One renamed source operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceOperand {
    /// Descriptor argument name (`rs1`, `rs2`, `rs3`), interned.
    pub arg: Sym,
    /// Architectural register read.
    pub arch: RegisterId,
    /// Speculative register the operand waits for, if not ready at rename.
    pub wait_tag: Option<PhysRegTag>,
    /// The operand value, once known.
    pub value: Option<TypedValue>,
}

impl Default for SourceOperand {
    fn default() -> Self {
        SourceOperand { arg: Sym::default(), arch: RegisterId::x(0), wait_tag: None, value: None }
    }
}

impl SourceOperand {
    /// True once the value is available.
    pub fn ready(&self) -> bool {
        self.value.is_some()
    }
}

/// Renamed destination register.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DestOperand {
    /// Descriptor argument name (`rd`), interned.
    pub arg: Sym,
    /// Architectural destination register.
    pub arch: RegisterId,
    /// Declared data type of the destination (display metadata).
    pub data_type: rvsim_isa::DataType,
    /// Allocated speculative register (`None` for discarded `x0` writes).
    pub tag: Option<PhysRegTag>,
    /// RAT mapping displaced by this rename (for rollback on flush).
    pub previous: Option<PhysRegTag>,
}

/// An in-flight instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCode {
    /// Unique id in program (fetch) order.
    pub id: InstrId,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Dense descriptor id (keys the dynamic mix and semantics lookup).
    pub desc: DescriptorId,
    /// Interned mnemonic (after pseudo-instruction expansion).
    pub mnemonic: Sym,
    /// Functional-unit class that executes the instruction.
    pub class: FunctionalClass,
    /// Latency class resolved at predecode time.
    pub latency: LatencyClass,
    /// Current lifecycle state.
    pub state: InstructionState,
    /// Phase timestamps.
    pub timestamps: Timestamps,
    /// Renamed source operands.
    pub sources: InlineVec<SourceOperand, 3>,
    /// Renamed destination, if the instruction writes a register.
    pub dest: Option<DestOperand>,

    // ------------------------------------------------------------- branches
    /// Direction the fetch unit predicted.
    pub predicted_taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub predicted_next_pc: u64,
    /// Real direction, once resolved.
    pub actual_taken: Option<bool>,
    /// Real next PC, once resolved.
    pub actual_next_pc: Option<u64>,
    /// True when the branch was mispredicted and caused a flush.
    pub mispredicted: bool,

    // --------------------------------------------------------------- memory
    /// Effective address, once computed by the L/S unit.
    pub effective_address: Option<u64>,
    /// Value to store (stores) once read from the source register.
    pub store_value: Option<TypedValue>,
    /// Value loaded from memory (loads).
    pub loaded_value: Option<TypedValue>,
    /// Whether the access hit in the L1 cache.
    pub cache_hit: Option<bool>,

    // -------------------------------------------------------------- results
    /// Value written to the destination register.
    pub result: Option<TypedValue>,
    /// Exception raised during execution (acted on at commit).
    pub exception: Option<Exception>,
    /// FLOPs contributed when the instruction commits.
    pub flops: u32,
}

impl SimCode {
    /// Create a freshly fetched instruction from its predecoded entry —
    /// a handful of `Copy` fields, no heap traffic.
    pub fn fetched(id: InstrId, pc: u64, entry: &PredecodedInstr, cycle: u64) -> Self {
        SimCode {
            id,
            pc,
            desc: entry.desc,
            mnemonic: entry.mnemonic,
            class: entry.class,
            latency: entry.latency,
            state: InstructionState::Fetched,
            timestamps: Timestamps { fetch: Some(cycle), ..Default::default() },
            sources: InlineVec::new(),
            dest: None,
            predicted_taken: false,
            predicted_next_pc: pc + 4,
            actual_taken: None,
            actual_next_pc: None,
            mispredicted: false,
            effective_address: None,
            store_value: None,
            loaded_value: None,
            cache_hit: None,
            result: None,
            exception: None,
            flops: entry.flops,
        }
    }

    /// True when every source operand value is known.
    pub fn sources_ready(&self) -> bool {
        self.sources.iter().all(SourceOperand::ready)
    }

    /// Deliver a produced value to any source operand waiting on `tag`.
    /// Returns true when at least one operand was woken.
    pub fn wake_up(&mut self, tag: PhysRegTag, value: TypedValue) -> bool {
        let mut woke = false;
        for src in self.sources.iter_mut() {
            if src.wait_tag == Some(tag) && src.value.is_none() {
                src.value = Some(value);
                woke = true;
            }
        }
        woke
    }

    /// Value of the source operand named `arg`, if known.
    pub fn source_value(&self, arg: Sym) -> Option<TypedValue> {
        self.sources.iter().find(|s| s.arg == arg).and_then(|s| s.value)
    }

    /// True for instructions that are finished from the ROB's point of view.
    pub fn is_done(&self) -> bool {
        self.state == InstructionState::Done
    }

    /// True when the instruction still occupies pipeline resources.
    pub fn is_in_flight(&self) -> bool {
        !matches!(self.state, InstructionState::Committed | InstructionState::Squashed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::{SYM_RS1, SYM_RS2};

    fn code() -> SimCode {
        let entry = PredecodedInstr {
            desc: DescriptorId(0),
            mnemonic: Sym::new("add"),
            class: FunctionalClass::Fx,
            flops: 0,
            latency: LatencyClass::IntAlu,
            is_cond_branch: false,
            is_uncond_jump: false,
            is_direct_jal: false,
            static_target: 0,
            memory: None,
            srcs: InlineVec::new(),
            dst: None,
            imms: InlineVec::new(),
            store_data: None,
        };
        SimCode::fetched(1, 0x10, &entry, 7)
    }

    #[test]
    fn fetched_state_and_timestamp() {
        let c = code();
        assert_eq!(c.state, InstructionState::Fetched);
        assert_eq!(c.timestamps.fetch, Some(7));
        assert_eq!(c.predicted_next_pc, 0x14);
        assert_eq!(c.mnemonic, "add");
        assert_eq!(c.latency, LatencyClass::IntAlu);
        assert!(c.is_in_flight());
        assert!(!c.is_done());
    }

    #[test]
    fn sources_ready_and_wake_up() {
        let mut c = code();
        c.sources.push(SourceOperand {
            arg: SYM_RS1,
            arch: RegisterId::x(11),
            wait_tag: None,
            value: Some(TypedValue::int(1)),
        });
        c.sources.push(SourceOperand {
            arg: SYM_RS2,
            arch: RegisterId::x(12),
            wait_tag: Some(PhysRegTag(3)),
            value: None,
        });
        assert!(!c.sources_ready());
        assert!(!c.wake_up(PhysRegTag(9), TypedValue::int(5)), "wrong tag wakes nothing");
        assert!(c.wake_up(PhysRegTag(3), TypedValue::int(5)));
        assert!(c.sources_ready());
        assert_eq!(c.source_value(SYM_RS2), Some(TypedValue::int(5)));
        assert_eq!(c.source_value(SYM_RS1), Some(TypedValue::int(1)));
        assert_eq!(c.source_value(Sym::new("rs9")), None);
        // A second wake-up for the same tag does not overwrite.
        assert!(!c.wake_up(PhysRegTag(3), TypedValue::int(99)));
        assert_eq!(c.source_value(SYM_RS2), Some(TypedValue::int(5)));
    }

    #[test]
    fn lifecycle_flags() {
        let mut c = code();
        c.state = InstructionState::Done;
        assert!(c.is_done());
        c.state = InstructionState::Committed;
        assert!(!c.is_in_flight());
        c.state = InstructionState::Squashed;
        assert!(!c.is_in_flight());
    }

    #[test]
    fn sim_code_serde_round_trip() {
        let mut c = code();
        c.sources.push(SourceOperand {
            arg: SYM_RS1,
            arch: RegisterId::x(11),
            wait_tag: Some(PhysRegTag(4)),
            value: None,
        });
        c.dest = Some(DestOperand {
            arg: rvsim_isa::SYM_RD,
            arch: RegisterId::x(10),
            data_type: rvsim_isa::DataType::Int,
            tag: Some(PhysRegTag(9)),
            previous: None,
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: SimCode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
