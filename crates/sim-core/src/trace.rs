//! Retirement trace: the per-committed-instruction record of architectural
//! effects.
//!
//! The trace is the comparison point of the differential co-simulation
//! harness (`rvsim-iss`): the pipeline records one [`RetireEvent`] per
//! committed instruction, the in-order reference interpreter records one per
//! executed instruction, and the two streams must agree event-by-event on
//! every architectural field — program counter, destination register write,
//! memory effect and resolved control flow.  Timing fields (`seq`, `cycle`)
//! are carried for context but are *not* part of the architectural
//! comparison, because the two models disagree on them by design.

use rvsim_isa::{RegisterId, Sym};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One memory effect performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEffect {
    /// Effective byte address of the access.
    pub address: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: usize,
    /// For stores: the raw value handed to memory (only the low `size` bytes
    /// reach memory, but the full register image is kept so both models can
    /// be compared bit-for-bit).  For loads: the converted value written to
    /// the destination register.
    pub value: u64,
}

/// Architectural effects of one retired (committed) instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetireEvent {
    /// Retirement sequence number (0-based, program order).
    pub seq: u64,
    /// Cycle the instruction committed (pipeline) or step index (ISS).
    /// Context only — not compared between models.
    pub cycle: u64,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Mnemonic after pseudo-instruction expansion (interned: comparisons in
    /// the cosim diff loop are integer equality; serde emits the string).
    pub mnemonic: Sym,
    /// Destination register write that became architectural, if any
    /// (discarded `x0` writes are `None`): register plus raw bits.
    pub dest: Option<(RegisterId, u64)>,
    /// Memory write performed at commit (stores).
    pub store: Option<MemEffect>,
    /// Memory read performed by the instruction (loads).
    pub load: Option<MemEffect>,
    /// Resolved next program counter (control-flow instructions only).
    pub next_pc: Option<u64>,
}

impl RetireEvent {
    /// True when the two events describe the same architectural effect.
    /// `seq` and `cycle` are deliberately excluded: the pipeline and the ISS
    /// retire the same instructions at different cycles.
    pub fn architecturally_equal(&self, other: &RetireEvent) -> bool {
        self.pc == other.pc
            && self.mnemonic == other.mnemonic
            && self.dest == other.dest
            && self.store == other.store
            && self.load == other.load
            && self.next_pc == other.next_pc
    }
}

impl fmt::Display for RetireEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<5} pc 0x{:04x} {:<8}", self.seq, self.pc, self.mnemonic)?;
        if let Some((reg, bits)) = &self.dest {
            write!(f, " {} <- 0x{:x}", reg, bits)?;
        }
        if let Some(s) = &self.store {
            write!(f, " mem[0x{:x}..+{}] <- 0x{:x}", s.address, s.size, s.value)?;
        }
        if let Some(l) = &self.load {
            write!(f, " loaded mem[0x{:x}..+{}] = 0x{:x}", l.address, l.size, l.value)?;
        }
        if let Some(next) = self.next_pc {
            write!(f, " -> 0x{:x}", next)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> RetireEvent {
        RetireEvent {
            seq: 3,
            cycle: 17,
            pc: 0x10,
            mnemonic: "addi".into(),
            dest: Some((RegisterId::x(10), 42)),
            store: None,
            load: None,
            next_pc: None,
        }
    }

    #[test]
    fn architectural_equality_ignores_timing() {
        let a = event();
        let mut b = event();
        b.seq = 99;
        b.cycle = 1234;
        assert!(a.architecturally_equal(&b));
        assert_ne!(a, b, "full equality still sees the timing fields");
    }

    #[test]
    fn architectural_equality_detects_effect_differences() {
        let a = event();
        let mut b = event();
        b.dest = Some((RegisterId::x(10), 43));
        assert!(!a.architecturally_equal(&b));

        let mut c = event();
        c.store = Some(MemEffect { address: 0x100, size: 4, value: 7 });
        assert!(!a.architecturally_equal(&c));

        let mut d = event();
        d.next_pc = Some(0x20);
        assert!(!a.architecturally_equal(&d));
    }

    #[test]
    fn display_shows_effects() {
        let mut e = event();
        e.store = Some(MemEffect { address: 0x200, size: 4, value: 0xbeef });
        e.next_pc = Some(0x14);
        let text = e.to_string();
        assert!(text.contains("pc 0x0010"));
        assert!(text.contains("a0 <- 0x2a"));
        assert!(text.contains("mem[0x200..+4] <- 0xbeef"));
        assert!(text.contains("-> 0x14"));
    }

    #[test]
    fn serde_round_trip() {
        let e = event();
        let json = serde_json::to_string(&e).unwrap();
        let back: RetireEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
