//! Pipeline resources: reorder buffer, issue windows, functional units and
//! load/store buffers.
//!
//! These are deliberately simple containers of [`InstrId`]s — all per-
//! instruction state lives in [`crate::SimCode`], exactly like the paper's
//! blocks that hold "lists of active instructions".

use crate::instruction::InstrId;
use rvsim_isa::TypedValue;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Reorder buffer
// ---------------------------------------------------------------------------

/// The reorder (retire) buffer: instruction ids in program order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReorderBuffer {
    entries: Vec<InstrId>,
    capacity: usize,
}

impl ReorderBuffer {
    /// Create a ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReorderBuffer { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no instruction is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another instruction can be inserted.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an instruction (program order).
    pub fn push(&mut self, id: InstrId) {
        debug_assert!(self.has_space(), "ROB overflow");
        self.entries.push(id);
    }

    /// Oldest instruction, if any.
    pub fn head(&self) -> Option<InstrId> {
        self.entries.first().copied()
    }

    /// Remove and return the oldest instruction.
    pub fn pop_head(&mut self) -> Option<InstrId> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// All entries in program order.
    pub fn iter(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.entries.iter().copied()
    }

    /// Remove every instruction younger than `id` (exclusive) and return them
    /// youngest-first — the order required for rename rollback.
    pub fn squash_after(&mut self, id: InstrId) -> Vec<InstrId> {
        let keep = self.entries.iter().take_while(|&&e| e <= id).count();
        let mut squashed: Vec<InstrId> = self.entries.split_off(keep);
        squashed.reverse();
        squashed
    }
}

// ---------------------------------------------------------------------------
// Issue windows
// ---------------------------------------------------------------------------

/// An issue window for one functional-unit class.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IssueWindow {
    /// Display name ("FX issue window", …).
    pub name: String,
    entries: Vec<InstrId>,
    capacity: usize,
}

impl IssueWindow {
    /// Create a window with `capacity` entries.
    pub fn new(name: &str, capacity: usize) -> Self {
        IssueWindow { name: name.to_string(), entries: Vec::with_capacity(capacity), capacity }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the window holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another instruction fits.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Insert an instruction.
    pub fn insert(&mut self, id: InstrId) {
        debug_assert!(self.has_space(), "issue window overflow");
        self.entries.push(id);
    }

    /// Remove a specific instruction (issued or squashed).
    pub fn remove(&mut self, id: InstrId) {
        self.entries.retain(|&e| e != id);
    }

    /// Remove every instruction younger than `id`.
    pub fn squash_after(&mut self, id: InstrId) {
        self.entries.retain(|&e| e <= id);
    }

    /// Entries in insertion (program) order.
    pub fn iter(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.entries.iter().copied()
    }
}

// ---------------------------------------------------------------------------
// Functional units
// ---------------------------------------------------------------------------

/// A non-pipelined functional unit: it executes one instruction at a time and
/// is busy for the instruction's full latency (the paper notes that internal
/// pipelining is not modelled).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionalUnit {
    /// Display name ("FX1", "FP1", "LS", "BR", …).
    pub name: String,
    /// Instruction currently executing.
    pub current: Option<InstrId>,
    /// Cycle at which the current instruction finishes.
    pub busy_until: u64,
    /// Total cycles this unit spent busy (statistics).
    pub busy_cycles: u64,
    /// Total instructions executed by this unit.
    pub executed: u64,
}

impl FunctionalUnit {
    /// Create an idle unit.
    pub fn new(name: &str) -> Self {
        FunctionalUnit {
            name: name.to_string(),
            current: None,
            busy_until: 0,
            busy_cycles: 0,
            executed: 0,
        }
    }

    /// True when the unit can accept a new instruction at `cycle`.
    pub fn is_free(&self, cycle: u64) -> bool {
        self.current.is_none() || self.busy_until <= cycle
    }

    /// True when the unit holds an instruction that finishes at or before `cycle`.
    pub fn finishes_at(&self, cycle: u64) -> Option<InstrId> {
        match self.current {
            Some(id) if self.busy_until <= cycle => Some(id),
            _ => None,
        }
    }

    /// Start executing `id` for `latency` cycles beginning at `cycle`.
    pub fn start(&mut self, id: InstrId, cycle: u64, latency: u64) {
        debug_assert!(self.is_free(cycle));
        self.current = Some(id);
        self.busy_until = cycle + latency.max(1);
        self.busy_cycles += latency.max(1);
        self.executed += 1;
    }

    /// Release the unit (instruction finished or squashed).
    pub fn release(&mut self) {
        self.current = None;
    }

    /// Return the unit to its idle post-construction state, keeping the
    /// allocated name (used by `Simulator::reset` instead of rebuilding the
    /// unit from a cloned name).
    pub fn reset(&mut self) {
        self.current = None;
        self.busy_until = 0;
        self.busy_cycles = 0;
        self.executed = 0;
    }

    /// Squash the unit's instruction if it is younger than `id`.
    pub fn squash_after(&mut self, id: InstrId) -> Option<InstrId> {
        match self.current {
            Some(cur) if cur > id => {
                self.current = None;
                Some(cur)
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Load / store buffers
// ---------------------------------------------------------------------------

/// A load-buffer entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadEntry {
    /// Owning instruction.
    pub id: InstrId,
    /// Effective address, once computed.
    pub address: Option<u64>,
    /// Access size in bytes.
    pub size: usize,
    /// Cycle the memory transaction completes, once issued.
    pub completion: Option<u64>,
    /// Value forwarded from an older store, if any.
    pub forwarded: Option<TypedValue>,
}

/// A store-buffer entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreEntry {
    /// Owning instruction.
    pub id: InstrId,
    /// Effective address, once computed.
    pub address: Option<u64>,
    /// Access size in bytes.
    pub size: usize,
    /// Value to store, once read.
    pub value: Option<u64>,
}

/// A simple bounded buffer of load or store entries, kept in program order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessBuffer<T> {
    entries: Vec<T>,
    capacity: usize,
}

impl<T> AccessBuffer<T> {
    /// Create a buffer with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        AccessBuffer { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another entry fits.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Append an entry (program order).
    pub fn push(&mut self, entry: T) {
        debug_assert!(self.has_space(), "load/store buffer overflow");
        self.entries.push(entry);
    }

    /// Iterate entries in program order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Iterate entries mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.entries.iter_mut()
    }

    /// Remove entries matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.entries.retain(f);
    }
}

/// Load buffer.
pub type LoadBuffer = AccessBuffer<LoadEntry>;
/// Store buffer.
pub type StoreBuffer = AccessBuffer<StoreEntry>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rob_order_and_squash() {
        let mut rob = ReorderBuffer::new(4);
        assert!(rob.is_empty());
        rob.push(1);
        rob.push(2);
        rob.push(3);
        rob.push(4);
        assert!(!rob.has_space());
        assert_eq!(rob.head(), Some(1));
        let squashed = rob.squash_after(2);
        assert_eq!(squashed, vec![4, 3], "youngest first");
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.pop_head(), Some(1));
        assert_eq!(rob.pop_head(), Some(2));
        assert_eq!(rob.pop_head(), None);
    }

    #[test]
    fn issue_window_insert_remove_squash() {
        let mut w = IssueWindow::new("FX window", 3);
        w.insert(5);
        w.insert(7);
        w.insert(9);
        assert!(!w.has_space());
        w.remove(7);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![5, 9]);
        w.squash_after(5);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![5]);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn functional_unit_busy_tracking() {
        let mut fu = FunctionalUnit::new("FX1");
        assert!(fu.is_free(0));
        fu.start(3, 10, 4);
        assert!(!fu.is_free(12));
        assert!(fu.is_free(14));
        assert_eq!(fu.finishes_at(13), None);
        assert_eq!(fu.finishes_at(14), Some(3));
        assert_eq!(fu.busy_cycles, 4);
        assert_eq!(fu.executed, 1);
        fu.release();
        assert!(fu.is_free(0));
    }

    #[test]
    fn functional_unit_reset_keeps_name_clears_state() {
        let mut fu = FunctionalUnit::new("FX1");
        fu.start(3, 10, 4);
        fu.reset();
        assert_eq!(fu.name, "FX1");
        assert_eq!(fu.current, None);
        assert_eq!(fu.busy_until, 0);
        assert_eq!(fu.busy_cycles, 0);
        assert_eq!(fu.executed, 0);
        assert!(fu.is_free(0));
    }

    #[test]
    fn functional_unit_zero_latency_clamped() {
        let mut fu = FunctionalUnit::new("FX1");
        fu.start(1, 5, 0);
        assert_eq!(fu.busy_until, 6, "latency is at least one cycle");
    }

    #[test]
    fn functional_unit_squash() {
        let mut fu = FunctionalUnit::new("BR");
        fu.start(10, 0, 2);
        assert_eq!(fu.squash_after(12), None, "older instruction survives");
        assert_eq!(fu.squash_after(5), Some(10), "younger instruction squashed");
        assert!(fu.is_free(0));
    }

    #[test]
    fn access_buffer_capacity_and_retain() {
        let mut lb: LoadBuffer = AccessBuffer::new(2);
        lb.push(LoadEntry { id: 1, address: None, size: 4, completion: None, forwarded: None });
        lb.push(LoadEntry { id: 2, address: Some(8), size: 4, completion: None, forwarded: None });
        assert!(!lb.has_space());
        lb.retain(|e| e.id != 1);
        assert_eq!(lb.len(), 1);
        assert!(lb.has_space());
        assert_eq!(lb.iter().next().unwrap().id, 2);
        for e in lb.iter_mut() {
            e.completion = Some(9);
        }
        assert_eq!(lb.iter().next().unwrap().completion, Some(9));
    }
}
