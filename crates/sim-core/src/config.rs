//! Architecture configuration (the Architecture Settings window, §II-C).
//!
//! The configuration is organised exactly like the paper's settings tabs:
//! general (name, clocks), buffers (processor width), functional units,
//! cache, memory and branch prediction.  Configurations serialize to/from
//! JSON so they can be exported, shared and passed to the CLI.

use rvsim_mem::{CacheConfig, MemoryTimings};
use rvsim_predictor::BranchPredictorConfig;
use serde::{Deserialize, Serialize};

/// "Buffers" tab: superscalar width and speculation recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Instructions fetched (and decoded/renamed) per cycle.
    pub fetch_width: usize,
    /// Instructions committed (retired) per cycle.
    pub commit_width: usize,
    /// Extra cycles the front end stalls after a pipeline flush.
    pub flush_penalty: u64,
    /// Predicted-taken jumps the fetch unit can follow within a single cycle.
    pub branch_follow_limit: usize,
    /// Capacity of each issue window (FX, FP, load/store, branch).
    pub issue_window_size: usize,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            rob_size: 32,
            fetch_width: 2,
            commit_width: 2,
            flush_penalty: 2,
            branch_follow_limit: 1,
            issue_window_size: 8,
        }
    }
}

/// One integer ALU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FxUnitConfig {
    /// Display name of the unit.
    pub name: String,
    /// Whether the unit can execute M-extension multiply/divide instructions.
    pub supports_mul_div: bool,
    /// Latency of simple ALU operations.
    pub alu_latency: u64,
    /// Latency of multiplications.
    pub mul_latency: u64,
    /// Latency of divisions / remainders.
    pub div_latency: u64,
}

impl Default for FxUnitConfig {
    fn default() -> Self {
        FxUnitConfig {
            name: "FX".to_string(),
            supports_mul_div: true,
            alu_latency: 1,
            mul_latency: 3,
            div_latency: 10,
        }
    }
}

/// One floating-point ALU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpUnitConfig {
    /// Display name of the unit.
    pub name: String,
    /// Latency of add/sub/compare/move/convert operations.
    pub alu_latency: u64,
    /// Latency of multiplications.
    pub mul_latency: u64,
    /// Latency of divisions.
    pub div_latency: u64,
    /// Latency of square roots.
    pub sqrt_latency: u64,
    /// Latency of fused multiply-add operations.
    pub fma_latency: u64,
}

impl Default for FpUnitConfig {
    fn default() -> Self {
        FpUnitConfig {
            name: "FP".to_string(),
            alu_latency: 3,
            mul_latency: 4,
            div_latency: 12,
            sqrt_latency: 15,
            fma_latency: 5,
        }
    }
}

/// "Functional units" tab.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalUnitsConfig {
    /// Integer ALUs.
    pub fx_units: Vec<FxUnitConfig>,
    /// Floating-point ALUs.
    pub fp_units: Vec<FpUnitConfig>,
    /// Number of load/store address-generation units.
    pub ls_units: usize,
    /// Address-generation latency of the L/S units.
    pub ls_latency: u64,
    /// Number of branch units.
    pub branch_units: usize,
    /// Branch resolution latency.
    pub branch_latency: u64,
    /// Memory-access units (transactions started per cycle).
    pub memory_units: usize,
}

impl Default for FunctionalUnitsConfig {
    fn default() -> Self {
        FunctionalUnitsConfig {
            fx_units: vec![
                FxUnitConfig::default(),
                FxUnitConfig {
                    name: "FX2".into(),
                    supports_mul_div: false,
                    ..FxUnitConfig::default()
                },
            ],
            fp_units: vec![FpUnitConfig::default()],
            ls_units: 1,
            ls_latency: 1,
            branch_units: 1,
            branch_latency: 1,
            memory_units: 1,
        }
    }
}

/// "Memory" tab: buffers, latencies, stack and rename file sizes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Load buffer entries.
    pub load_buffer_size: usize,
    /// Store buffer entries.
    pub store_buffer_size: usize,
    /// Baseline load/store latencies (main-memory access).
    pub timings: MemoryTimings,
    /// Call-stack size in bytes (the stack occupies the bottom of memory).
    pub call_stack_size: u64,
    /// Number of speculative (rename) registers.
    pub rename_file_size: usize,
    /// Main-memory capacity in bytes.
    pub memory_capacity: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            load_buffer_size: 8,
            store_buffer_size: 8,
            timings: MemoryTimings::default(),
            call_stack_size: 4096,
            rename_file_size: 64,
            memory_capacity: 64 * 1024,
        }
    }
}

/// The complete architecture description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureConfig {
    /// Human-readable architecture name.
    pub name: String,
    /// Core clock in Hz (used to derive wall time from cycles).
    pub core_clock_hz: u64,
    /// Memory clock in Hz (informational).
    pub memory_clock_hz: u64,
    /// Buffers tab.
    pub buffers: BufferConfig,
    /// Functional units tab.
    pub units: FunctionalUnitsConfig,
    /// Cache tab.
    pub cache: CacheConfig,
    /// Memory tab.
    pub memory: MemoryConfig,
    /// Branch prediction tab.
    pub predictor: BranchPredictorConfig,
}

impl Default for ArchitectureConfig {
    fn default() -> Self {
        ArchitectureConfig {
            name: "default-superscalar".to_string(),
            core_clock_hz: 100_000_000,
            memory_clock_hz: 50_000_000,
            buffers: BufferConfig::default(),
            units: FunctionalUnitsConfig::default(),
            cache: CacheConfig::default(),
            memory: MemoryConfig::default(),
            predictor: BranchPredictorConfig::default(),
        }
    }
}

impl ArchitectureConfig {
    /// A minimal single-issue, in-order-ish configuration useful as a baseline
    /// in architecture-exploration experiments.
    pub fn scalar() -> Self {
        ArchitectureConfig {
            name: "scalar".to_string(),
            buffers: BufferConfig {
                rob_size: 4,
                fetch_width: 1,
                commit_width: 1,
                flush_penalty: 2,
                branch_follow_limit: 1,
                issue_window_size: 2,
            },
            units: FunctionalUnitsConfig {
                fx_units: vec![FxUnitConfig::default()],
                fp_units: vec![FpUnitConfig::default()],
                ls_units: 1,
                ls_latency: 1,
                branch_units: 1,
                branch_latency: 1,
                memory_units: 1,
            },
            ..Default::default()
        }
    }

    /// An aggressive 4-wide configuration.
    pub fn wide() -> Self {
        ArchitectureConfig {
            name: "wide-4".to_string(),
            buffers: BufferConfig {
                rob_size: 64,
                fetch_width: 4,
                commit_width: 4,
                flush_penalty: 3,
                branch_follow_limit: 2,
                issue_window_size: 16,
            },
            units: FunctionalUnitsConfig {
                fx_units: vec![
                    FxUnitConfig::default(),
                    FxUnitConfig { name: "FX2".into(), ..Default::default() },
                    FxUnitConfig {
                        name: "FX3".into(),
                        supports_mul_div: false,
                        ..Default::default()
                    },
                    FxUnitConfig {
                        name: "FX4".into(),
                        supports_mul_div: false,
                        ..Default::default()
                    },
                ],
                fp_units: vec![
                    FpUnitConfig::default(),
                    FpUnitConfig { name: "FP2".into(), ..Default::default() },
                ],
                ls_units: 2,
                ls_latency: 1,
                branch_units: 2,
                branch_latency: 1,
                memory_units: 2,
            },
            memory: MemoryConfig {
                rename_file_size: 128,
                load_buffer_size: 16,
                store_buffer_size: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Validate the whole configuration, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let b = &self.buffers;
        if b.rob_size == 0 {
            return Err("reorder buffer size must be at least 1".into());
        }
        if b.fetch_width == 0 || b.commit_width == 0 {
            return Err("fetch and commit width must be at least 1".into());
        }
        if b.issue_window_size == 0 {
            return Err("issue window size must be at least 1".into());
        }
        if self.units.fx_units.is_empty() {
            return Err("at least one FX unit is required".into());
        }
        if self.units.ls_units == 0 || self.units.branch_units == 0 || self.units.memory_units == 0
        {
            return Err("LS, branch and memory unit counts must be at least 1".into());
        }
        if self.memory.rename_file_size < b.rob_size {
            return Err(format!(
                "rename file size {} must be at least the ROB size {} (every in-flight instruction may need a destination register)",
                self.memory.rename_file_size, b.rob_size
            ));
        }
        if self.memory.load_buffer_size == 0 || self.memory.store_buffer_size == 0 {
            return Err("load and store buffers must have at least one entry".into());
        }
        if self.memory.call_stack_size as usize >= self.memory.memory_capacity {
            return Err("call stack does not fit into memory".into());
        }
        if !self.memory.call_stack_size.is_multiple_of(16) {
            return Err("call stack size must be 16-byte aligned (RISC-V ABI)".into());
        }
        if self.core_clock_hz == 0 {
            return Err("core clock must be non-zero".into());
        }
        self.cache.validate()?;
        self.predictor.validate()?;
        Ok(())
    }

    /// Serialize to pretty JSON (export / share configurations).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("architecture config serializes")
    }

    /// Load a configuration from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let config: ArchitectureConfig =
            serde_json::from_str(json).map_err(|e| format!("invalid architecture JSON: {e}"))?;
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_predictor::PredictorKind;

    #[test]
    fn default_config_is_valid() {
        assert!(ArchitectureConfig::default().validate().is_ok());
        assert!(ArchitectureConfig::scalar().validate().is_ok());
        assert!(ArchitectureConfig::wide().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_widths() {
        let mut c = ArchitectureConfig::default();
        c.buffers.rob_size = 0;
        assert!(c.validate().is_err());

        let mut c = ArchitectureConfig::default();
        c.buffers.fetch_width = 0;
        assert!(c.validate().is_err());

        let mut c = ArchitectureConfig::default();
        c.units.fx_units.clear();
        assert!(c.validate().is_err());

        let mut c = ArchitectureConfig::default();
        c.memory.rename_file_size = 4;
        assert!(c.validate().unwrap_err().contains("rename file"));

        let mut c = ArchitectureConfig::default();
        c.memory.call_stack_size = c.memory.memory_capacity as u64 + 16;
        assert!(c.validate().is_err());

        let mut c = ArchitectureConfig::default();
        c.memory.call_stack_size = 1000; // not 16-aligned
        assert!(c.validate().is_err());

        let mut c = ArchitectureConfig::default();
        c.cache.line_size = 17;
        assert!(c.validate().is_err(), "cache validation is included");

        let mut c = ArchitectureConfig::default();
        c.predictor.btb_size = 0;
        assert!(c.validate().is_err(), "predictor validation is included");
    }

    #[test]
    fn json_round_trip() {
        let mut c = ArchitectureConfig::wide();
        c.predictor.predictor_kind = PredictorKind::One;
        c.cache.associativity = 4;
        c.cache.line_count = 32;
        let json = c.to_json();
        let back = ArchitectureConfig::from_json(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn from_json_rejects_invalid_configs() {
        let mut c = ArchitectureConfig::default();
        c.buffers.rob_size = 0;
        let json = serde_json::to_string(&c).unwrap();
        assert!(ArchitectureConfig::from_json(&json).is_err());
        assert!(ArchitectureConfig::from_json("{not json").is_err());
    }

    #[test]
    fn presets_differ_in_width() {
        let scalar = ArchitectureConfig::scalar();
        let wide = ArchitectureConfig::wide();
        assert!(wide.buffers.fetch_width > scalar.buffers.fetch_width);
        assert!(wide.units.fx_units.len() > scalar.units.fx_units.len());
        assert!(wide.buffers.rob_size > scalar.buffers.rob_size);
    }
}
