//! Architectural + rename (speculative) register file (paper §III-B).
//!
//! Architectural registers hold the committed state; every in-flight
//! instruction with a destination gets a *speculative* physical register from
//! the rename file.  The register alias table (RAT) maps each architectural
//! register to its most recent speculative copy; the paper's per-register
//! "list of renamed copies / pointer to the architectural register" is
//! captured here by the tag ↔ architectural-register association stored in
//! each physical register.

use rvsim_isa::{DataType, RegisterFileKind, RegisterId, RegisterValue, TypedValue};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a speculative (rename) register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct PhysRegTag(pub usize);

impl std::fmt::Display for PhysRegTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tg{}", self.0)
    }
}

/// Result of reading a source operand at rename time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperandRead {
    /// The value is available now.
    Ready(TypedValue),
    /// The value will be produced by the instruction owning this tag.
    Wait(PhysRegTag),
}

/// Result of renaming a destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestRename {
    /// A speculative register was allocated; `previous` is the RAT entry that
    /// was displaced (needed to roll back on a flush).
    Allocated {
        /// Newly allocated speculative register.
        tag: PhysRegTag,
        /// Previous mapping of the architectural register, if any.
        previous: Option<PhysRegTag>,
    },
    /// The destination is `x0`; the write will be discarded.
    Discard,
    /// No free speculative register — rename must stall this cycle.
    Stall,
}

/// One speculative register.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PhysReg {
    /// The architectural register this speculative copy belongs to.
    arch: RegisterId,
    /// Produced value, once the owning instruction executed.
    value: Option<RegisterValue>,
    /// Allocated to an in-flight instruction.
    in_use: bool,
}

/// Architectural + speculative register state.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    int_arch: [RegisterValue; 32],
    fp_arch: [RegisterValue; 32],
    phys: Vec<PhysReg>,
    free: VecDeque<usize>,
    rat_int: [Option<PhysRegTag>; 32],
    rat_fp: [Option<PhysRegTag>; 32],
}

impl RegisterFile {
    /// Create a register file with `rename_file_size` speculative registers.
    pub fn new(rename_file_size: usize) -> Self {
        RegisterFile {
            int_arch: [RegisterValue::zero(); 32],
            fp_arch: [RegisterValue { bits: 0, data_type: DataType::Float }; 32],
            phys: vec![
                PhysReg { arch: RegisterId::zero(), value: None, in_use: false };
                rename_file_size
            ],
            free: (0..rename_file_size).collect(),
            rat_int: [None; 32],
            rat_fp: [None; 32],
        }
    }

    /// Number of speculative registers still free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total speculative registers.
    pub fn capacity(&self) -> usize {
        self.phys.len()
    }

    fn rat(&self, reg: RegisterId) -> Option<PhysRegTag> {
        match reg.kind {
            RegisterFileKind::Int => self.rat_int[reg.index as usize],
            RegisterFileKind::Fp => self.rat_fp[reg.index as usize],
        }
    }

    fn set_rat(&mut self, reg: RegisterId, tag: Option<PhysRegTag>) {
        match reg.kind {
            RegisterFileKind::Int => self.rat_int[reg.index as usize] = tag,
            RegisterFileKind::Fp => self.rat_fp[reg.index as usize] = tag,
        }
    }

    /// Committed value of an architectural register.
    pub fn read_arch(&self, reg: RegisterId) -> RegisterValue {
        if reg.is_zero() {
            return RegisterValue::zero();
        }
        match reg.kind {
            RegisterFileKind::Int => self.int_arch[reg.index as usize],
            RegisterFileKind::Fp => self.fp_arch[reg.index as usize],
        }
    }

    /// Directly set an architectural register (simulation initialisation:
    /// stack pointer, argument registers, …).
    pub fn write_arch(&mut self, reg: RegisterId, value: RegisterValue) {
        if reg.is_zero() {
            return;
        }
        match reg.kind {
            RegisterFileKind::Int => self.int_arch[reg.index as usize] = value,
            RegisterFileKind::Fp => self.fp_arch[reg.index as usize] = value,
        }
    }

    /// Read a source operand through the RAT: the youngest speculative copy if
    /// one exists, otherwise the architectural value.
    pub fn read_operand(&self, reg: RegisterId) -> OperandRead {
        if reg.is_zero() {
            return OperandRead::Ready(TypedValue::int(0));
        }
        match self.rat(reg) {
            Some(tag) => match self.phys[tag.0].value {
                Some(v) => OperandRead::Ready(v.typed()),
                None => OperandRead::Wait(tag),
            },
            None => OperandRead::Ready(self.read_arch(reg).typed()),
        }
    }

    /// Rename a destination register.
    pub fn rename_dest(&mut self, reg: RegisterId) -> DestRename {
        if reg.is_zero() {
            return DestRename::Discard;
        }
        let Some(index) = self.free.pop_front() else {
            return DestRename::Stall;
        };
        let previous = self.rat(reg);
        self.phys[index] = PhysReg { arch: reg, value: None, in_use: true };
        let tag = PhysRegTag(index);
        self.set_rat(reg, Some(tag));
        DestRename::Allocated { tag, previous }
    }

    /// Write the produced value into a speculative register (instruction
    /// finished executing).
    pub fn write_phys(&mut self, tag: PhysRegTag, value: RegisterValue) {
        debug_assert!(self.phys[tag.0].in_use, "write to a free rename register");
        self.phys[tag.0].value = Some(value);
    }

    /// Read a speculative register's value, if already produced.
    pub fn read_phys(&self, tag: PhysRegTag) -> Option<RegisterValue> {
        self.phys[tag.0].value
    }

    /// Architectural register a speculative register belongs to.
    pub fn phys_arch(&self, tag: PhysRegTag) -> RegisterId {
        self.phys[tag.0].arch
    }

    /// Commit a speculative register: copy its value to the architectural
    /// register, clear the RAT entry when it still points at this tag, and
    /// return the tag to the free list.
    pub fn commit(&mut self, tag: PhysRegTag) {
        let phys = self.phys[tag.0];
        debug_assert!(phys.in_use, "commit of a free rename register");
        if let Some(value) = phys.value {
            self.write_arch(phys.arch, value);
        }
        if self.rat(phys.arch) == Some(tag) {
            self.set_rat(phys.arch, None);
        }
        self.release(tag);
    }

    /// Roll back a squashed instruction's rename: restore the previous RAT
    /// mapping and free the tag.  Must be called youngest-first.
    ///
    /// The previous mapping may have committed (and been freed) since the
    /// squashed instruction renamed — in that case the architectural register
    /// is already up to date and the RAT entry is simply cleared.
    pub fn rollback(&mut self, tag: PhysRegTag, previous: Option<PhysRegTag>) {
        let arch = self.phys[tag.0].arch;
        if self.rat(arch) == Some(tag) {
            let restored =
                previous.filter(|p| self.phys[p.0].in_use && self.phys[p.0].arch == arch);
            self.set_rat(arch, restored);
        }
        self.release(tag);
    }

    fn release(&mut self, tag: PhysRegTag) {
        if self.phys[tag.0].in_use {
            self.phys[tag.0].in_use = false;
            self.phys[tag.0].value = None;
            self.free.push_back(tag.0);
        }
    }

    /// Number of speculative registers currently allocated.
    pub fn in_use_count(&self) -> usize {
        self.capacity() - self.free_count()
    }

    /// All architectural integer registers (GUI register pane).
    pub fn int_registers(&self) -> &[RegisterValue; 32] {
        &self.int_arch
    }

    /// All architectural floating-point registers.
    pub fn fp_registers(&self) -> &[RegisterValue; 32] {
        &self.fp_arch
    }

    /// Current rename of one architectural register, if any: the speculative
    /// tag plus whether its value has been produced.  O(1), used by snapshot
    /// capture instead of scanning [`Self::rename_map`].
    pub fn rename_of(&self, reg: RegisterId) -> Option<(PhysRegTag, bool)> {
        self.rat(reg).map(|tag| (tag, self.phys[tag.0].value.is_some()))
    }

    /// Current RAT mapping for display: `(arch register, speculative tag,
    /// value-ready)` for every renamed register.
    pub fn rename_map(&self) -> Vec<(RegisterId, PhysRegTag, bool)> {
        let mut out = Vec::new();
        for i in 0..32u8 {
            for reg in [RegisterId::x(i), RegisterId::f(i)] {
                if let Some(tag) = self.rat(reg) {
                    out.push((reg, tag, self.phys[tag.0].value.is_some()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf() -> RegisterFile {
        RegisterFile::new(8)
    }

    fn alloc(rf: &mut RegisterFile, reg: RegisterId) -> (PhysRegTag, Option<PhysRegTag>) {
        match rf.rename_dest(reg) {
            DestRename::Allocated { tag, previous } => (tag, previous),
            other => panic!("expected allocation, got {other:?}"),
        }
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut r = rf();
        assert_eq!(r.rename_dest(RegisterId::zero()), DestRename::Discard);
        r.write_arch(RegisterId::zero(), RegisterValue { bits: 99, data_type: DataType::Int });
        assert_eq!(r.read_arch(RegisterId::zero()).bits, 0);
        assert_eq!(r.read_operand(RegisterId::zero()), OperandRead::Ready(TypedValue::int(0)));
    }

    #[test]
    fn unrenamed_operand_reads_architectural_value() {
        let mut r = rf();
        r.write_arch(RegisterId::x(5), RegisterValue::from_typed(TypedValue::int(7)));
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Ready(TypedValue::int(7)));
    }

    #[test]
    fn renamed_operand_waits_then_forwards() {
        let mut r = rf();
        let (tag, prev) = alloc(&mut r, RegisterId::x(5));
        assert_eq!(prev, None);
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Wait(tag));
        r.write_phys(tag, RegisterValue::from_typed(TypedValue::int(42)));
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Ready(TypedValue::int(42)));
        assert_eq!(r.read_phys(tag).unwrap().as_i64(), 42);
        assert_eq!(r.phys_arch(tag), RegisterId::x(5));
    }

    #[test]
    fn chained_renames_track_previous_mapping() {
        let mut r = rf();
        let (t1, p1) = alloc(&mut r, RegisterId::x(5));
        let (t2, p2) = alloc(&mut r, RegisterId::x(5));
        assert_eq!(p1, None);
        assert_eq!(p2, Some(t1));
        assert_ne!(t1, t2);
        // Youngest mapping wins for readers.
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Wait(t2));
    }

    #[test]
    fn commit_updates_architectural_state_and_frees_tag() {
        let mut r = rf();
        let before_free = r.free_count();
        let (tag, _) = alloc(&mut r, RegisterId::x(7));
        r.write_phys(tag, RegisterValue::from_typed(TypedValue::int(13)));
        r.commit(tag);
        assert_eq!(r.read_arch(RegisterId::x(7)).as_i64(), 13);
        assert_eq!(r.free_count(), before_free);
        // RAT entry cleared: next read is architectural.
        assert_eq!(r.read_operand(RegisterId::x(7)), OperandRead::Ready(TypedValue::int(13)));
    }

    #[test]
    fn commit_of_older_copy_does_not_clobber_rat() {
        let mut r = rf();
        let (t1, _) = alloc(&mut r, RegisterId::x(5));
        let (t2, _) = alloc(&mut r, RegisterId::x(5));
        r.write_phys(t1, RegisterValue::from_typed(TypedValue::int(1)));
        r.commit(t1);
        // The younger rename t2 must still be the visible mapping.
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Wait(t2));
        assert_eq!(r.read_arch(RegisterId::x(5)).as_i64(), 1);
    }

    #[test]
    fn rollback_restores_previous_mapping_youngest_first() {
        let mut r = rf();
        r.write_arch(RegisterId::x(5), RegisterValue::from_typed(TypedValue::int(100)));
        let (t1, p1) = alloc(&mut r, RegisterId::x(5));
        let (t2, p2) = alloc(&mut r, RegisterId::x(5));
        let (t3, p3) = alloc(&mut r, RegisterId::x(6));
        // Squash youngest-first: x6 rename, then the second x5 rename.
        r.rollback(t3, p3);
        r.rollback(t2, p2);
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Wait(t1));
        assert_eq!(r.read_operand(RegisterId::x(6)), OperandRead::Ready(TypedValue::int(0)));
        r.rollback(t1, p1);
        assert_eq!(r.read_operand(RegisterId::x(5)), OperandRead::Ready(TypedValue::int(100)));
        assert_eq!(r.free_count(), 8);
    }

    #[test]
    fn rename_stalls_when_file_exhausted() {
        let mut r = RegisterFile::new(2);
        alloc(&mut r, RegisterId::x(1));
        alloc(&mut r, RegisterId::x(2));
        assert_eq!(r.rename_dest(RegisterId::x(3)), DestRename::Stall);
        assert_eq!(r.in_use_count(), 2);
    }

    #[test]
    fn fp_registers_are_independent_from_int() {
        let mut r = rf();
        let (ti, _) = alloc(&mut r, RegisterId::x(4));
        let (tf, _) = alloc(&mut r, RegisterId::f(4));
        r.write_phys(ti, RegisterValue::from_typed(TypedValue::int(3)));
        r.write_phys(tf, RegisterValue::from_typed(TypedValue::float(1.5)));
        r.commit(ti);
        r.commit(tf);
        assert_eq!(r.read_arch(RegisterId::x(4)).as_i64(), 3);
        assert_eq!(r.read_arch(RegisterId::f(4)).as_f32(), 1.5);
    }

    #[test]
    fn rename_map_reports_pending_and_ready() {
        let mut r = rf();
        let (t1, _) = alloc(&mut r, RegisterId::x(5));
        let (_t2, _) = alloc(&mut r, RegisterId::f(2));
        r.write_phys(t1, RegisterValue::from_typed(TypedValue::int(1)));
        let map = r.rename_map();
        assert_eq!(map.len(), 2);
        let x5 = map.iter().find(|(reg, _, _)| *reg == RegisterId::x(5)).unwrap();
        assert!(x5.2, "x5 value produced");
        let f2 = map.iter().find(|(reg, _, _)| *reg == RegisterId::f(2)).unwrap();
        assert!(!f2.2, "f2 still pending");
    }

    #[test]
    fn tag_display() {
        assert_eq!(PhysRegTag(4).to_string(), "tg4");
    }
}
