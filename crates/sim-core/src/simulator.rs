//! The simulation step manager and the complete processor model.
//!
//! One call to [`Simulator::step`] advances the processor by one clock cycle.
//! The stages are evaluated in reverse pipeline order (commit → write-back →
//! memory → issue → dispatch → fetch) so an instruction can leave a resource
//! and another enter it within the same cycle — the Rust equivalent of the
//! paper's "two sub-step" functional-unit update (§III-A).
//!
//! The simulate loop is allocation-free: the whole program is predecoded at
//! construction ([`crate::predecode::PredecodedProgram`]), so fetch — and
//! therefore every mispredict replay and every `step_back` re-simulation —
//! is an array index, execution runs compiled semantics expressions, and the
//! in-flight window lives in a ring ([`crate::inflight::InFlightRing`])
//! instead of a `BTreeMap`.

use crate::config::{ArchitectureConfig, FpUnitConfig, FxUnitConfig};
use crate::inflight::InFlightRing;
use crate::instruction::{DestOperand, InstrId, InstructionState, SimCode, SourceOperand};
use crate::log::DebugLog;
use crate::predecode::{DescSemantics, LatencyClass, PredecodedInstr, PredecodedProgram};
use crate::register_file::{DestRename, OperandRead, RegisterFile};
use crate::stats::{SimulationStatistics, UnitUtilization};
use crate::trace::{MemEffect, RetireEvent};
use crate::units::{
    FunctionalUnit, IssueWindow, LoadBuffer, LoadEntry, ReorderBuffer, StoreBuffer, StoreEntry,
};
use rvsim_asm::{assemble, AssemblerOptions, Program};
use rvsim_isa::{
    Bindings, DataType, Exception, FunctionalClass, InstructionSet, RegisterId, RegisterValue,
    TypedValue, SYM_PC,
};
use rvsim_mem::{MemorySettings, MemorySubsystem};
use rvsim_predictor::BranchPredictor;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Why the simulation stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HaltReason {
    /// The pipeline drained after the program ran past its last instruction.
    PipelineEmpty,
    /// The main routine returned (the return jump left the program).
    MainReturned,
    /// An exception reached commit.
    Exception(Exception),
    /// `run` hit its cycle budget.
    MaxCyclesReached,
}

/// Result of [`Simulator::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Why the run stopped.
    pub halt: HaltReason,
    /// Total cycles executed.
    pub cycles: u64,
    /// Full statistics at the end of the run.
    pub statistics: SimulationStatistics,
}

/// The complete processor simulator.
#[derive(Debug)]
pub struct Simulator {
    config: ArchitectureConfig,
    program: Program,
    predecoded: Arc<PredecodedProgram>,
    initial_memory: Vec<u8>,

    mem: MemorySubsystem,
    regs: RegisterFile,
    predictor: BranchPredictor,

    rob: ReorderBuffer,
    fx_window: IssueWindow,
    fp_window: IssueWindow,
    ls_window: IssueWindow,
    branch_window: IssueWindow,
    fx_units: Vec<(FunctionalUnit, FxUnitConfig)>,
    fp_units: Vec<(FunctionalUnit, FpUnitConfig)>,
    ls_units: Vec<FunctionalUnit>,
    branch_units: Vec<FunctionalUnit>,
    load_buffer: LoadBuffer,
    store_buffer: StoreBuffer,

    in_flight: InFlightRing,
    fetch_buffer: VecDeque<InstrId>,

    pc: u64,
    cycle: u64,
    next_id: InstrId,
    fetch_stall_until: u64,
    mem_issues_this_cycle: usize,
    halted: Option<HaltReason>,
    main_returned: bool,

    stats: SimulationStatistics,
    /// Dynamic instruction mix keyed by dense `DescriptorId` — converted to
    /// mnemonic strings only in [`Simulator::statistics`].
    dyn_mix: Vec<u64>,
    log: DebugLog,
    program_end: u64,
    stack_top: u64,

    trace_enabled: bool,
    retire_log: Vec<RetireEvent>,
}

impl Simulator {
    // ------------------------------------------------------------ construction

    /// Build a simulator from an already assembled [`Program`].
    pub fn new(program: Program, config: &ArchitectureConfig) -> Result<Self, String> {
        Self::with_memory(program, config, MemorySettings::new())
    }

    /// Build a simulator from a program plus user-defined memory arrays
    /// (the Memory Settings window).
    pub fn with_memory(
        program: Program,
        config: &ArchitectureConfig,
        memory_settings: MemorySettings,
    ) -> Result<Self, String> {
        config.validate()?;
        let isa = InstructionSet::rv32imf();
        program.validate_against(&isa)?;
        // Decode once: every later fetch (including mispredict replays and
        // `step_back` re-simulation) is an array index into this table.
        let predecoded = Arc::new(PredecodedProgram::new(&program, &isa)?);

        let mut mem = MemorySubsystem::new(
            config.memory.memory_capacity,
            config.cache.clone(),
            config.memory.timings,
        )?;

        // Data layout: stack at the bottom, then user arrays, then program data
        // (the assembler already placed program data at its data_base).
        program.load_data(|addr, bytes| {
            mem.memory_mut()
                .write_bytes(addr, bytes)
                .unwrap_or_else(|e| panic!("program data does not fit in memory: {e}"));
        });
        // Memory-settings arrays live right after the call stack — the same
        // layout `from_assembly_with_memory` used when it exported their
        // labels to the assembler, so the symbol addresses and the data agree.
        if !memory_settings.arrays.is_empty() {
            memory_settings.allocate(mem.memory_mut(), config.memory.call_stack_size)?;
        }

        let program_end = program.len() as u64 * 4;
        let stack_top = config.memory.call_stack_size;

        let mut sim = Simulator {
            initial_memory: mem.memory().bytes().to_vec(),
            regs: RegisterFile::new(config.memory.rename_file_size),
            predictor: BranchPredictor::new(config.predictor.clone())?,
            rob: ReorderBuffer::new(config.buffers.rob_size),
            fx_window: IssueWindow::new("FX issue window", config.buffers.issue_window_size),
            fp_window: IssueWindow::new("FP issue window", config.buffers.issue_window_size),
            ls_window: IssueWindow::new("L/S issue window", config.buffers.issue_window_size),
            branch_window: IssueWindow::new(
                "Branch issue window",
                config.buffers.issue_window_size,
            ),
            fx_units: config
                .units
                .fx_units
                .iter()
                .enumerate()
                .map(|(i, c)| (FunctionalUnit::new(&format!("FX{}", i + 1)), c.clone()))
                .collect(),
            fp_units: config
                .units
                .fp_units
                .iter()
                .enumerate()
                .map(|(i, c)| (FunctionalUnit::new(&format!("FP{}", i + 1)), c.clone()))
                .collect(),
            ls_units: (0..config.units.ls_units)
                .map(|i| FunctionalUnit::new(&format!("LS{}", i + 1)))
                .collect(),
            branch_units: (0..config.units.branch_units)
                .map(|i| FunctionalUnit::new(&format!("BR{}", i + 1)))
                .collect(),
            load_buffer: LoadBuffer::new(config.memory.load_buffer_size),
            store_buffer: StoreBuffer::new(config.memory.store_buffer_size),
            in_flight: InFlightRing::new(1),
            fetch_buffer: VecDeque::new(),
            pc: program.entry_point,
            cycle: 0,
            next_id: 1,
            fetch_stall_until: 0,
            mem_issues_this_cycle: 0,
            halted: None,
            main_returned: false,
            stats: SimulationStatistics {
                core_clock_hz: config.core_clock_hz,
                ..Default::default()
            },
            dyn_mix: vec![0; predecoded.descriptor_count()],
            log: DebugLog::new(),
            program_end,
            stack_top,
            trace_enabled: false,
            retire_log: Vec::new(),
            mem,
            config: config.clone(),
            predecoded,
            program,
        };
        // Static instruction mix is known up front.
        for (mnemonic, count) in sim.program.static_mix() {
            sim.stats.static_mix.insert(mnemonic, count as u64);
        }
        // Register ABI state: sp at the top of the call stack, ra at the exit
        // sentinel so that `ret` from the entry routine ends the simulation.
        sim.init_registers();
        Ok(sim)
    }

    /// Assemble `source` and build a simulator for it.
    pub fn from_assembly(source: &str, config: &ArchitectureConfig) -> Result<Self, String> {
        Self::from_assembly_with_memory(source, config, MemorySettings::new())
    }

    /// Assemble `source` with user-defined `extern` arrays available as symbols.
    pub fn from_assembly_with_memory(
        source: &str,
        config: &ArchitectureConfig,
        memory_settings: MemorySettings,
    ) -> Result<Self, String> {
        config.validate()?;
        // Place the user arrays right after the call stack, then let the
        // assembler place program data after them.
        let mut scratch = rvsim_mem::MainMemory::new(config.memory.memory_capacity);
        let placed = memory_settings.allocate(&mut scratch, config.memory.call_stack_size)?;
        let user_data_end = placed
            .iter()
            .map(|p| p.address + p.size as u64)
            .max()
            .unwrap_or(config.memory.call_stack_size);
        let mut options =
            AssemblerOptions { data_base: align_up(user_data_end, 16), ..Default::default() };
        for p in &placed {
            options.extra_symbols.insert(p.name.clone(), p.address as i64);
        }
        let isa = InstructionSet::rv32imf();
        let program = assemble(source, &isa, &options)
            .map_err(|errs| errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n"))?;
        Self::with_memory(program, config, memory_settings)
    }

    fn init_registers(&mut self) {
        self.regs.write_arch(
            RegisterId::sp(),
            RegisterValue::from_typed(TypedValue::int(self.stack_top as i32)),
        );
        self.regs.write_arch(
            RegisterId::ra(),
            RegisterValue::from_typed(TypedValue::int(self.program_end as i32)),
        );
    }

    // ----------------------------------------------------------------- access

    /// The architecture configuration in use.
    pub fn config(&self) -> &ArchitectureConfig {
        &self.config
    }

    /// The assembled program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The predecoded form of the program (decode-once fetch table).
    pub fn predecoded(&self) -> &PredecodedProgram {
        &self.predecoded
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current fetch program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Why the simulation halted, if it has.
    pub fn halt_reason(&self) -> Option<&HaltReason> {
        self.halted.as_ref()
    }

    /// True once the simulation has ended.
    pub fn is_halted(&self) -> bool {
        self.halted.is_some()
    }

    /// Committed value of integer register `xi` as a signed 32-bit value.
    pub fn int_register(&self, index: u8) -> i64 {
        self.regs.read_arch(RegisterId::x(index)).as_i64()
    }

    /// Committed value of floating-point register `fi`.
    pub fn fp_register(&self, index: u8) -> f32 {
        self.regs.read_arch(RegisterId::f(index)).as_f32()
    }

    /// Committed value of an arbitrary register.
    pub fn register(&self, reg: RegisterId) -> RegisterValue {
        self.regs.read_arch(reg)
    }

    /// The register file (GUI access).
    pub fn register_file(&self) -> &RegisterFile {
        &self.regs
    }

    /// The memory subsystem (GUI / memory-editor access).
    pub fn memory(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// The branch predictor.
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// The debug log.
    pub fn log(&self) -> &DebugLog {
        &self.log
    }

    /// Enable or disable the retirement trace.  Enabling clears any events
    /// recorded so far; with the trace on, every committed instruction
    /// appends a [`RetireEvent`] describing its architectural effects.
    pub fn set_retirement_trace(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
        self.retire_log.clear();
    }

    /// Events recorded since the trace was enabled (or the last reset).
    pub fn retirement_trace(&self) -> &[RetireEvent] {
        &self.retire_log
    }

    /// Drain the recorded retirement trace, leaving tracing enabled.
    pub fn take_retirement_trace(&mut self) -> Vec<RetireEvent> {
        std::mem::take(&mut self.retire_log)
    }

    /// In-flight instructions in program order (GUI block contents).
    pub fn in_flight(&self) -> impl Iterator<Item = &SimCode> {
        self.in_flight.iter()
    }

    /// O(1) lookup of one in-flight instruction by id (snapshot capture).
    pub fn in_flight_by_id(&self, id: InstrId) -> Option<&SimCode> {
        self.in_flight.get(id)
    }

    /// Reorder-buffer ids in program order, without allocating.
    pub fn rob_ids(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.rob.iter()
    }

    /// The right-hand-panel headline numbers, without materialising the full
    /// (allocating) [`SimulationStatistics`] object.
    pub fn headline(&self) -> crate::snapshot::HeadlineStats {
        crate::snapshot::HeadlineStats {
            cycles: self.cycle,
            committed: self.stats.committed,
            ipc: if self.cycle == 0 {
                0.0
            } else {
                self.stats.committed as f64 / self.cycle as f64
            },
            branch_accuracy: self.predictor.stats().accuracy(),
            flops: self.stats.flops,
            cache_hit_rate: self.mem.stats().hit_ratio(),
        }
    }

    /// Full statistics, merging step-manager counters with the predictor and
    /// memory statistics.  This is the serialization boundary where the
    /// `DescriptorId`-keyed dynamic mix becomes mnemonic-keyed.
    pub fn statistics(&self) -> SimulationStatistics {
        let mut s = self.stats.clone();
        s.cycles = self.cycle;
        s.predictor = *self.predictor.stats();
        s.memory = *self.mem.stats();
        s.dynamic_mix = BTreeMap::new();
        for (index, &count) in self.dyn_mix.iter().enumerate() {
            if count > 0 {
                let name = self.predecoded.name(rvsim_isa::DescriptorId(index as u16));
                s.dynamic_mix.insert(name.as_str().to_string(), count);
            }
        }
        s.unit_utilization = self
            .all_units()
            .map(|u| UnitUtilization {
                name: u.name.clone(),
                busy_cycles: u.busy_cycles,
                executed: u.executed,
            })
            .collect();
        s
    }

    fn all_units(&self) -> impl Iterator<Item = &FunctionalUnit> {
        self.fx_units
            .iter()
            .map(|(u, _)| u)
            .chain(self.fp_units.iter().map(|(u, _)| u))
            .chain(self.ls_units.iter())
            .chain(self.branch_units.iter())
    }

    // ------------------------------------------------------------------- run

    /// Run until the simulation halts or `max_cycles` is reached.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, String> {
        while self.halted.is_none() {
            if self.cycle >= max_cycles {
                self.halted = Some(HaltReason::MaxCyclesReached);
                break;
            }
            self.step();
        }
        Ok(RunResult {
            halt: self.halted.clone().unwrap_or(HaltReason::MaxCyclesReached),
            cycles: self.cycle,
            statistics: self.statistics(),
        })
    }

    /// Restart the simulation from cycle 0 with the same program,
    /// configuration and initial memory contents.
    pub fn reset(&mut self) {
        self.mem = MemorySubsystem::new(
            self.config.memory.memory_capacity,
            self.config.cache.clone(),
            self.config.memory.timings,
        )
        .expect("configuration already validated");
        self.mem
            .memory_mut()
            .write_bytes(0, &self.initial_memory)
            .expect("initial image fits by construction");
        self.regs = RegisterFile::new(self.config.memory.rename_file_size);
        self.predictor.reset();
        self.rob = ReorderBuffer::new(self.config.buffers.rob_size);
        let iw = self.config.buffers.issue_window_size;
        self.fx_window = IssueWindow::new("FX issue window", iw);
        self.fp_window = IssueWindow::new("FP issue window", iw);
        self.ls_window = IssueWindow::new("L/S issue window", iw);
        self.branch_window = IssueWindow::new("Branch issue window", iw);
        for (u, _) in &mut self.fx_units {
            u.reset();
        }
        for (u, _) in &mut self.fp_units {
            u.reset();
        }
        for u in &mut self.ls_units {
            u.reset();
        }
        for u in &mut self.branch_units {
            u.reset();
        }
        self.load_buffer = LoadBuffer::new(self.config.memory.load_buffer_size);
        self.store_buffer = StoreBuffer::new(self.config.memory.store_buffer_size);
        self.in_flight.reset(1);
        self.fetch_buffer.clear();
        self.pc = self.program.entry_point;
        self.cycle = 0;
        self.next_id = 1;
        self.fetch_stall_until = 0;
        self.mem_issues_this_cycle = 0;
        self.halted = None;
        self.main_returned = false;
        let static_mix = std::mem::take(&mut self.stats.static_mix);
        self.stats = SimulationStatistics {
            core_clock_hz: self.config.core_clock_hz,
            static_mix,
            ..Default::default()
        };
        self.dyn_mix.fill(0);
        self.log.clear();
        // The trace must restart from scratch so that a reset + replay (and
        // therefore `step_back`) reproduces the original event stream instead
        // of appending to it.
        self.retire_log.clear();
        self.init_registers();
    }

    /// Step one cycle backwards.  As in the paper (§III-B) this is implemented
    /// as a deterministic forward re-simulation of `cycle − 1` cycles — every
    /// re-fetched instruction is an index into the predecoded table, so the
    /// replay does no decoding at all.
    pub fn step_back(&mut self) {
        let target = self.cycle.saturating_sub(1);
        self.reset();
        for _ in 0..target {
            self.step();
        }
    }

    /// Advance the simulation by one clock cycle.
    pub fn step(&mut self) {
        if self.halted.is_some() {
            return;
        }
        let cycle = self.cycle;
        self.mem_issues_this_cycle = 0;

        // One shared handle to the predecoded table for the whole cycle;
        // the stages borrow it so the hot loop does no refcount traffic.
        let pp = Arc::clone(&self.predecoded);

        self.stage_commit(&pp, cycle);
        if self.halted.is_some() {
            self.cycle += 1;
            return;
        }
        self.stage_writeback(&pp, cycle);
        self.stage_memory(&pp, cycle);
        self.stage_issue(cycle);
        self.stage_dispatch(&pp, cycle);
        self.stage_fetch(&pp, cycle);

        self.cycle += 1;
        self.check_end_of_program();
    }

    // ---------------------------------------------------------------- commit

    fn stage_commit(&mut self, pp: &PredecodedProgram, cycle: u64) {
        for _ in 0..self.config.buffers.commit_width {
            let Some(head) = self.rob.head() else { break };
            let Some(code) = self.in_flight.get(head) else { break };
            if !code.is_done() {
                break;
            }
            let mut code = self.in_flight.take(head).unwrap();
            self.in_flight.trim();
            self.rob.pop_head();
            let entry = pp.entry(code.pc).expect("committed pc is predecoded");

            // Exceptions are raised at commit (paper §III-B).
            if let Some(exception) = code.exception.clone() {
                self.log.push(cycle, format!("exception at pc 0x{:x}: {}", code.pc, exception));
                self.halted = Some(HaltReason::Exception(exception));
                code.state = InstructionState::Committed;
                code.timestamps.commit = Some(cycle);
                return;
            }

            // Stores write memory at commit so speculative stores never leak.
            let mut store_effect: Option<MemEffect> = None;
            if code.class == FunctionalClass::Store {
                let store = self
                    .store_buffer
                    .iter()
                    .find(|e| e.id == head)
                    .cloned()
                    .expect("committed store has a buffer entry");
                let (address, value) = (
                    store.address.expect("store address computed"),
                    store.value.expect("store value ready"),
                );
                store_effect = Some(MemEffect { address, size: store.size, value });
                match self.mem.store(address, store.size, value, cycle) {
                    Ok(tx) => {
                        code.cache_hit = Some(tx.cache_hit);
                        code.timestamps.memory = Some(cycle);
                    }
                    Err(e) => {
                        let exception = Exception::InvalidAddress { address };
                        self.log.push(cycle, format!("store fault at 0x{address:x}: {e}"));
                        self.halted = Some(HaltReason::Exception(exception));
                        return;
                    }
                }
                self.store_buffer.retain(|e| e.id != head);
                self.stats.stores += 1;
            }
            if code.class == FunctionalClass::Load {
                self.load_buffer.retain(|e| e.id != head);
                self.stats.loads += 1;
            }

            // Register write-back becomes architectural.
            if let Some(dest) = &code.dest {
                if let Some(tag) = dest.tag {
                    self.regs.commit(tag);
                }
            }

            // Statistics.  The dynamic mix is a dense per-descriptor counter;
            // it becomes a mnemonic-keyed map only in `statistics()`.
            self.stats.committed += 1;
            self.stats.flops += code.flops as u64;
            self.dyn_mix[code.desc.index()] += 1;
            if code.class == FunctionalClass::Branch {
                if entry.is_cond_branch {
                    self.stats.branches += 1;
                } else {
                    self.stats.jumps += 1;
                }
                if code.actual_next_pc == Some(self.program_end) {
                    self.main_returned = true;
                }
            }

            if self.trace_enabled {
                let dest = code.dest.as_ref().and_then(|d| {
                    d.tag?;
                    code.result.map(|v| (d.arch, v.bits()))
                });
                let load =
                    if code.class == FunctionalClass::Load {
                        let size = entry.memory.map(|m| m.size).unwrap_or(0);
                        code.effective_address
                            .zip(code.loaded_value)
                            .map(|(address, v)| MemEffect { address, size, value: v.bits() })
                    } else {
                        None
                    };
                // `committed` was incremented above, so `committed - 1` is
                // this instruction's 0-based program-order retirement index.
                // It stays monotonic across `take_retirement_trace` drains
                // (matching the ISS) and restarts on `reset`.
                self.retire_log.push(RetireEvent {
                    seq: self.stats.committed - 1,
                    cycle,
                    pc: code.pc,
                    mnemonic: code.mnemonic,
                    dest,
                    store: store_effect,
                    load,
                    next_pc: code.actual_next_pc,
                });
            }

            code.state = InstructionState::Committed;
            code.timestamps.commit = Some(cycle);
        }
    }

    // ------------------------------------------------------------- write-back

    fn stage_writeback(&mut self, pp: &PredecodedProgram, cycle: u64) {
        // Gather all functional-unit completions for this cycle, oldest first.
        let mut finished: Vec<InstrId> = Vec::new();
        for (unit, _) in &mut self.fx_units {
            if let Some(id) = unit.finishes_at(cycle) {
                unit.release();
                finished.push(id);
            }
        }
        for (unit, _) in &mut self.fp_units {
            if let Some(id) = unit.finishes_at(cycle) {
                unit.release();
                finished.push(id);
            }
        }
        for unit in &mut self.ls_units {
            if let Some(id) = unit.finishes_at(cycle) {
                unit.release();
                finished.push(id);
            }
        }
        for unit in &mut self.branch_units {
            if let Some(id) = unit.finishes_at(cycle) {
                unit.release();
                finished.push(id);
            }
        }
        finished.sort_unstable();

        for id in finished {
            let Some(mut code) = self.in_flight.take(id) else { continue };
            let entry = pp.entry(code.pc).expect("executed pc is predecoded");
            let sem = pp.semantics(code.desc);
            match code.class {
                FunctionalClass::Fx | FunctionalClass::Fp => {
                    self.finish_alu(&mut code, entry, sem, cycle);
                }
                FunctionalClass::Branch => {
                    self.finish_branch(&mut code, entry, sem, cycle);
                }
                FunctionalClass::Load => {
                    self.finish_load_address(&mut code, entry, sem, cycle);
                }
                FunctionalClass::Store => {
                    self.finish_store_address(&mut code, entry, sem, cycle);
                }
            }
            self.in_flight.put(code);
        }
    }

    /// Bind the instruction's known source values, immediates and pc for a
    /// compiled-expression evaluation — inline storage, no hashing.
    fn bindings_for(code: &SimCode, entry: &PredecodedInstr) -> Bindings {
        let mut bindings = Bindings::new();
        for src in code.sources.iter() {
            if let Some(v) = src.value {
                bindings.bind(src.arg, v);
            }
        }
        for imm in entry.imms.iter() {
            bindings.bind(imm.arg, TypedValue::int(imm.value as i32));
        }
        bindings.bind(SYM_PC, TypedValue::int(code.pc as i32));
        bindings
    }

    fn finish_alu(
        &mut self,
        code: &mut SimCode,
        entry: &PredecodedInstr,
        sem: &DescSemantics,
        cycle: u64,
    ) {
        if let Some(expr) = &sem.interpretable {
            let bindings = Self::bindings_for(code, entry);
            match expr.run(&bindings) {
                Ok(output) => {
                    if let Some((_, value)) = output.assignments.first() {
                        self.write_dest(code, *value);
                    }
                }
                Err(exception) => {
                    code.exception = Some(exception);
                }
            }
        }
        code.state = InstructionState::Done;
        code.timestamps.execute = Some(cycle);
    }

    fn finish_branch(
        &mut self,
        code: &mut SimCode,
        entry: &PredecodedInstr,
        sem: &DescSemantics,
        cycle: u64,
    ) {
        let bindings = Self::bindings_for(code, entry);
        // Direction.
        let taken = match &sem.condition {
            Some(cond) => match cond.run(&bindings) {
                Ok(out) => out.result.map(|v| v.is_true()).unwrap_or(false),
                Err(e) => {
                    code.exception = Some(e);
                    false
                }
            },
            None => true,
        };
        // Target.
        let target = match &sem.target {
            Some(t) => match t.run(&bindings) {
                Ok(out) => out.result.map(|v| v.as_u32() as u64).unwrap_or(code.pc + 4),
                Err(e) => {
                    code.exception = Some(e);
                    code.pc + 4
                }
            },
            None => code.pc + 4,
        };
        // Link register write (jal/jalr).
        if let Some(expr) = &sem.interpretable {
            if let Ok(out) = expr.run(&bindings) {
                if let Some((_, value)) = out.assignments.first() {
                    self.write_dest(code, *value);
                }
            }
        }

        let actual_next = if taken { target } else { code.pc + 4 };
        code.actual_taken = Some(taken);
        code.actual_next_pc = Some(actual_next);
        code.state = InstructionState::Done;
        code.timestamps.execute = Some(cycle);

        // Train the predictor.
        if entry.is_cond_branch {
            self.predictor.update(code.pc, code.predicted_taken, taken, target);
        } else {
            self.predictor.train_btb(code.pc, target);
        }

        // Misprediction: flush everything younger and redirect the front end.
        if actual_next != code.predicted_next_pc {
            code.mispredicted = true;
            self.log.push(
                cycle,
                format!(
                    "mispredicted {} at 0x{:x}: predicted 0x{:x}, actual 0x{:x}",
                    code.mnemonic, code.pc, code.predicted_next_pc, actual_next
                ),
            );
            self.flush_after(code.id, actual_next, cycle);
        }
    }

    fn finish_load_address(
        &mut self,
        code: &mut SimCode,
        entry: &PredecodedInstr,
        sem: &DescSemantics,
        cycle: u64,
    ) {
        let bindings = Self::bindings_for(code, entry);
        let address_expr = sem.address.as_ref().expect("load has an address expression");
        match address_expr.run(&bindings) {
            Ok(out) => {
                let address = out.result.map(|v| v.as_u32() as u64).unwrap_or(0);
                code.effective_address = Some(address);
                for load in self.load_buffer.iter_mut() {
                    if load.id == code.id {
                        load.address = Some(address);
                    }
                }
                code.state = InstructionState::WaitingMemory;
            }
            Err(e) => {
                code.exception = Some(e);
                code.state = InstructionState::Done;
            }
        }
        code.timestamps.execute = Some(cycle);
    }

    fn finish_store_address(
        &mut self,
        code: &mut SimCode,
        entry: &PredecodedInstr,
        sem: &DescSemantics,
        cycle: u64,
    ) {
        let bindings = Self::bindings_for(code, entry);
        let address_expr = sem.address.as_ref().expect("store has an address expression");
        let memory = entry.memory.expect("store has a memory descriptor");
        match address_expr.run(&bindings) {
            Ok(out) => {
                let address = out.result.map(|v| v.as_u32() as u64).unwrap_or(0);
                code.effective_address = Some(address);
                let value = entry
                    .store_data
                    .and_then(|i| code.sources[i as usize].value)
                    .unwrap_or_default();
                code.store_value = Some(value);
                let raw = match memory.data_type {
                    DataType::Float => value.bits() & 0xffff_ffff,
                    DataType::Double => value.bits(),
                    _ => value.as_u64(),
                };
                for store in self.store_buffer.iter_mut() {
                    if store.id == code.id {
                        store.address = Some(address);
                        store.value = Some(raw);
                    }
                }
                code.state = InstructionState::Done;
            }
            Err(e) => {
                code.exception = Some(e);
                code.state = InstructionState::Done;
            }
        }
        code.timestamps.execute = Some(cycle);
    }

    /// Record the destination value, write the rename register and wake every
    /// waiting consumer.
    fn write_dest(&mut self, code: &mut SimCode, value: TypedValue) {
        code.result = Some(value);
        let Some(dest) = &code.dest else { return };
        let Some(tag) = dest.tag else { return };
        // Tag the value with the destination's declared data type for display.
        let stored = RegisterValue { bits: value.bits(), data_type: dest.data_type };
        self.regs.write_phys(tag, stored);
        let typed = stored.typed();
        for other in self.in_flight.iter_mut() {
            other.wake_up(tag, typed);
        }
    }

    /// Squash every instruction younger than `id`, roll back renames, redirect
    /// the fetch unit to `redirect` and apply the flush penalty.
    fn flush_after(&mut self, id: InstrId, redirect: u64, cycle: u64) {
        // Wrong-path instructions still in the fetch buffer carry no renames.
        let fetched: Vec<InstrId> = self.fetch_buffer.drain(..).collect();
        for fid in fetched {
            if let Some(mut code) = self.in_flight.take(fid) {
                code.state = InstructionState::Squashed;
                self.stats.squashed += 1;
            }
        }
        // Dispatched instructions: youngest first so RAT rollback is correct.
        let squashed = self.rob.squash_after(id);
        for sid in squashed {
            if let Some(mut code) = self.in_flight.take(sid) {
                if let Some(DestOperand { tag: Some(tag), previous, .. }) = code.dest {
                    self.regs.rollback(tag, previous);
                }
                code.state = InstructionState::Squashed;
                self.stats.squashed += 1;
            }
            self.fx_window.remove(sid);
            self.fp_window.remove(sid);
            self.ls_window.remove(sid);
            self.branch_window.remove(sid);
        }
        // No ring trim here: the flushing branch itself is still taken out by
        // the write-back stage and must be able to return to its slot.
        for (unit, _) in &mut self.fx_units {
            unit.squash_after(id);
        }
        for (unit, _) in &mut self.fp_units {
            unit.squash_after(id);
        }
        for unit in &mut self.ls_units {
            unit.squash_after(id);
        }
        for unit in &mut self.branch_units {
            unit.squash_after(id);
        }
        self.load_buffer.retain(|e| e.id <= id);
        self.store_buffer.retain(|e| e.id <= id);

        self.pc = redirect;
        self.fetch_stall_until = cycle + 1 + self.config.buffers.flush_penalty;
        self.stats.rob_flushes += 1;
    }

    // ---------------------------------------------------------------- memory

    fn stage_memory(&mut self, pp: &PredecodedProgram, cycle: u64) {
        // 1. Complete loads whose data is available.
        let completed: Vec<(InstrId, TypedValue)> = self
            .load_buffer
            .iter()
            .filter(|e| e.completion.map(|c| c <= cycle).unwrap_or(false) && e.forwarded.is_some())
            .map(|e| (e.id, e.forwarded.unwrap()))
            .collect();
        for (id, raw_value) in completed {
            let Some(mut code) = self.in_flight.take(id) else { continue };
            let entry = pp.entry(code.pc).expect("load pc is predecoded");
            let memory = entry.memory.expect("load has memory descriptor");
            let value =
                convert_loaded(raw_value.bits(), memory.size, memory.sign_extend, memory.data_type);
            code.loaded_value = Some(value);
            self.write_dest(&mut code, value);
            code.state = InstructionState::Done;
            code.timestamps.memory = Some(cycle);
            self.in_flight.put(code);
            // The buffer entry is kept until commit for occupancy accounting,
            // but marked complete so it is not re-issued.
        }

        // 2. Decide what each pending load can do this cycle.
        enum Action {
            Forward(u64),
            Issue,
        }
        let mut actions: Vec<(InstrId, Action)> = Vec::new();
        for entry in self.load_buffer.iter() {
            let Some(address) = entry.address else { continue };
            if entry.completion.is_some() {
                continue;
            }
            // Store-queue search: older stores only, youngest matching first.
            let mut blocked = false;
            let mut forward: Option<u64> = None;
            for store in self.store_buffer.iter().filter(|s| s.id < entry.id) {
                match store.address {
                    None => {
                        blocked = true; // unknown address — conservative wait
                    }
                    Some(saddr) => {
                        let overlap = ranges_overlap(saddr, store.size, address, entry.size);
                        if overlap {
                            if saddr == address && store.size == entry.size {
                                forward = store.value; // youngest older store wins
                                blocked = forward.is_none();
                            } else {
                                blocked = true; // partial overlap — wait for commit
                            }
                        }
                    }
                }
            }
            if blocked {
                continue;
            }
            if let Some(value) = forward {
                actions.push((entry.id, Action::Forward(value)));
            } else if self.mem_issues_this_cycle < self.config.units.memory_units {
                actions.push((entry.id, Action::Issue));
                self.mem_issues_this_cycle += 1;
            }
        }

        // 3. Apply the decisions.
        for (id, action) in actions {
            match action {
                Action::Forward(raw) => {
                    for entry in self.load_buffer.iter_mut() {
                        if entry.id == id {
                            entry.forwarded = Some(TypedValue::long(raw as i64));
                            entry.completion = Some(cycle + 1);
                        }
                    }
                }
                Action::Issue => {
                    let (address, size) = {
                        let entry = self.load_buffer.iter().find(|e| e.id == id).unwrap();
                        (entry.address.unwrap(), entry.size)
                    };
                    match self.mem.load(address, size, cycle) {
                        Ok(tx) => {
                            for entry in self.load_buffer.iter_mut() {
                                if entry.id == id {
                                    entry.forwarded = Some(TypedValue::long(tx.value as i64));
                                    entry.completion = Some(tx.completion_cycle);
                                }
                            }
                            if let Some(code) = self.in_flight.get_mut(id) {
                                code.cache_hit = Some(tx.cache_hit);
                            }
                        }
                        Err(_) => {
                            if let Some(code) = self.in_flight.get_mut(id) {
                                code.exception = Some(Exception::InvalidAddress { address });
                                code.state = InstructionState::Done;
                            }
                            self.load_buffer.retain(|e| e.id != id);
                        }
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------------- issue

    fn latency_for(
        latency: LatencyClass,
        fx: Option<&FxUnitConfig>,
        fp: Option<&FpUnitConfig>,
    ) -> u64 {
        if let Some(cfg) = fx {
            return match latency {
                LatencyClass::IntMul => cfg.mul_latency,
                LatencyClass::IntDiv => cfg.div_latency,
                _ => cfg.alu_latency,
            };
        }
        if let Some(cfg) = fp {
            return match latency {
                LatencyClass::FpDiv => cfg.div_latency,
                LatencyClass::FpSqrt => cfg.sqrt_latency,
                LatencyClass::FpFma => cfg.fma_latency,
                LatencyClass::FpMul => cfg.mul_latency,
                _ => cfg.alu_latency,
            };
        }
        1
    }

    fn stage_issue(&mut self, cycle: u64) {
        // FX units.
        for i in 0..self.fx_units.len() {
            if !self.fx_units[i].0.is_free(cycle) {
                continue;
            }
            let supports_muldiv = self.fx_units[i].1.supports_mul_div;
            let pick = self.fx_window.iter().find(|&id| {
                self.in_flight
                    .get(id)
                    .map(|c| c.sources_ready() && (supports_muldiv || !c.latency.is_mul_div()))
                    .unwrap_or(false)
            });
            if let Some(id) = pick {
                let code = self.in_flight.get_mut(id).unwrap();
                let latency = Self::latency_for(code.latency, Some(&self.fx_units[i].1), None);
                code.state = InstructionState::Executing;
                code.timestamps.issue = Some(cycle);
                self.fx_window.remove(id);
                self.fx_units[i].0.start(id, cycle, latency);
            }
        }
        // FP units.
        for i in 0..self.fp_units.len() {
            if !self.fp_units[i].0.is_free(cycle) {
                continue;
            }
            let pick = self
                .fp_window
                .iter()
                .find(|&id| self.in_flight.get(id).map(|c| c.sources_ready()).unwrap_or(false));
            if let Some(id) = pick {
                let code = self.in_flight.get_mut(id).unwrap();
                let latency = Self::latency_for(code.latency, None, Some(&self.fp_units[i].1));
                code.state = InstructionState::Executing;
                code.timestamps.issue = Some(cycle);
                self.fp_window.remove(id);
                self.fp_units[i].0.start(id, cycle, latency);
            }
        }
        // Load/store address generation units.
        for i in 0..self.ls_units.len() {
            if !self.ls_units[i].is_free(cycle) {
                continue;
            }
            let pick = self
                .ls_window
                .iter()
                .find(|&id| self.in_flight.get(id).map(|c| c.sources_ready()).unwrap_or(false));
            if let Some(id) = pick {
                let latency = self.config.units.ls_latency;
                self.ls_window.remove(id);
                self.ls_units[i].start(id, cycle, latency);
                let code = self.in_flight.get_mut(id).unwrap();
                code.state = InstructionState::Executing;
                code.timestamps.issue = Some(cycle);
            }
        }
        // Branch units.
        for i in 0..self.branch_units.len() {
            if !self.branch_units[i].is_free(cycle) {
                continue;
            }
            let pick = self
                .branch_window
                .iter()
                .find(|&id| self.in_flight.get(id).map(|c| c.sources_ready()).unwrap_or(false));
            if let Some(id) = pick {
                let latency = self.config.units.branch_latency;
                self.branch_window.remove(id);
                self.branch_units[i].start(id, cycle, latency);
                let code = self.in_flight.get_mut(id).unwrap();
                code.state = InstructionState::Executing;
                code.timestamps.issue = Some(cycle);
            }
        }
    }

    // -------------------------------------------------------------- dispatch

    fn stage_dispatch(&mut self, pp: &PredecodedProgram, cycle: u64) {
        for _ in 0..self.config.buffers.fetch_width {
            let Some(&id) = self.fetch_buffer.front() else { break };
            let Some(code) = self.in_flight.get(id) else {
                self.fetch_buffer.pop_front();
                continue;
            };
            let class = code.class;
            let entry = pp.entry(code.pc).expect("fetched pc is predecoded");

            // Structural hazards: every resource must be available.
            if !self.rob.has_space() {
                break;
            }
            let window = match class {
                FunctionalClass::Fx => &self.fx_window,
                FunctionalClass::Fp => &self.fp_window,
                FunctionalClass::Load | FunctionalClass::Store => &self.ls_window,
                FunctionalClass::Branch => &self.branch_window,
            };
            if !window.has_space() {
                break;
            }
            if class == FunctionalClass::Load && !self.load_buffer.has_space() {
                break;
            }
            if class == FunctionalClass::Store && !self.store_buffer.has_space() {
                break;
            }

            // Read source operands FIRST: an instruction whose destination
            // equals one of its sources (`addi a0, a0, 1`) must read the
            // previous mapping, not the tag it is about to allocate for
            // itself.  The operand specs are predecoded — no descriptor or
            // program lookups here.
            let mut sources: rvsim_isa::InlineVec<SourceOperand, 3> = rvsim_isa::InlineVec::new();
            for src in entry.srcs.iter() {
                let (wait_tag, value) = match self.regs.read_operand(src.reg) {
                    OperandRead::Ready(v) => (None, Some(v)),
                    OperandRead::Wait(tag) => (Some(tag), None),
                };
                sources.push(SourceOperand { arg: src.arg, arch: src.reg, wait_tag, value });
            }

            // Rename the destination (may stall when the rename file is full).
            let mut dest: Option<DestOperand> = None;
            let mut dest_ok = true;
            if let Some(dst) = &entry.dst {
                match self.regs.rename_dest(dst.reg) {
                    DestRename::Allocated { tag, previous } => {
                        dest = Some(DestOperand {
                            arg: dst.arg,
                            arch: dst.reg,
                            data_type: dst.data_type,
                            tag: Some(tag),
                            previous,
                        });
                    }
                    DestRename::Discard => {
                        dest = Some(DestOperand {
                            arg: dst.arg,
                            arch: dst.reg,
                            data_type: dst.data_type,
                            tag: None,
                            previous: None,
                        });
                    }
                    DestRename::Stall => {
                        dest_ok = false;
                    }
                }
            }
            if !dest_ok {
                break;
            }

            // Commit the dispatch.
            self.fetch_buffer.pop_front();
            let code = self.in_flight.get_mut(id).unwrap();
            code.sources = sources;
            code.dest = dest;
            code.state = InstructionState::Dispatched;
            code.timestamps.dispatch = Some(cycle);
            self.rob.push(id);
            match class {
                FunctionalClass::Fx => self.fx_window.insert(id),
                FunctionalClass::Fp => self.fp_window.insert(id),
                FunctionalClass::Load | FunctionalClass::Store => self.ls_window.insert(id),
                FunctionalClass::Branch => self.branch_window.insert(id),
            }
            if let Some(memory) = entry.memory {
                if memory.is_store {
                    self.store_buffer.push(StoreEntry {
                        id,
                        address: None,
                        size: memory.size,
                        value: None,
                    });
                } else {
                    self.load_buffer.push(LoadEntry {
                        id,
                        address: None,
                        size: memory.size,
                        completion: None,
                        forwarded: None,
                    });
                }
            }
        }
    }

    // ----------------------------------------------------------------- fetch

    fn stage_fetch(&mut self, pp: &PredecodedProgram, cycle: u64) {
        if cycle < self.fetch_stall_until {
            return;
        }
        let width = self.config.buffers.fetch_width;
        let buffer_capacity = width * 2;
        let mut fetched = 0;
        let mut branches_followed = 0;
        let mut pc = self.pc;

        while fetched < width && self.fetch_buffer.len() < buffer_capacity {
            if pc >= self.program_end {
                break;
            }
            // The predecoded table replaces the seed's program lookup,
            // ISA-map lookup and descriptor/mnemonic/text clones.
            let Some(entry) = pp.entry(pc) else { break };

            let id = self.next_id;
            self.next_id += 1;
            let mut code = SimCode::fetched(id, pc, entry, cycle);
            self.stats.fetched += 1;

            // Predict the next PC.
            let mut next = pc + 4;
            if entry.is_control_flow() {
                if entry.is_uncond_jump {
                    if entry.is_direct_jal {
                        // Direct jump: the target is known statically.
                        next = entry.static_target;
                        code.predicted_taken = true;
                    } else {
                        // Indirect jump (jalr): use the BTB if it knows a target.
                        let prediction = self.predictor.predict(pc);
                        code.predicted_taken = true;
                        if let Some(target) = prediction.target {
                            next = target;
                        }
                    }
                } else {
                    let prediction = self.predictor.predict(pc);
                    code.predicted_taken = prediction.taken;
                    if prediction.taken {
                        if let Some(target) = prediction.target {
                            next = target;
                        }
                    }
                }
            }
            code.predicted_next_pc = next;

            self.in_flight.insert(code);
            self.fetch_buffer.push_back(id);
            fetched += 1;

            let redirected = next != pc + 4;
            pc = next;
            if redirected {
                branches_followed += 1;
                if branches_followed >= self.config.buffers.branch_follow_limit {
                    break;
                }
            }
        }
        self.pc = pc;
    }

    fn check_end_of_program(&mut self) {
        if self.halted.is_some() {
            return;
        }
        if self.rob.is_empty() && self.fetch_buffer.is_empty() && self.pc >= self.program_end {
            self.halted = Some(if self.main_returned {
                HaltReason::MainReturned
            } else {
                HaltReason::PipelineEmpty
            });
            self.log.push(self.cycle, "simulation finished: pipeline empty");
        }
    }
}

/// Convert a raw little-endian loaded value according to the access shape.
fn convert_loaded(raw: u64, size: usize, sign_extend: bool, data_type: DataType) -> TypedValue {
    match data_type {
        DataType::Float => TypedValue::from_bits(raw & 0xffff_ffff, DataType::Float),
        DataType::Double => TypedValue::from_bits(raw, DataType::Double),
        _ => {
            let value: i64 = match (size, sign_extend) {
                (1, true) => raw as u8 as i8 as i64,
                (1, false) => (raw & 0xff) as i64,
                (2, true) => raw as u16 as i16 as i64,
                (2, false) => (raw & 0xffff) as i64,
                (8, _) => raw as i64,
                (_, _) => raw as u32 as i32 as i64,
            };
            // The register keeps the full (sign- or zero-extended) integer;
            // the data type only drives how the GUI displays it.
            TypedValue::int(value as i32)
        }
    }
}

fn ranges_overlap(a: u64, a_len: usize, b: u64, b_len: usize) -> bool {
    a < b + b_len as u64 && b < a + a_len as u64
}

fn align_up(value: u64, align: u64) -> u64 {
    value.div_ceil(align) * align
}
#[cfg(test)]
mod tests {
    use super::*;

    fn run_asm(asm: &str) -> Simulator {
        run_asm_with(asm, &ArchitectureConfig::default())
    }

    fn run_asm_with(asm: &str, config: &ArchitectureConfig) -> Simulator {
        let mut sim = Simulator::from_assembly(asm, config).expect("assembles");
        let result = sim.run(200_000).expect("runs");
        assert_ne!(result.halt, HaltReason::MaxCyclesReached, "program did not terminate");
        sim
    }

    #[test]
    fn arithmetic_program_produces_expected_register_values() {
        let sim = run_asm(
            "main:
                li   a0, 6
                li   a1, 7
                mul  a2, a0, a1
                addi a2, a2, -2
                ret
            ",
        );
        assert_eq!(sim.int_register(12), 40);
        assert!(sim.is_halted());
        assert_eq!(sim.halt_reason(), Some(&HaltReason::MainReturned));
    }

    #[test]
    fn loop_program_counts_correctly() {
        let sim = run_asm(
            "main:
                li   t0, 0
                li   t1, 25
            loop:
                addi t0, t0, 3
                addi t1, t1, -1
                bnez t1, loop
                mv   a0, t0
                ret
            ",
        );
        assert_eq!(sim.int_register(10), 75);
        let stats = sim.statistics();
        assert!(stats.committed > 75, "committed {}", stats.committed);
        assert!(stats.branch_accuracy() > 0.5);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn memory_store_load_roundtrip() {
        let sim = run_asm(
            "buf:
                .zero 16
            main:
                la   t0, buf
                li   t1, 123
                sw   t1, 0(t0)
                sw   t1, 4(t0)
                lw   a0, 0(t0)
                lw   a1, 4(t0)
                add  a0, a0, a1
                ret
            ",
        );
        assert_eq!(sim.int_register(10), 246);
        let stats = sim.statistics();
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.stores, 2);
        assert!(stats.memory.cache_accesses > 0);
    }

    #[test]
    fn byte_and_half_access_with_sign_extension() {
        let sim = run_asm(
            "data:
                .byte 0xff, 0x7f
                .hword 0x8000
            main:
                la   t0, data
                lb   a0, 0(t0)
                lbu  a1, 0(t0)
                lb   a2, 1(t0)
                lhu  a3, 2(t0)
                lh   a4, 2(t0)
                ret
            ",
        );
        assert_eq!(sim.int_register(10), -1);
        assert_eq!(sim.int_register(11), 255);
        assert_eq!(sim.int_register(12), 127);
        assert_eq!(sim.int_register(13), 0x8000);
        assert_eq!(sim.int_register(14), -32768);
    }

    #[test]
    fn store_to_load_forwarding_preserves_value() {
        // The store has not committed when the load executes; forwarding (or
        // conservative waiting) must still produce the right value.
        let sim = run_asm(
            "buf:
                .zero 8
            main:
                la   t0, buf
                li   t1, 77
                sw   t1, 0(t0)
                lw   a0, 0(t0)
                ret
            ",
        );
        assert_eq!(sim.int_register(10), 77);
    }

    #[test]
    fn floating_point_program() {
        let sim = run_asm(
            "vals:
                .float 1.5, 2.25
            main:
                la    t0, vals
                flw   fa0, 0(t0)
                flw   fa1, 4(t0)
                fadd.s fa2, fa0, fa1
                fmul.s fa3, fa0, fa1
                ret
            ",
        );
        assert_eq!(sim.fp_register(12), 3.75);
        assert_eq!(sim.fp_register(13), 3.375);
        let stats = sim.statistics();
        assert_eq!(stats.flops, 2);
    }

    #[test]
    fn function_call_and_return() {
        let sim = run_asm(
            "main:
                addi sp, sp, -16
                sw   ra, 12(sp)
                li   a0, 5
                call double
                addi a0, a0, 1
                lw   ra, 12(sp)
                addi sp, sp, 16
                ret
            double:
                add  a0, a0, a0
                ret
            ",
        );
        assert_eq!(sim.int_register(10), 11);
    }

    #[test]
    fn stack_usage_with_sp() {
        let sim = run_asm(
            "main:
                addi sp, sp, -16
                li   t0, 42
                sw   t0, 8(sp)
                lw   a0, 8(sp)
                addi sp, sp, 16
                ret
            ",
        );
        assert_eq!(sim.int_register(10), 42);
        // sp restored to the top of the call stack.
        assert_eq!(sim.int_register(2), sim.config().memory.call_stack_size as i64);
    }

    #[test]
    fn division_by_zero_halts_with_exception() {
        let mut sim = Simulator::from_assembly(
            "main:
                li  a0, 10
                li  a1, 0
                div a2, a0, a1
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        let result = sim.run(10_000).unwrap();
        assert_eq!(result.halt, HaltReason::Exception(Exception::DivisionByZero));
    }

    #[test]
    fn invalid_memory_access_halts_with_exception() {
        let mut sim = Simulator::from_assembly(
            "main:
                li  t0, 0x40000
                lw  a0, 0(t0)
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        let result = sim.run(10_000).unwrap();
        assert!(matches!(result.halt, HaltReason::Exception(Exception::InvalidAddress { .. })));
    }

    #[test]
    fn branch_misprediction_is_recovered() {
        // A data-dependent branch pattern the predictor cannot know initially:
        // the wrong path must be squashed and results stay correct.
        let sim = run_asm(
            "main:
                li   t0, 0
                li   t1, 10
                li   a0, 0
            loop:
                andi t2, t0, 1
                beqz t2, even
                addi a0, a0, 100
                j    next
            even:
                addi a0, a0, 1
            next:
                addi t0, t0, 1
                blt  t0, t1, loop
                ret
            ",
        );
        // 5 even iterations (+1) and 5 odd iterations (+100).
        assert_eq!(sim.int_register(10), 505);
        let stats = sim.statistics();
        assert!(stats.rob_flushes > 0, "alternating branch must mispredict at least once");
        assert!(stats.squashed > 0);
    }

    #[test]
    fn x0_writes_are_discarded() {
        let sim = run_asm(
            "main:
                li   x0, 55
                addi a0, x0, 3
                ret
            ",
        );
        assert_eq!(sim.int_register(0), 0);
        assert_eq!(sim.int_register(10), 3);
    }

    #[test]
    fn scalar_and_wide_configs_give_same_results_different_cycles() {
        let asm = "
            main:
                li   t0, 0
                li   t1, 64
                li   a0, 0
            loop:
                addi a0, a0, 5
                addi t2, a0, 7
                xor  t3, t2, t0
                add  t0, t0, t3
                addi t1, t1, -1
                bnez t1, loop
                ret
        ";
        let scalar = run_asm_with(asm, &ArchitectureConfig::scalar());
        let wide = run_asm_with(asm, &ArchitectureConfig::wide());
        assert_eq!(scalar.int_register(10), wide.int_register(10));
        assert_eq!(scalar.int_register(5), wide.int_register(5));
        let c_scalar = scalar.statistics().cycles;
        let c_wide = wide.statistics().cycles;
        assert!(
            c_wide < c_scalar,
            "wide machine ({c_wide} cycles) must beat scalar ({c_scalar} cycles)"
        );
        assert!(wide.statistics().ipc() > scalar.statistics().ipc());
    }

    #[test]
    fn statistics_report_dynamic_mix_and_units() {
        let sim = run_asm(
            "main:
                li   t0, 8
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ret
            ",
        );
        let stats = sim.statistics();
        assert!(stats.dynamic_mix["addi"] >= 8);
        assert!(stats.dynamic_mix.contains_key("bne"));
        assert!(stats.static_mix.contains_key("addi"));
        assert!(!stats.unit_utilization.is_empty());
        let fx_busy: u64 = stats
            .unit_utilization
            .iter()
            .filter(|u| u.name.starts_with("FX"))
            .map(|u| u.busy_cycles)
            .sum();
        assert!(fx_busy > 0);
        assert!(stats.branches >= 8);
        assert!(stats.jumps >= 1, "final ret counts as a jump");
    }

    #[test]
    fn deterministic_replay_and_backward_stepping() {
        let asm = "
            main:
                li   t0, 0
                li   t1, 12
            loop:
                addi t0, t0, 2
                addi t1, t1, -1
                bnez t1, loop
                mv   a0, t0
                ret
        ";
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly(asm, &config).unwrap();
        // Run 20 cycles forward, capture state.
        for _ in 0..20 {
            sim.step();
        }
        let committed_at_20 = sim.statistics().committed;
        let pc_at_20 = sim.pc();
        // Step forward 5 more, then back 5: state must match cycle 20 exactly.
        for _ in 0..5 {
            sim.step();
        }
        for _ in 0..5 {
            sim.step_back();
        }
        assert_eq!(sim.cycle(), 20);
        assert_eq!(sim.statistics().committed, committed_at_20);
        assert_eq!(sim.pc(), pc_at_20);
        // And the program still finishes correctly afterwards.
        let result = sim.run(100_000).unwrap();
        assert_ne!(result.halt, HaltReason::MaxCyclesReached);
        assert_eq!(sim.int_register(10), 24);
    }

    #[test]
    fn reset_produces_identical_run() {
        let asm = "
            arr:
                .word 3, 1, 4, 1, 5, 9, 2, 6
            main:
                la   t0, arr
                li   t1, 8
                li   a0, 0
            loop:
                lw   t2, 0(t0)
                add  a0, a0, t2
                addi t0, t0, 4
                addi t1, t1, -1
                bnez t1, loop
                ret
        ";
        let mut sim = Simulator::from_assembly(asm, &ArchitectureConfig::default()).unwrap();
        let first = sim.run(100_000).unwrap();
        assert_eq!(sim.int_register(10), 31);
        sim.reset();
        let second = sim.run(100_000).unwrap();
        assert_eq!(sim.int_register(10), 31);
        assert_eq!(first.cycles, second.cycles, "deterministic re-execution");
        assert_eq!(first.statistics, second.statistics);
    }

    #[test]
    fn run_respects_cycle_budget() {
        let mut sim = Simulator::from_assembly(
            "main:
            loop:
                j loop
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        let result = sim.run(100).unwrap();
        assert_eq!(result.halt, HaltReason::MaxCyclesReached);
        assert!(result.cycles >= 100);
    }

    #[test]
    fn memory_settings_arrays_visible_to_program() {
        let mut settings = MemorySettings::new();
        settings.add(rvsim_mem::MemoryArray {
            name: "input".into(),
            element: rvsim_mem::ScalarType::Word,
            alignment: 16,
            fill: rvsim_mem::ArrayFill::Values(vec![10.0, 20.0, 30.0]),
        });
        let asm = "
            main:
                la   t0, input
                lw   a0, 0(t0)
                lw   a1, 4(t0)
                lw   a2, 8(t0)
                add  a0, a0, a1
                add  a0, a0, a2
                ret
        ";
        let mut sim =
            Simulator::from_assembly_with_memory(asm, &ArchitectureConfig::default(), settings)
                .unwrap();
        sim.run(100_000).unwrap();
        assert_eq!(sim.int_register(10), 60);
    }

    #[test]
    fn cache_disabled_vs_enabled_changes_latency_not_results() {
        let asm = "
            arr:
                .zero 256
            main:
                la   t0, arr
                li   t1, 64
                li   a0, 0
            loop:
                lw   t2, 0(t0)
                add  a0, a0, t2
                sw   a0, 0(t0)
                addi t0, t0, 4
                addi t1, t1, -1
                bnez t1, loop
                ret
        ";
        let with_cache = run_asm_with(asm, &ArchitectureConfig::default());
        let mut no_cache_cfg = ArchitectureConfig::default();
        no_cache_cfg.cache.enabled = false;
        no_cache_cfg.memory.timings.load_latency = 20;
        no_cache_cfg.memory.timings.store_latency = 20;
        let without_cache = run_asm_with(asm, &no_cache_cfg);
        assert_eq!(with_cache.int_register(10), without_cache.int_register(10));
        assert!(
            with_cache.statistics().cycles < without_cache.statistics().cycles,
            "cache hits must make the cached run faster"
        );
        assert!(with_cache.statistics().cache_hit_rate() > 0.5);
        assert_eq!(without_cache.statistics().memory.cache_accesses, 0);
    }

    #[test]
    fn instruction_timestamps_are_ordered() {
        let mut sim = Simulator::from_assembly(
            "main:
                li a0, 1
                li a1, 2
                add a2, a0, a1
                ret",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        // Step manually and inspect in-flight instructions before they retire.
        for _ in 0..3 {
            sim.step();
        }
        let any_order_violation = sim.in_flight().any(|c| {
            let t = &c.timestamps;
            matches!((t.fetch, t.dispatch), (Some(f), Some(d)) if d < f)
                || matches!((t.dispatch, t.issue), (Some(d), Some(i)) if i < d)
                || matches!((t.issue, t.execute), (Some(i), Some(e)) if e < i)
        });
        assert!(!any_order_violation);
        sim.run(10_000).unwrap();
        assert_eq!(sim.int_register(12), 3);
    }
}
