//! # rvsim-core — cycle-level superscalar out-of-order RISC-V simulator
//!
//! This crate is the Rust reproduction of the simulation engine described in
//! the paper "Web-Based Simulator of Superscalar RISC-V Processors" (SC'24):
//! a fully configurable superscalar, out-of-order RV32IM+F processor with
//! register renaming, per-class issue windows, non-pipelined functional units,
//! load/store buffers, an L1 cache, branch prediction, precise exceptions at
//! commit, forward **and backward** stepping, and detailed runtime statistics.
//!
//! The main entry point is [`Simulator`]:
//!
//! ```
//! use rvsim_core::{ArchitectureConfig, Simulator};
//!
//! let asm = "
//! main:
//!     li   a0, 0
//!     li   t0, 10
//! loop:
//!     addi a0, a0, 2
//!     addi t0, t0, -1
//!     bnez t0, loop
//!     ret
//! ";
//! let config = ArchitectureConfig::default();
//! let mut sim = Simulator::from_assembly(asm, &config).unwrap();
//! let result = sim.run(10_000).unwrap();
//! assert_eq!(sim.int_register(10), 20);          // a0 = 2 * 10
//! assert!(result.statistics.ipc() > 0.0);
//! ```
//!
//! The module layout mirrors the paper's block diagram (Fig. 12): fetch,
//! decode/rename, issue windows, functional units, load/store buffers, the
//! memory access unit and the reorder buffer are each their own component,
//! stepped once per clock by the simulation step manager.

#![warn(missing_docs)]

pub mod config;
pub mod inflight;
pub mod instruction;
pub mod log;
pub mod predecode;
pub mod register_file;
pub mod simulator;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod units;

pub use config::{
    ArchitectureConfig, BufferConfig, FpUnitConfig, FunctionalUnitsConfig, FxUnitConfig,
    MemoryConfig,
};
pub use inflight::InFlightRing;
pub use instruction::{InstrId, InstructionState, SimCode};
pub use log::DebugLog;
pub use predecode::{LatencyClass, PredecodedInstr, PredecodedProgram};
pub use register_file::{PhysRegTag, RegisterFile};
pub use simulator::{HaltReason, RunResult, Simulator};
pub use snapshot::{
    CacheLineView, HeadlineStats, InstructionView, ProcessorSnapshot, RegisterView, SnapshotBuffer,
    SnapshotDelta,
};
pub use stats::SimulationStatistics;
pub use trace::{MemEffect, RetireEvent};
