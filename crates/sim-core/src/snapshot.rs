//! Serializable processor-state snapshots and their allocation-free JSON
//! rendering.
//!
//! The web client renders the processor view (Fig. 12) from a JSON snapshot of
//! every block's contents.  Three representations exist:
//!
//! * [`ProcessorSnapshot`] — the structured form (serde round-trips, delta
//!   computation, tests).  [`ProcessorSnapshot::capture`] builds it from a
//!   [`Simulator`] in one O(in-flight) pass.
//! * [`SnapshotBuffer`] / `SnapshotWriter` — the serve path: renders the
//!   snapshot JSON **directly** from the simulator into a reusable byte
//!   buffer, byte-identical to `serde_json::to_vec(&ProcessorSnapshot::
//!   capture(sim))` but without building any intermediate strings or
//!   structs.  The paper reports ~60 % of request time spent on JSON
//!   (§IV-A); this writer is what makes the `GetState` request path cheap.
//! * [`SnapshotDelta`] — the incremental form sent to clients that already
//!   hold a snapshot: only registers, instruction views and cache lines that
//!   changed since a known base cycle.
use crate::instruction::{InstrId, InstructionState, SimCode};
use crate::simulator::Simulator;
use rvsim_isa::{RegisterId, RegisterValue};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;

/// One instruction as displayed inside a block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionView {
    /// Instruction id (program order).
    pub id: InstrId,
    /// Program counter.
    pub pc: u64,
    /// Mnemonic.
    pub mnemonic: String,
    /// Original source text.
    pub text: String,
    /// Lifecycle state.
    pub state: InstructionState,
    /// Destination rename tag, if any.
    pub dest_tag: Option<String>,
    /// Exception message, if one was raised.
    pub exception: Option<String>,
}

impl InstructionView {
    /// Build the view of one in-flight instruction.
    fn of(sim: &Simulator, c: &SimCode) -> InstructionView {
        InstructionView {
            id: c.id,
            pc: c.pc,
            mnemonic: c.mnemonic.as_str().to_string(),
            // The display text stays in the (shared) program; in-flight
            // instructions no longer carry owned strings.
            text: sim.program().at(c.pc).map(|i| i.text.clone()).unwrap_or_default(),
            state: c.state,
            dest_tag: c.dest.as_ref().and_then(|d| d.tag.map(|t| t.to_string())),
            exception: c.exception.as_ref().map(|e| e.to_string()),
        }
    }
}

/// One architectural register with its rename information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterView {
    /// ABI name (`a0`, `sp`, `ft0`, …).
    pub name: String,
    /// Committed value rendered according to its data type.
    pub value: String,
    /// Raw bits.
    pub bits: u64,
    /// Current speculative tag, when the register is renamed.
    pub renamed_to: Option<String>,
    /// Whether the speculative value has been produced yet.
    pub rename_ready: bool,
}

/// One cache line for the cache view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLineView {
    /// Set index.
    pub set: usize,
    /// Way index within the set.
    pub way: usize,
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit.
    pub dirty: bool,
    /// Base address of the cached block.
    pub base_address: u64,
}

/// The complete processor view: everything the main simulator window shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSnapshot {
    /// Current cycle.
    pub cycle: u64,
    /// Current fetch PC.
    pub pc: u64,
    /// Whether the simulation has halted.
    pub halted: bool,
    /// Instructions waiting in the fetch buffer.
    pub fetch_buffer: Vec<InstructionView>,
    /// Reorder buffer contents in program order.
    pub reorder_buffer: Vec<InstructionView>,
    /// Integer registers.
    pub int_registers: Vec<RegisterView>,
    /// Floating-point registers.
    pub fp_registers: Vec<RegisterView>,
    /// Cache lines.
    pub cache_lines: Vec<CacheLineView>,
    /// Headline statistics shown in the right-hand panel: cycles, committed
    /// instructions, IPC, branch accuracy, FLOPs, cache hit rate.
    pub headline: HeadlineStats,
}

/// The default right-hand panel statistics (§II-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineStats {
    /// Executed cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Branch prediction accuracy in `[0, 1]`.
    pub branch_accuracy: f64,
    /// Committed FLOPs.
    pub flops: u64,
    /// Cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
}

fn register_view(sim: &Simulator, reg: RegisterId) -> RegisterView {
    let value = sim.register(reg);
    let rename = sim.register_file().rename_of(reg);
    RegisterView {
        name: reg.abi_name().to_string(),
        value: value.display_value(),
        bits: value.bits,
        renamed_to: rename.map(|(tag, _)| tag.to_string()),
        rename_ready: rename.map(|(_, ready)| ready).unwrap_or(false),
    }
}

impl ProcessorSnapshot {
    /// Capture the current state of `sim` in a single pass over the in-flight
    /// window: ROB entries resolve through the O(1) id-indexed ring instead
    /// of a per-entry scan, and register renames read the RAT directly.
    pub fn capture(sim: &Simulator) -> Self {
        let fetch_buffer = sim
            .in_flight()
            .filter(|c| c.state == InstructionState::Fetched)
            .map(|c| InstructionView::of(sim, c))
            .collect();
        let reorder_buffer = sim
            .rob_ids()
            .filter_map(|id| sim.in_flight_by_id(id))
            .map(|c| InstructionView::of(sim, c))
            .collect();

        let int_registers = (0..32u8).map(|i| register_view(sim, RegisterId::x(i))).collect();
        let fp_registers = (0..32u8).map(|i| register_view(sim, RegisterId::f(i))).collect();

        let cache_lines = sim
            .memory()
            .cache()
            .map(|cache| {
                cache
                    .lines()
                    .iter()
                    .enumerate()
                    .flat_map(|(set, ways)| {
                        ways.iter().enumerate().map(move |(way, line)| CacheLineView {
                            set,
                            way,
                            valid: line.valid,
                            dirty: line.dirty,
                            base_address: line.base_address,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();

        ProcessorSnapshot {
            cycle: sim.cycle(),
            pc: sim.pc(),
            halted: sim.is_halted(),
            fetch_buffer,
            reorder_buffer,
            int_registers,
            fp_registers,
            cache_lines,
            headline: sim.headline(),
        }
    }

    /// Serialize the snapshot to JSON (the payload sent to the web client).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

// ---------------------------------------------------------------------------
// Direct JSON rendering
// ---------------------------------------------------------------------------

/// Reusable per-session buffer for direct snapshot rendering: the JSON output
/// bytes plus a scratch string for `Display`-formatted fragments.  After the
/// first render of a session both allocations reach steady state and later
/// renders perform no heap allocation.
#[derive(Debug, Default)]
pub struct SnapshotBuffer {
    out: Vec<u8>,
    scratch: String,
}

impl SnapshotBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes produced by the last render.
    pub fn bytes(&self) -> &[u8] {
        &self.out
    }

    /// Render the snapshot of `sim` as JSON, byte-identical to
    /// `serde_json::to_vec(&ProcessorSnapshot::capture(sim))`.
    pub fn render(&mut self, sim: &Simulator) -> &[u8] {
        self.out.clear();
        SnapshotWriter { sim, out: &mut self.out, scratch: &mut self.scratch }.snapshot(None);
        &self.out
    }

    /// Render the full `GetState` response envelope, byte-identical to
    /// `serde_json::to_vec(&Response::State(Box::new(capture(sim))))` of the
    /// server protocol (an internally tagged object with `"type":"state"`
    /// first).
    pub fn render_state_response(&mut self, sim: &Simulator) -> &[u8] {
        self.out.clear();
        SnapshotWriter { sim, out: &mut self.out, scratch: &mut self.scratch }
            .snapshot(Some("state"));
        &self.out
    }
}

/// Hand-rolled snapshot serializer: one pass over the simulator state, no
/// intermediate `String`/`Vec` structs.  Register names come from the static
/// ABI tables, values render through the reusable scratch buffer, ROB entries
/// resolve through the O(1) in-flight ring.  Drive it through
/// [`SnapshotBuffer::render`] / [`SnapshotBuffer::render_state_response`].
pub(crate) struct SnapshotWriter<'a> {
    sim: &'a Simulator,
    out: &'a mut Vec<u8>,
    scratch: &'a mut String,
}

/// Append `s` to `out` with serde_json-compatible escaping.
fn write_json_string(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        // Runs of bytes that need no escaping (everything except `"`, `\`
        // and ASCII control characters; UTF-8 continuation bytes are ≥ 0x80
        // and pass through) are copied wholesale.
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            0x08 => b"\\b",
            0x0c => b"\\f",
            b if b < 0x20 => {
                out.extend_from_slice(&bytes[start..i]);
                let _ = write!(out, "\\u{:04x}", b);
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.extend_from_slice(&bytes[start..i]);
        out.extend_from_slice(escape);
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
    out.push(b'"');
}

impl<'a> SnapshotWriter<'a> {
    fn raw(&mut self, s: &[u8]) {
        self.out.extend_from_slice(s);
    }

    fn string(&mut self, s: &str) {
        write_json_string(self.out, s);
    }

    fn u64v(&mut self, v: u64) {
        let _ = write!(self.out, "{v}");
    }

    fn f64v(&mut self, v: f64) {
        // Exactly serde_json's float rendering: Debug (shortest round-trip,
        // trailing `.0` on integral values), `null` for non-finite values.
        if v.is_finite() {
            let _ = write!(self.out, "{v:?}");
        } else {
            self.raw(b"null");
        }
    }

    fn boolv(&mut self, v: bool) {
        self.raw(if v { b"true" } else { b"false" });
    }

    fn state_name(state: InstructionState) -> &'static str {
        match state {
            InstructionState::Fetched => "Fetched",
            InstructionState::Dispatched => "Dispatched",
            InstructionState::Executing => "Executing",
            InstructionState::WaitingMemory => "WaitingMemory",
            InstructionState::Done => "Done",
            InstructionState::Committed => "Committed",
            InstructionState::Squashed => "Squashed",
        }
    }

    fn instruction_view(&mut self, c: &SimCode) {
        self.raw(b"{\"id\":");
        self.u64v(c.id);
        self.raw(b",\"pc\":");
        self.u64v(c.pc);
        self.raw(b",\"mnemonic\":");
        self.string(c.mnemonic.as_str());
        self.raw(b",\"text\":");
        match self.sim.program().at(c.pc) {
            Some(ins) => write_json_string(self.out, &ins.text),
            None => self.raw(b"\"\""),
        }
        self.raw(b",\"state\":");
        self.string(Self::state_name(c.state));
        self.raw(b",\"dest_tag\":");
        match c.dest.as_ref().and_then(|d| d.tag) {
            Some(tag) => {
                let _ = write!(self.out, "\"tg{}\"", tag.0);
            }
            None => self.raw(b"null"),
        }
        self.raw(b",\"exception\":");
        match &c.exception {
            Some(e) => {
                self.scratch.clear();
                let _ = write!(self.scratch, "{e}");
                write_json_string(self.out, self.scratch);
            }
            None => self.raw(b"null"),
        }
        self.raw(b"}");
    }

    fn register_view(&mut self, reg: RegisterId) {
        let value: RegisterValue = self.sim.register(reg);
        let rename = self.sim.register_file().rename_of(reg);
        self.raw(b"{\"name\":");
        self.string(reg.abi_name());
        self.raw(b",\"value\":");
        self.scratch.clear();
        let _ = value.write_display_value(self.scratch);
        write_json_string(self.out, self.scratch);
        self.raw(b",\"bits\":");
        self.u64v(value.bits);
        self.raw(b",\"renamed_to\":");
        match rename {
            Some((tag, _)) => {
                let _ = write!(self.out, "\"tg{}\"", tag.0);
            }
            None => self.raw(b"null"),
        }
        self.raw(b",\"rename_ready\":");
        self.boolv(rename.map(|(_, ready)| ready).unwrap_or(false));
        self.raw(b"}");
    }

    fn snapshot(mut self, envelope: Option<&str>) {
        self.raw(b"{");
        if let Some(tag) = envelope {
            self.raw(b"\"type\":");
            self.string(tag);
            self.raw(b",");
        }
        self.raw(b"\"cycle\":");
        self.u64v(self.sim.cycle());
        self.raw(b",\"pc\":");
        self.u64v(self.sim.pc());
        self.raw(b",\"halted\":");
        self.boolv(self.sim.is_halted());

        // `sim` is a copy of the shared reference: the iterators borrow the
        // simulator directly, not `self`, so `&mut self` writes can interleave.
        let sim = self.sim;
        self.raw(b",\"fetch_buffer\":[");
        let mut first = true;
        for c in sim.in_flight() {
            if c.state != InstructionState::Fetched {
                continue;
            }
            if !first {
                self.raw(b",");
            }
            first = false;
            self.instruction_view(c);
        }
        self.raw(b"]");

        self.raw(b",\"reorder_buffer\":[");
        let mut first = true;
        for id in sim.rob_ids() {
            let Some(c) = sim.in_flight_by_id(id) else { continue };
            if !first {
                self.raw(b",");
            }
            first = false;
            self.instruction_view(c);
        }
        self.raw(b"]");

        self.raw(b",\"int_registers\":[");
        for i in 0..32u8 {
            if i > 0 {
                self.raw(b",");
            }
            self.register_view(RegisterId::x(i));
        }
        self.raw(b"],\"fp_registers\":[");
        for i in 0..32u8 {
            if i > 0 {
                self.raw(b",");
            }
            self.register_view(RegisterId::f(i));
        }
        self.raw(b"]");

        self.raw(b",\"cache_lines\":[");
        let mut first = true;
        if let Some(cache) = self.sim.memory().cache() {
            for (set, ways) in cache.lines().iter().enumerate() {
                for (way, line) in ways.iter().enumerate() {
                    if !first {
                        self.out.push(b',');
                    }
                    first = false;
                    let _ = write!(
                        self.out,
                        "{{\"set\":{set},\"way\":{way},\"valid\":{},\"dirty\":{},\
                         \"base_address\":{}}}",
                        line.valid, line.dirty, line.base_address
                    );
                }
            }
        }
        self.raw(b"]");

        let headline = self.sim.headline();
        self.raw(b",\"headline\":{\"cycles\":");
        self.u64v(headline.cycles);
        self.raw(b",\"committed\":");
        self.u64v(headline.committed);
        self.raw(b",\"ipc\":");
        self.f64v(headline.ipc);
        self.raw(b",\"branch_accuracy\":");
        self.f64v(headline.branch_accuracy);
        self.raw(b",\"flops\":");
        self.u64v(headline.flops);
        self.raw(b",\"cache_hit_rate\":");
        self.f64v(headline.cache_hit_rate);
        self.raw(b"}}");
    }
}

// ---------------------------------------------------------------------------
// Delta snapshots
// ---------------------------------------------------------------------------

/// A changed register at its position in the (fixed-size) register array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterPatch {
    /// Index into the 32-entry register array.
    pub index: usize,
    /// The new view.
    pub view: RegisterView,
}

/// A changed cache line at its position in the flattened line array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLinePatch {
    /// Index into the flattened `cache_lines` array.
    pub index: usize,
    /// The new view.
    pub view: CacheLineView,
}

/// Incremental snapshot: everything that changed between a base snapshot the
/// client already holds (captured at `since_cycle`) and the current state.
///
/// Buffer *membership* is transmitted as id lists (a few integers); the
/// expensive instruction views travel only for instructions the base did not
/// contain in identical form.  Register and cache-line views travel only for
/// changed indices.  [`SnapshotDelta::apply_to`] reconstructs the exact full
/// snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Cycle of the base snapshot this delta builds on.
    pub since_cycle: u64,
    /// Current cycle.
    pub cycle: u64,
    /// Current fetch PC.
    pub pc: u64,
    /// Whether the simulation has halted.
    pub halted: bool,
    /// Ids in the fetch buffer, in order.
    pub fetch_ids: Vec<InstrId>,
    /// Ids in the reorder buffer, in order.
    pub rob_ids: Vec<InstrId>,
    /// Views of instructions that are new or changed relative to the base.
    pub changed_instructions: Vec<InstructionView>,
    /// Changed integer registers.
    pub int_registers: Vec<RegisterPatch>,
    /// Changed floating-point registers.
    pub fp_registers: Vec<RegisterPatch>,
    /// Changed cache lines.
    pub cache_lines: Vec<CacheLinePatch>,
    /// Headline statistics (always sent; they change every cycle).
    pub headline: HeadlineStats,
}

fn instruction_index(snapshot: &ProcessorSnapshot) -> HashMap<InstrId, &InstructionView> {
    snapshot
        .fetch_buffer
        .iter()
        .chain(snapshot.reorder_buffer.iter())
        .map(|view| (view.id, view))
        .collect()
}

impl SnapshotDelta {
    /// Compute the delta that turns `base` into `current`.
    pub fn between(base: &ProcessorSnapshot, current: &ProcessorSnapshot) -> SnapshotDelta {
        let base_views = instruction_index(base);
        let mut changed_instructions: Vec<InstructionView> = Vec::new();
        for view in current.fetch_buffer.iter().chain(current.reorder_buffer.iter()) {
            if base_views.get(&view.id) != Some(&view)
                && !changed_instructions.iter().any(|c| c.id == view.id)
            {
                changed_instructions.push(view.clone());
            }
        }

        let register_patches = |base: &[RegisterView], current: &[RegisterView]| {
            current
                .iter()
                .enumerate()
                .filter(|&(i, view)| base.get(i) != Some(view))
                .map(|(index, view)| RegisterPatch { index, view: view.clone() })
                .collect()
        };

        SnapshotDelta {
            since_cycle: base.cycle,
            cycle: current.cycle,
            pc: current.pc,
            halted: current.halted,
            fetch_ids: current.fetch_buffer.iter().map(|v| v.id).collect(),
            rob_ids: current.reorder_buffer.iter().map(|v| v.id).collect(),
            changed_instructions,
            int_registers: register_patches(&base.int_registers, &current.int_registers),
            fp_registers: register_patches(&base.fp_registers, &current.fp_registers),
            cache_lines: current
                .cache_lines
                .iter()
                .enumerate()
                .filter(|&(i, view)| base.cache_lines.get(i) != Some(view))
                .map(|(index, view)| CacheLinePatch { index, view: view.clone() })
                .collect(),
            headline: current.headline.clone(),
        }
    }

    /// Reconstruct the full snapshot from `base` (which must be the snapshot
    /// this delta was computed against — its cycle is checked).
    pub fn apply_to(&self, base: &ProcessorSnapshot) -> Result<ProcessorSnapshot, String> {
        if base.cycle != self.since_cycle {
            return Err(format!(
                "delta base mismatch: delta is against cycle {}, base is cycle {}",
                self.since_cycle, base.cycle
            ));
        }
        let mut views = instruction_index(base);
        for view in &self.changed_instructions {
            views.insert(view.id, view);
        }
        let resolve = |ids: &[InstrId]| -> Result<Vec<InstructionView>, String> {
            ids.iter()
                .map(|id| {
                    views
                        .get(id)
                        .map(|v| (*v).clone())
                        .ok_or_else(|| format!("delta references unknown instruction id {id}"))
                })
                .collect()
        };
        let fetch_buffer = resolve(&self.fetch_ids)?;
        let reorder_buffer = resolve(&self.rob_ids)?;

        let patch_registers = |base: &[RegisterView],
                               patches: &[RegisterPatch]|
         -> Result<Vec<RegisterView>, String> {
            let mut out = base.to_vec();
            for patch in patches {
                *out.get_mut(patch.index).ok_or_else(|| {
                    format!("register patch index {} out of range", patch.index)
                })? = patch.view.clone();
            }
            Ok(out)
        };
        let int_registers = patch_registers(&base.int_registers, &self.int_registers)?;
        let fp_registers = patch_registers(&base.fp_registers, &self.fp_registers)?;

        let mut cache_lines = base.cache_lines.clone();
        for patch in &self.cache_lines {
            *cache_lines
                .get_mut(patch.index)
                .ok_or_else(|| format!("cache-line patch index {} out of range", patch.index))? =
                patch.view.clone();
        }

        Ok(ProcessorSnapshot {
            cycle: self.cycle,
            pc: self.pc,
            halted: self.halted,
            fetch_buffer,
            reorder_buffer,
            int_registers,
            fp_registers,
            cache_lines,
            headline: self.headline.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchitectureConfig;

    fn simulator() -> Simulator {
        Simulator::from_assembly(
            "main:
                li   t0, 5
                li   t1, 3
                add  a0, t0, t1
                sw   a0, 0(sp)
                lw   a1, 0(sp)
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_of_fresh_simulator() {
        let sim = simulator();
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.cycle, 0);
        assert!(!snap.halted);
        assert_eq!(snap.int_registers.len(), 32);
        assert_eq!(snap.fp_registers.len(), 32);
        assert_eq!(snap.int_registers[2].name, "sp");
        assert!(snap.reorder_buffer.is_empty());
        assert!(!snap.cache_lines.is_empty());
    }

    #[test]
    fn snapshot_mid_run_shows_in_flight_instructions() {
        let mut sim = simulator();
        for _ in 0..3 {
            sim.step();
        }
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.cycle, 3);
        assert!(
            !snap.reorder_buffer.is_empty() || !snap.fetch_buffer.is_empty(),
            "something must be in flight after 3 cycles"
        );
        // At least one register should be renamed while instructions are in flight.
        let renamed = snap.int_registers.iter().filter(|r| r.renamed_to.is_some()).count();
        assert!(renamed > 0, "destination registers must show their rename tags");
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let mut sim = simulator();
        sim.run(10_000).unwrap();
        let snap = ProcessorSnapshot::capture(&sim);
        assert!(snap.halted);
        let json = snap.to_json();
        assert!(json.contains("\"ipc\""));
        let back: ProcessorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.headline.committed, snap.headline.committed);
    }

    #[test]
    fn headline_matches_statistics() {
        let mut sim = simulator();
        sim.run(10_000).unwrap();
        let stats = sim.statistics();
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.headline.cycles, stats.cycles);
        assert_eq!(snap.headline.committed, stats.committed);
        assert!((snap.headline.ipc - stats.ipc()).abs() < 1e-12);
    }

    #[test]
    fn writer_output_is_byte_identical_to_serde() {
        let mut sim = simulator();
        let mut buffer = SnapshotBuffer::new();
        loop {
            let expected = serde_json::to_vec(&ProcessorSnapshot::capture(&sim)).unwrap();
            let rendered = buffer.render(&sim);
            assert_eq!(
                rendered,
                expected.as_slice(),
                "direct render differs at cycle {}:\n direct: {}\n serde:  {}",
                sim.cycle(),
                String::from_utf8_lossy(rendered),
                String::from_utf8_lossy(&expected)
            );
            if sim.is_halted() {
                break;
            }
            sim.step();
        }
    }

    #[test]
    fn json_string_escaping_matches_serde() {
        for text in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "tabs\tnewlines\ncarriage\rreturns",
            "control \u{1} \u{8} \u{c} \u{1f} bytes",
            "unicode: héllo → 世界 🎉",
            "",
        ] {
            let mut out = Vec::new();
            write_json_string(&mut out, text);
            let expected = serde_json::to_vec(&text.to_string()).unwrap();
            assert_eq!(out, expected, "text {text:?}");
        }
    }

    #[test]
    fn full_rob_capture_is_single_pass() {
        // A long dependency-free program on the 4-wide preset fills the
        // 64-entry ROB; capture must resolve every entry through the O(1)
        // ring lookup (one pass over the window, not one scan per entry).
        let config = ArchitectureConfig::wide();
        // A dependent division chain blocks commit at the ROB head for tens
        // of cycles while the independent adds behind it fill the window.
        let divs = "    div  t2, t2, t1\n".repeat(8);
        let body = "    addi t3, t3, 1\n".repeat(400);
        let source = format!("main:\n    li t2, 1000000\n    li t1, 3\n{divs}{body}    ret\n");
        let mut sim = Simulator::from_assembly(&source, &config).unwrap();
        for _ in 0..400 {
            sim.step();
            if sim.rob_ids().count() == 64 {
                break;
            }
        }
        assert_eq!(sim.rob_ids().count(), 64, "ROB must fill for this test");
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.reorder_buffer.len(), 64);
        // Every ROB view resolves to the in-flight instruction with its id.
        for view in &snap.reorder_buffer {
            let code = sim.in_flight_by_id(view.id).expect("ROB id is in flight");
            assert_eq!(code.pc, view.pc);
        }
        // The direct render agrees on the full window too.
        let mut buffer = SnapshotBuffer::new();
        assert_eq!(buffer.render(&sim), serde_json::to_vec(&snap).unwrap().as_slice());
    }

    /// The seed's capture resolved every ROB entry with a linear scan over
    /// the in-flight iterator (`in_flight().find(..)` per entry) — O(ROB ×
    /// window).  This is that algorithm, reimplemented through the public
    /// API, used below as the comparison point for the complexity guard.
    fn capture_quadratic_rob_views(sim: &Simulator) -> Vec<InstructionView> {
        sim.rob_ids()
            .filter_map(|id| sim.in_flight().find(|c| c.id == id))
            .map(|c| InstructionView::of(sim, c))
            .collect()
    }

    #[test]
    fn rob_view_capture_stays_linear_in_in_flight_count() {
        // A machine with a huge ROB whose commit is blocked by one uncached
        // load with a very long memory latency: the independent adds behind
        // it complete but cannot retire, so the window fills with thousands
        // of in-flight instructions (dependent ops would clog the issue
        // window instead and cap the in-flight count).
        let mut config = ArchitectureConfig::wide();
        config.buffers.rob_size = 2048;
        config.memory.rename_file_size = 2048;
        config.cache.enabled = false;
        config.memory.timings =
            rvsim_mem::MemoryTimings { load_latency: 100_000, store_latency: 1 };
        let body = "    addi t3, t3, 1\n".repeat(2400);
        let source =
            format!("buf:\n    .zero 16\nmain:\n    la t1, buf\n    lw t2, 0(t1)\n{body}    ret\n");
        let mut sim = Simulator::from_assembly(&source, &config).unwrap();
        for _ in 0..1200 {
            sim.step();
            if sim.rob_ids().count() == 2048 {
                break;
            }
        }
        let rob_entries = sim.rob_ids().count();
        assert!(rob_entries >= 1024, "need a big ROB, got {rob_entries} entries");

        // Same inputs, same outputs — the only difference is the lookup.
        let linear = ProcessorSnapshot::capture(&sim).reorder_buffer;
        let quadratic = capture_quadratic_rob_views(&sim);
        assert_eq!(linear, quadratic);

        // Complexity guard: the ring-indexed capture must beat the seed's
        // per-entry window scan decisively at this size (the quadratic
        // version does ~rob²/2 extra iterator steps — over half a million
        // here).  Median of several runs keeps the comparison stable.
        let median_nanos = |f: &dyn Fn() -> usize| {
            let mut times: Vec<u128> = (0..5)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    assert_eq!(f(), rob_entries);
                    t0.elapsed().as_nanos()
                })
                .collect();
            times.sort_unstable();
            times[2]
        };
        let linear_time = median_nanos(&|| ProcessorSnapshot::capture(&sim).reorder_buffer.len());
        let quadratic_time = median_nanos(&|| capture_quadratic_rob_views(&sim).len());
        assert!(
            linear_time * 2 < quadratic_time,
            "capture must stay linear in the in-flight count: \
             linear {linear_time} ns vs quadratic reference {quadratic_time} ns"
        );
    }

    #[test]
    fn delta_roundtrip_reconstructs_snapshot() {
        let mut sim = simulator();
        let mut base = ProcessorSnapshot::capture(&sim);
        while !sim.is_halted() {
            sim.step();
            let current = ProcessorSnapshot::capture(&sim);
            let delta = SnapshotDelta::between(&base, &current);
            let rebuilt = delta.apply_to(&base).unwrap();
            assert_eq!(rebuilt, current, "delta must reconstruct cycle {}", current.cycle);
            base = current;
        }
    }

    #[test]
    fn delta_is_smaller_than_full_snapshot_between_adjacent_cycles() {
        let mut sim = simulator();
        for _ in 0..4 {
            sim.step();
        }
        let base = ProcessorSnapshot::capture(&sim);
        sim.step();
        let current = ProcessorSnapshot::capture(&sim);
        let delta = SnapshotDelta::between(&base, &current);
        let delta_json = serde_json::to_vec(&delta).unwrap();
        let full_json = serde_json::to_vec(&current).unwrap();
        assert!(
            delta_json.len() < full_json.len(),
            "adjacent-cycle delta ({} B) should undercut the full snapshot ({} B)",
            delta_json.len(),
            full_json.len()
        );
        // Unchanged registers must not travel.
        assert!(delta.int_registers.len() < 32);
    }

    #[test]
    fn delta_rejects_wrong_base() {
        let mut sim = simulator();
        let base = ProcessorSnapshot::capture(&sim);
        sim.step();
        let mid = ProcessorSnapshot::capture(&sim);
        sim.step();
        let current = ProcessorSnapshot::capture(&sim);
        let delta = SnapshotDelta::between(&mid, &current);
        assert!(delta.apply_to(&base).is_err(), "cycle-mismatched base must be rejected");
        assert!(delta.apply_to(&mid).is_ok());
    }
}
