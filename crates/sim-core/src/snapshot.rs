//! Serializable processor-state snapshots.
//!
//! The web client renders the processor view (Fig. 12) from a JSON snapshot of
//! every block's contents.  [`ProcessorSnapshot::capture`] builds that
//! structure from a [`Simulator`]; the server crate serializes it for the
//! GUI, and its size is what the paper's "rendering takes ~80 ms" and "60 % of
//! request time is JSON" measurements are about.

use crate::instruction::{InstrId, InstructionState};
use crate::simulator::Simulator;
use serde::{Deserialize, Serialize};

/// One instruction as displayed inside a block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionView {
    /// Instruction id (program order).
    pub id: InstrId,
    /// Program counter.
    pub pc: u64,
    /// Mnemonic.
    pub mnemonic: String,
    /// Original source text.
    pub text: String,
    /// Lifecycle state.
    pub state: InstructionState,
    /// Destination rename tag, if any.
    pub dest_tag: Option<String>,
    /// Exception message, if one was raised.
    pub exception: Option<String>,
}

/// One architectural register with its rename information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterView {
    /// ABI name (`a0`, `sp`, `ft0`, …).
    pub name: String,
    /// Committed value rendered according to its data type.
    pub value: String,
    /// Raw bits.
    pub bits: u64,
    /// Current speculative tag, when the register is renamed.
    pub renamed_to: Option<String>,
    /// Whether the speculative value has been produced yet.
    pub rename_ready: bool,
}

/// One cache line for the cache view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLineView {
    /// Set index.
    pub set: usize,
    /// Way index within the set.
    pub way: usize,
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit.
    pub dirty: bool,
    /// Base address of the cached block.
    pub base_address: u64,
}

/// The complete processor view: everything the main simulator window shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSnapshot {
    /// Current cycle.
    pub cycle: u64,
    /// Current fetch PC.
    pub pc: u64,
    /// Whether the simulation has halted.
    pub halted: bool,
    /// Instructions waiting in the fetch buffer.
    pub fetch_buffer: Vec<InstructionView>,
    /// Reorder buffer contents in program order.
    pub reorder_buffer: Vec<InstructionView>,
    /// Integer registers.
    pub int_registers: Vec<RegisterView>,
    /// Floating-point registers.
    pub fp_registers: Vec<RegisterView>,
    /// Cache lines.
    pub cache_lines: Vec<CacheLineView>,
    /// Headline statistics shown in the right-hand panel: cycles, committed
    /// instructions, IPC, branch accuracy, FLOPs, cache hit rate.
    pub headline: HeadlineStats,
}

/// The default right-hand panel statistics (§II-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineStats {
    /// Executed cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Branch prediction accuracy in `[0, 1]`.
    pub branch_accuracy: f64,
    /// Committed FLOPs.
    pub flops: u64,
    /// Cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
}

impl ProcessorSnapshot {
    /// Capture the current state of `sim`.
    pub fn capture(sim: &Simulator) -> Self {
        let stats = sim.statistics();
        let view = |id: InstrId| -> Option<InstructionView> {
            sim.in_flight().find(|c| c.id == id).map(|c| InstructionView {
                id: c.id,
                pc: c.pc,
                mnemonic: c.mnemonic.as_str().to_string(),
                // The display text stays in the (shared) program; in-flight
                // instructions no longer carry owned strings.
                text: sim.program().at(c.pc).map(|i| i.text.clone()).unwrap_or_default(),
                state: c.state,
                dest_tag: c.dest.as_ref().and_then(|d| d.tag.map(|t| t.to_string())),
                exception: c.exception.as_ref().map(|e| e.to_string()),
            })
        };

        let rename_map = sim.register_file().rename_map();
        let register_view =
            |name: String, value: rvsim_isa::RegisterValue, reg: rvsim_isa::RegisterId| {
                let rename = rename_map.iter().find(|(r, _, _)| *r == reg);
                RegisterView {
                    name,
                    value: value.display_value(),
                    bits: value.bits,
                    renamed_to: rename.map(|(_, tag, _)| tag.to_string()),
                    rename_ready: rename.map(|(_, _, ready)| *ready).unwrap_or(false),
                }
            };

        let int_registers = (0..32u8)
            .map(|i| {
                let reg = rvsim_isa::RegisterId::x(i);
                register_view(reg.abi_name().to_string(), sim.register(reg), reg)
            })
            .collect();
        let fp_registers = (0..32u8)
            .map(|i| {
                let reg = rvsim_isa::RegisterId::f(i);
                register_view(reg.abi_name().to_string(), sim.register(reg), reg)
            })
            .collect();

        let cache_lines = sim
            .memory()
            .cache()
            .map(|cache| {
                cache
                    .lines()
                    .iter()
                    .enumerate()
                    .flat_map(|(set, ways)| {
                        ways.iter().enumerate().map(move |(way, line)| CacheLineView {
                            set,
                            way,
                            valid: line.valid,
                            dirty: line.dirty,
                            base_address: line.base_address,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();

        let fetch_buffer = sim
            .in_flight()
            .filter(|c| c.state == InstructionState::Fetched)
            .map(|c| view(c.id).expect("in-flight instruction"))
            .collect();
        let reorder_buffer = sim.rob_contents().into_iter().filter_map(view).collect();

        ProcessorSnapshot {
            cycle: sim.cycle(),
            pc: sim.pc(),
            halted: sim.is_halted(),
            fetch_buffer,
            reorder_buffer,
            int_registers,
            fp_registers,
            cache_lines,
            headline: HeadlineStats {
                cycles: stats.cycles,
                committed: stats.committed,
                ipc: stats.ipc(),
                branch_accuracy: stats.branch_accuracy(),
                flops: stats.flops,
                cache_hit_rate: stats.cache_hit_rate(),
            },
        }
    }

    /// Serialize the snapshot to JSON (the payload sent to the web client).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchitectureConfig;

    fn simulator() -> Simulator {
        Simulator::from_assembly(
            "main:
                li   t0, 5
                li   t1, 3
                add  a0, t0, t1
                sw   a0, 0(sp)
                lw   a1, 0(sp)
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_of_fresh_simulator() {
        let sim = simulator();
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.cycle, 0);
        assert!(!snap.halted);
        assert_eq!(snap.int_registers.len(), 32);
        assert_eq!(snap.fp_registers.len(), 32);
        assert_eq!(snap.int_registers[2].name, "sp");
        assert!(snap.reorder_buffer.is_empty());
        assert!(!snap.cache_lines.is_empty());
    }

    #[test]
    fn snapshot_mid_run_shows_in_flight_instructions() {
        let mut sim = simulator();
        for _ in 0..3 {
            sim.step();
        }
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.cycle, 3);
        assert!(
            !snap.reorder_buffer.is_empty() || !snap.fetch_buffer.is_empty(),
            "something must be in flight after 3 cycles"
        );
        // At least one register should be renamed while instructions are in flight.
        let renamed = snap.int_registers.iter().filter(|r| r.renamed_to.is_some()).count();
        assert!(renamed > 0, "destination registers must show their rename tags");
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let mut sim = simulator();
        sim.run(10_000).unwrap();
        let snap = ProcessorSnapshot::capture(&sim);
        assert!(snap.halted);
        let json = snap.to_json();
        assert!(json.contains("\"ipc\""));
        let back: ProcessorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.headline.committed, snap.headline.committed);
    }

    #[test]
    fn headline_matches_statistics() {
        let mut sim = simulator();
        sim.run(10_000).unwrap();
        let stats = sim.statistics();
        let snap = ProcessorSnapshot::capture(&sim);
        assert_eq!(snap.headline.cycles, stats.cycles);
        assert_eq!(snap.headline.committed, stats.committed);
        assert!((snap.headline.ipc - stats.ipc()).abs() < 1e-12);
    }
}
