//! Slab/ring store for in-flight instructions, indexed by [`InstrId`].
//!
//! Instruction ids are allocated sequentially at fetch, retired from the
//! front (commit) and squashed from the back (flush), so the live window is
//! a contiguous id range with at most transient interior holes.  The seed
//! kept this window in a `BTreeMap<InstrId, SimCode>` — every lookup walked
//! a tree and every insert/remove rebalanced and allocated.  This ring maps
//! an id to `slots[id - base]` instead: O(1) access, cache-friendly
//! iteration for wake-ups, zero allocation in steady state.

use crate::instruction::{InstrId, SimCode};
use std::collections::VecDeque;

/// Ring of in-flight instructions keyed by their sequential [`InstrId`].
#[derive(Debug, Default)]
pub struct InFlightRing {
    /// Id of `slots[0]`.
    base: InstrId,
    slots: VecDeque<Option<SimCode>>,
    live: usize,
}

impl InFlightRing {
    /// An empty ring whose next expected id is `first_id`.
    pub fn new(first_id: InstrId) -> Self {
        InFlightRing { base: first_id, slots: VecDeque::with_capacity(64), live: 0 }
    }

    /// Drop everything and restart the id window at `first_id`.
    pub fn reset(&mut self, first_id: InstrId) {
        self.slots.clear();
        self.base = first_id;
        self.live = 0;
    }

    /// Number of live (stored) instructions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when no instruction is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn index_of(&self, id: InstrId) -> Option<usize> {
        if id < self.base {
            return None;
        }
        let offset = (id - self.base) as usize;
        if offset < self.slots.len() {
            Some(offset)
        } else {
            None
        }
    }

    /// Insert a newly fetched instruction.  Ids must be monotonically
    /// increasing; squashed ids leave (bounded, trimmed) gaps.
    pub fn insert(&mut self, code: SimCode) {
        let id = code.id;
        debug_assert!(
            id >= self.base + self.slots.len() as u64,
            "in-flight ids must be inserted in increasing order"
        );
        while self.base + (self.slots.len() as u64) < id {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(code));
        self.live += 1;
    }

    /// Shared access by id.
    #[inline]
    pub fn get(&self, id: InstrId) -> Option<&SimCode> {
        self.index_of(id).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutable access by id.
    #[inline]
    pub fn get_mut(&mut self, id: InstrId) -> Option<&mut SimCode> {
        self.index_of(id).and_then(|i| self.slots[i].as_mut())
    }

    /// Remove and return the instruction with `id`, leaving its slot empty.
    /// Call [`Self::trim`] after a removal burst (or [`Self::put`] to return
    /// the instruction, e.g. around an execute step).
    pub fn take(&mut self, id: InstrId) -> Option<SimCode> {
        let i = self.index_of(id)?;
        let taken = self.slots[i].take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Put an instruction back into the empty slot it was taken from.
    pub fn put(&mut self, code: SimCode) {
        let i = self.index_of(code.id).expect("put target inside the id window");
        debug_assert!(self.slots[i].is_none(), "put into an occupied slot");
        self.slots[i] = Some(code);
        self.live += 1;
    }

    /// Drop empty slots at the front of the window, reclaiming the id range
    /// of committed instructions.  Only the front is trimmed: a flush runs
    /// while the mispredicted branch is temporarily [`Self::take`]n out, so
    /// its (empty) slot must survive until [`Self::put`] restores it.
    /// Squashed trailing slots are reclaimed as the front advances past them.
    pub fn trim(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Live instructions in id (program) order.
    pub fn iter(&self) -> impl Iterator<Item = &SimCode> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Mutable iteration in id order (wake-up broadcast).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut SimCode> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predecode::{LatencyClass, PredecodedInstr};
    use rvsim_isa::{DescriptorId, FunctionalClass, InlineVec, Sym};

    fn code(id: InstrId) -> SimCode {
        let entry = PredecodedInstr {
            desc: DescriptorId(0),
            mnemonic: Sym::new("add"),
            class: FunctionalClass::Fx,
            flops: 0,
            latency: LatencyClass::IntAlu,
            is_cond_branch: false,
            is_uncond_jump: false,
            is_direct_jal: false,
            static_target: 0,
            memory: None,
            srcs: InlineVec::new(),
            dst: None,
            imms: InlineVec::new(),
            store_data: None,
        };
        SimCode::fetched(id, id * 4, &entry, 7)
    }

    #[test]
    fn insert_get_take_put_round_trip() {
        let mut ring = InFlightRing::new(1);
        for id in 1..=4 {
            ring.insert(code(id));
        }
        assert_eq!(ring.live(), 4);
        assert_eq!(ring.get(2).unwrap().id, 2);
        assert!(ring.get(0).is_none());
        assert!(ring.get(5).is_none());

        let taken = ring.take(2).unwrap();
        assert_eq!(ring.live(), 3);
        assert!(ring.get(2).is_none());
        ring.put(taken);
        assert_eq!(ring.get(2).unwrap().id, 2);

        ring.get_mut(3).unwrap().flops = 9;
        assert_eq!(ring.get(3).unwrap().flops, 9);
    }

    #[test]
    fn trim_reclaims_the_front_and_gaps_survive() {
        let mut ring = InFlightRing::new(1);
        for id in 1..=5 {
            ring.insert(code(id));
        }
        // Commit 1, 2 (front) and squash 5 (back).
        ring.take(1);
        ring.take(2);
        ring.take(5);
        ring.trim();
        assert_eq!(ring.live(), 2);
        assert_eq!(ring.iter().map(|c| c.id).collect::<Vec<_>>(), vec![3, 4]);

        // A take + put round-trip keeps the slot valid (the write-back stage
        // holds an instruction out while it executes; trim is deferred until
        // nothing is out).
        let held = ring.take(3).unwrap();
        ring.put(held);
        assert_eq!(ring.get(3).unwrap().id, 3);

        // After a flush, fetch continues with fresh (gapped) ids.
        ring.insert(code(9));
        assert_eq!(ring.get(9).unwrap().id, 9);
        assert!(ring.get(6).is_none(), "gap ids are empty");
        assert_eq!(ring.iter().map(|c| c.id).collect::<Vec<_>>(), vec![3, 4, 9]);

        // Draining everything then trimming leaves an empty ring that still
        // accepts the next id.
        ring.take(3);
        ring.take(4);
        ring.take(9);
        ring.trim();
        assert!(ring.is_empty());
        ring.insert(code(10));
        assert_eq!(ring.iter().count(), 1);
    }

    #[test]
    fn reset_restarts_the_window() {
        let mut ring = InFlightRing::new(1);
        ring.insert(code(1));
        ring.reset(1);
        assert!(ring.is_empty());
        ring.insert(code(1));
        assert_eq!(ring.get(1).unwrap().id, 1);
    }

    #[test]
    fn iter_mut_visits_in_program_order() {
        let mut ring = InFlightRing::new(1);
        for id in 1..=3 {
            ring.insert(code(id));
        }
        ring.take(2);
        let ids: Vec<InstrId> = ring.iter_mut().map(|c| c.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }
}
