//! Decode-once predecoded instruction layer.
//!
//! The seed implementation re-decoded every fetched instruction from the
//! [`Program`]: a `String`-keyed ISA lookup plus descriptor / mnemonic /
//! operand-name clones, repeated on every mispredict replay and on every
//! `step_back` re-simulation.  [`PredecodedProgram`] does all of that work
//! exactly once, at `Simulator::new`: every static instruction becomes a
//! compact [`PredecodedInstr`] (descriptor id, interned names, operand specs,
//! immediates, latency class, static branch target) indexed by `pc / 4`, and
//! every descriptor's postfix semantics are compiled to flat op sequences
//! ([`CompiledExpr`]).  Fetch becomes an array index; execution becomes a
//! compiled-expression run with inline bindings — no per-instruction heap
//! traffic anywhere in the simulate loop.

use rvsim_asm::Program;
use rvsim_isa::{
    ArgKind, CompiledExpr, DataType, DescriptorId, FunctionalClass, InlineVec, InstructionSet,
    MemoryAccessDescriptor, RegisterId, Sym, SYM_RS2,
};
use serde::{Deserialize, Serialize};

/// Functional-unit latency class, resolved from the mnemonic at predecode
/// time so the issue stage never inspects strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LatencyClass {
    /// Simple integer ALU operation.
    #[default]
    IntAlu,
    /// Integer multiplication (`mul*`).
    IntMul,
    /// Integer division / remainder (`div*`, `rem*`).
    IntDiv,
    /// FP add/sub/compare/move/convert.
    FpAlu,
    /// FP multiplication (`fmul*`).
    FpMul,
    /// FP division (`fdiv*`).
    FpDiv,
    /// FP square root (`fsqrt*`).
    FpSqrt,
    /// Fused multiply-add family (`fmadd*`, `fmsub*`, `fnmadd*`, `fnmsub*`).
    FpFma,
}

impl LatencyClass {
    /// True for instructions that need a multiply/divide-capable FX unit.
    pub fn is_mul_div(self) -> bool {
        matches!(self, LatencyClass::IntMul | LatencyClass::IntDiv)
    }

    /// Classify a mnemonic, mirroring the latency tables of
    /// [`crate::config::FxUnitConfig`] / [`crate::config::FpUnitConfig`].
    fn classify(mnemonic: &str, class: FunctionalClass) -> LatencyClass {
        match class {
            FunctionalClass::Fx => {
                if mnemonic.starts_with("mul") {
                    LatencyClass::IntMul
                } else if mnemonic.starts_with("div") || mnemonic.starts_with("rem") {
                    LatencyClass::IntDiv
                } else {
                    LatencyClass::IntAlu
                }
            }
            FunctionalClass::Fp => {
                if mnemonic.starts_with("fdiv") {
                    LatencyClass::FpDiv
                } else if mnemonic.starts_with("fsqrt") {
                    LatencyClass::FpSqrt
                } else if mnemonic.starts_with("fmadd")
                    || mnemonic.starts_with("fmsub")
                    || mnemonic.starts_with("fnmadd")
                    || mnemonic.starts_with("fnmsub")
                {
                    LatencyClass::FpFma
                } else if mnemonic.starts_with("fmul") {
                    LatencyClass::FpMul
                } else {
                    LatencyClass::FpAlu
                }
            }
            _ => LatencyClass::IntAlu,
        }
    }
}

/// A register-source operand of a predecoded instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrcSpec {
    /// Descriptor argument name (`rs1`, `rs2`, `rs3`), interned.
    pub arg: Sym,
    /// Architectural register read.
    pub reg: RegisterId,
}

impl Default for SrcSpec {
    fn default() -> Self {
        SrcSpec { arg: Sym::default(), reg: RegisterId::x(0) }
    }
}

/// The register-destination operand of a predecoded instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DstSpec {
    /// Descriptor argument name (`rd`), interned.
    pub arg: Sym,
    /// Architectural destination register.
    pub reg: RegisterId,
    /// Declared data type of the destination (display metadata).
    pub data_type: DataType,
}

/// An immediate operand of a predecoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImmSpec {
    /// Descriptor argument name (`imm`), interned.
    pub arg: Sym,
    /// Resolved immediate value (branch offsets are PC-relative bytes).
    pub value: i64,
}

/// One fully decoded static instruction, ready for zero-allocation dispatch.
#[derive(Debug, Clone)]
pub struct PredecodedInstr {
    /// Dense descriptor id within the instruction set.
    pub desc: DescriptorId,
    /// Interned mnemonic (display / trace).
    pub mnemonic: Sym,
    /// Functional-unit class.
    pub class: FunctionalClass,
    /// FLOPs contributed at commit.
    pub flops: u32,
    /// Latency class for the issue stage.
    pub latency: LatencyClass,
    /// True for conditional branches.
    pub is_cond_branch: bool,
    /// True for unconditional jumps (`jal`, `jalr`).
    pub is_uncond_jump: bool,
    /// True for `jal`: the jump target is known statically.
    pub is_direct_jal: bool,
    /// Statically resolved `jal` target (valid when `is_direct_jal`).
    pub static_target: u64,
    /// Memory access shape for loads/stores.
    pub memory: Option<MemoryAccessDescriptor>,
    /// Register sources in descriptor order.
    pub srcs: InlineVec<SrcSpec, 3>,
    /// Register destination, if the instruction writes one back.
    pub dst: Option<DstSpec>,
    /// Immediate operands.
    pub imms: InlineVec<ImmSpec, 2>,
    /// Index into `srcs` of the store-data operand (stores only).
    pub store_data: Option<u8>,
}

impl PredecodedInstr {
    /// True for conditional branches and unconditional jumps.
    pub fn is_control_flow(&self) -> bool {
        self.class == FunctionalClass::Branch
    }

    /// Immediate value of the argument named `arg`, if present.
    pub fn immediate(&self, arg: Sym) -> Option<i64> {
        self.imms.iter().find(|i| i.arg == arg).map(|i| i.value)
    }
}

/// Compiled semantics of one instruction descriptor.
#[derive(Debug, Clone, Default)]
pub struct DescSemantics {
    /// Main semantics (`interpretableAs`); `None` when the descriptor's
    /// expression is empty.
    pub interpretable: Option<CompiledExpr>,
    /// Branch condition; `None` for unconditional jumps.
    pub condition: Option<CompiledExpr>,
    /// Branch / jump target.
    pub target: Option<CompiledExpr>,
    /// Effective-address expression (memory instructions; defaults to
    /// `"\rs1"` when the descriptor omits it, like the seed did at runtime).
    pub address: Option<CompiledExpr>,
}

/// The whole program, decoded once.
#[derive(Debug)]
pub struct PredecodedProgram {
    entries: Vec<PredecodedInstr>,
    semantics: Vec<DescSemantics>,
    names: Vec<Sym>,
}

impl PredecodedProgram {
    /// Predecode `program` against `isa`.  Fails on descriptors whose
    /// semantics do not compile or whose operand lists exceed the inline
    /// bounds (3 register sources, 2 immediates) — both impossible for the
    /// built-in RV32IM+F table and caught here, before simulation, for
    /// user-extended sets.
    pub fn new(program: &Program, isa: &InstructionSet) -> Result<Self, String> {
        // Compile every descriptor's semantics once, keyed by DescriptorId.
        let mut semantics = Vec::with_capacity(isa.len());
        let mut names = Vec::with_capacity(isa.len());
        let mut compile_errors: Vec<Option<String>> = Vec::with_capacity(isa.len());
        for (_, d) in isa.iter_with_ids() {
            names.push(Sym::new(&d.name));
            let mut error = None;
            let mut compile = |expr: &str| -> Option<CompiledExpr> {
                match CompiledExpr::compile(expr) {
                    Ok(compiled) => Some(compiled),
                    Err(e) => {
                        error = Some(format!("instruction `{}`: {e}", d.name));
                        None
                    }
                }
            };
            let interpretable =
                if d.interpretable_as.is_empty() { None } else { compile(&d.interpretable_as) };
            let condition = d.condition.as_deref().and_then(&mut compile);
            let target = d.target.as_deref().and_then(&mut compile);
            let address = if d.memory.is_some() {
                Some(compile(d.address.as_deref().unwrap_or("\\rs1")))
            } else {
                None
            }
            .flatten();
            // Load/Store-class descriptors without a memory shape would
            // leave the execute stages with no address expression or access
            // size; reject them here, before simulation.
            if matches!(d.functional_class, FunctionalClass::Load | FunctionalClass::Store)
                && d.memory.is_none()
                && error.is_none()
            {
                error = Some(format!(
                    "instruction `{}`: {} descriptor has no memory access shape",
                    d.name,
                    d.functional_class.short_name()
                ));
            }
            semantics.push(DescSemantics { interpretable, condition, target, address });
            compile_errors.push(error);
        }

        let mut entries = Vec::with_capacity(program.len());
        for ins in &program.instructions {
            let desc = isa
                .id_of(&ins.mnemonic)
                .ok_or_else(|| format!("instruction `{}` not in the ISA", ins.mnemonic))?;
            if let Some(error) = &compile_errors[desc.index()] {
                return Err(error.clone());
            }
            let d = isa.get_by_id(desc).expect("id from id_of");

            let mut srcs = InlineVec::new();
            let mut imms = InlineVec::new();
            let mut dst = None;
            for (i, arg) in d.arguments.iter().enumerate() {
                let sym = Sym::new(&arg.name);
                if arg.write_back {
                    let reg = ins.reg(i).ok_or_else(|| {
                        format!("`{}`: destination operand {i} is not a register", ins.mnemonic)
                    })?;
                    dst = Some(DstSpec { arg: sym, reg, data_type: arg.data_type });
                    continue;
                }
                match arg.kind {
                    ArgKind::IntReg | ArgKind::FpReg => {
                        let reg = ins.reg(i).ok_or_else(|| {
                            format!("`{}`: operand {i} is not a register", ins.mnemonic)
                        })?;
                        srcs.try_push(SrcSpec { arg: sym, reg }).map_err(|_| {
                            format!("`{}`: more than 3 register sources", ins.mnemonic)
                        })?;
                    }
                    ArgKind::Imm | ArgKind::Label => {
                        imms.try_push(ImmSpec { arg: sym, value: ins.imm(i).unwrap_or(0) })
                            .map_err(|_| format!("`{}`: more than 2 immediates", ins.mnemonic))?;
                    }
                }
            }

            let store_data = if d.is_store() {
                srcs.iter().position(|s| s.arg == SYM_RS2).map(|i| i as u8)
            } else {
                None
            };
            let is_direct_jal = ins.mnemonic == "jal";
            let static_target = if is_direct_jal {
                (ins.address as i64 + ins.imm(1).unwrap_or(0)) as u64
            } else {
                0
            };

            entries.push(PredecodedInstr {
                desc,
                mnemonic: names[desc.index()],
                class: d.functional_class,
                flops: d.flops,
                latency: LatencyClass::classify(&d.name, d.functional_class),
                is_cond_branch: d.is_conditional_branch(),
                is_uncond_jump: d.is_unconditional_jump(),
                is_direct_jal,
                static_target,
                memory: d.memory,
                srcs,
                dst,
                imms,
                store_data,
            });
        }

        Ok(PredecodedProgram { entries, semantics, names })
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Predecoded instruction at byte address `pc` (None when misaligned or
    /// outside the code segment) — the hot-path replacement for
    /// `Program::at` + descriptor lookup.
    #[inline]
    pub fn entry(&self, pc: u64) -> Option<&PredecodedInstr> {
        if pc & 3 != 0 {
            return None;
        }
        self.entries.get((pc >> 2) as usize)
    }

    /// Compiled semantics of the descriptor with the given id.
    #[inline]
    pub fn semantics(&self, id: DescriptorId) -> &DescSemantics {
        &self.semantics[id.index()]
    }

    /// Interned mnemonic of the descriptor with the given id.
    #[inline]
    pub fn name(&self, id: DescriptorId) -> Sym {
        self.names[id.index()]
    }

    /// Number of descriptors (the dense id range) — sizes id-indexed counters
    /// like the dynamic instruction mix.
    pub fn descriptor_count(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_asm::{assemble, AssemblerOptions};

    fn predecode(source: &str) -> PredecodedProgram {
        let isa = InstructionSet::rv32imf();
        let program = assemble(source, &isa, &AssemblerOptions::default()).expect("assembles");
        PredecodedProgram::new(&program, &isa).expect("predecodes")
    }

    #[test]
    fn predecodes_operands_and_flags() {
        let pp = predecode(
            "main:
                addi a0, x0, 5
                mul  a1, a0, a0
                lw   a2, 4(sp)
                sw   a2, 8(sp)
                beq  a0, a1, main
                jal  ra, main
            ",
        );
        assert_eq!(pp.len(), 6);

        let addi = pp.entry(0).unwrap();
        assert_eq!(addi.mnemonic, "addi");
        assert_eq!(addi.class, FunctionalClass::Fx);
        assert_eq!(addi.latency, LatencyClass::IntAlu);
        assert_eq!(addi.srcs.len(), 1);
        assert_eq!(addi.srcs[0].reg, RegisterId::x(0));
        assert_eq!(addi.dst.unwrap().reg, RegisterId::x(10));
        assert_eq!(addi.immediate(rvsim_isa::SYM_IMM), Some(5));

        let mul = pp.entry(4).unwrap();
        assert_eq!(mul.latency, LatencyClass::IntMul);
        assert!(mul.latency.is_mul_div());

        let lw = pp.entry(8).unwrap();
        assert_eq!(lw.class, FunctionalClass::Load);
        assert_eq!(lw.memory.unwrap().size, 4);
        assert!(lw.store_data.is_none());

        let sw = pp.entry(12).unwrap();
        assert_eq!(sw.class, FunctionalClass::Store);
        let store_src = sw.srcs[sw.store_data.unwrap() as usize];
        assert_eq!(store_src.reg, RegisterId::x(12), "store data comes from rs2 = a2");

        let beq = pp.entry(16).unwrap();
        assert!(beq.is_cond_branch);
        assert!(!beq.is_uncond_jump);
        assert!(beq.is_control_flow());

        let jal = pp.entry(20).unwrap();
        assert!(jal.is_uncond_jump);
        assert!(jal.is_direct_jal);
        assert_eq!(jal.static_target, 0, "jal back to main at pc 0");

        // Misaligned / out-of-range lookups.
        assert!(pp.entry(2).is_none());
        assert!(pp.entry(24).is_none());
    }

    #[test]
    fn semantics_are_compiled_per_descriptor() {
        let pp = predecode("main:\n    add a0, a0, a0\n    ret\n");
        let add = pp.entry(0).unwrap();
        let sem = pp.semantics(add.desc);
        assert!(sem.interpretable.is_some());
        assert!(sem.condition.is_none());
        assert!(sem.address.is_none());
        // `ret` expands to jalr: link write + target, no condition.
        let jalr = pp.entry(4).unwrap();
        let sem = pp.semantics(jalr.desc);
        assert!(sem.interpretable.is_some());
        assert!(sem.target.is_some());
        assert!(sem.condition.is_none());
        assert_eq!(pp.name(add.desc), "add");
        assert!(pp.descriptor_count() > 60);
    }

    #[test]
    fn fp_latency_classes() {
        let pp = predecode(
            "main:
                fadd.s  fa0, fa0, fa1
                fmul.s  fa0, fa0, fa1
                fdiv.s  fa0, fa0, fa1
                fsqrt.s fa0, fa0
                fmadd.s fa0, fa0, fa1, fa2
                ret
            ",
        );
        let classes: Vec<LatencyClass> = (0..5).map(|i| pp.entry(i * 4).unwrap().latency).collect();
        assert_eq!(
            classes,
            vec![
                LatencyClass::FpAlu,
                LatencyClass::FpMul,
                LatencyClass::FpDiv,
                LatencyClass::FpSqrt,
                LatencyClass::FpFma,
            ]
        );
        assert!(!LatencyClass::FpFma.is_mul_div());
    }

    #[test]
    fn memoryless_load_descriptor_is_reported_at_predecode() {
        let mut isa = InstructionSet::rv32imf();
        let mut bad = isa.get("lw").unwrap().clone();
        bad.name = "badload".into();
        bad.memory = None;
        isa.add(bad);
        let program =
            assemble("main:\n    badload a0, 0, sp\n    ret\n", &isa, &AssemblerOptions::default())
                .expect("assembles");
        let err = PredecodedProgram::new(&program, &isa).unwrap_err();
        assert!(err.contains("badload"), "{err}");
        assert!(err.contains("memory access shape"), "{err}");
    }

    #[test]
    fn broken_user_descriptor_is_reported_at_predecode() {
        let mut isa = InstructionSet::rv32imf();
        let mut bad = isa.get("add").unwrap().clone();
        bad.name = "badop".into();
        bad.interpretable_as = "\\rs1 wat".into();
        isa.add(bad);
        let program =
            assemble("main:\n    badop a0, a0, a0\n    ret\n", &isa, &AssemblerOptions::default())
                .expect("assembles");
        let err = PredecodedProgram::new(&program, &isa).unwrap_err();
        assert!(err.contains("badop"), "{err}");
        assert!(err.contains("unknown token"), "{err}");
    }
}
